//! The object-safe erased facade: select an STM at runtime.
//!
//! [`TmFactory`] cannot be a trait object (generic associated types), so a
//! driver that picks one of the five engines from a CLI flag would have to
//! be monomorphized five times. [`DynStm`] erases the factory behind an
//! object-safe trait over `i64` and byte-string variables — enough for the
//! workload harnesses and figure drivers — while delegating to the typed
//! [`Stm`] front end underneath, so leasing, parking and `or_else` all
//! work identically.
//!
//! ```
//! use std::sync::Arc;
//! use zstm_api::{DynStm, Stm};
//! use zstm_core::{RetryPolicy, StmConfig, TxKind};
//! use zstm_lsa::LsaStm;
//! use zstm_tl2::Tl2Stm;
//!
//! let engines: Vec<Arc<dyn DynStm>> = vec![
//!     Arc::new(Stm::new(LsaStm::new(StmConfig::new(1)))),
//!     Arc::new(Stm::new(Tl2Stm::new(StmConfig::new(1)))),
//! ];
//! for stm in engines {
//!     let var = stm.new_i64(40);
//!     let v = stm
//!         .atomically(TxKind::Short, &RetryPolicy::unbounded(), |tx| {
//!             let v = tx.read_i64(&var)? + 2;
//!             tx.write_i64(&var, v)?;
//!             Ok(v)
//!         })
//!         .unwrap();
//!     assert_eq!(v, 42);
//! }
//! ```

use std::any::Any;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use zstm_core::{Abort, AbortReason, RetryExhausted, RetryPolicy, TmFactory, TxKind, TxStats};

use crate::{Stm, TVar, Tx};

/// A type-erased transaction body (the object-safe spelling of the typed
/// closures).
pub type DynBody<'a> = dyn FnMut(&mut dyn DynTx) -> Result<(), Abort> + 'a;

/// A type-erased **async** transaction body: `Send + 'static` (unlike
/// [`DynBody`]) because the future that owns it may be spawned onto a
/// multi-threaded executor. The body itself stays synchronous — attempts
/// never suspend (see [`TxFuture`](crate::TxFuture)); only the *block*
/// does, between attempts.
pub type DynAsyncBody = Box<dyn FnMut(&mut dyn DynTx) -> Result<(), Abort> + Send + 'static>;

/// The boxed future returned by the object-safe async entry points
/// ([`DynStm::atomically_async_dyn`] / [`DynStm::or_else_async_dyn`]).
pub type DynFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// The boxed future returned by the object-safe **budgeted** async entry
/// point ([`DynStm::try_atomically_async_dyn`]): resolves with the
/// [`RetryExhausted`] error when the policy's budget runs out.
pub type DynTryFuture = Pin<Box<dyn Future<Output = Result<(), RetryExhausted>> + Send + 'static>>;

/// A type-erased transactional variable handle.
///
/// Created by [`DynStm::new_i64`] / [`DynStm::new_bytes`] and only usable
/// with the `DynStm` *instance* that created it — the handle carries both
/// its concrete type and its origin's instance id, so using it under a
/// different engine type **or** a different instance of the same type
/// panics instead of silently mixing two STMs' clocks.
#[derive(Clone)]
pub struct DynVar {
    inner: Arc<dyn Any + Send + Sync>,
    /// Instance id of the `Stm` that created this var.
    stm_id: u64,
}

impl DynVar {
    fn new<F: TmFactory, T: zstm_core::TxValue>(var: TVar<F, T>, stm_id: u64) -> Self {
        Self {
            inner: Arc::new(var),
            stm_id,
        }
    }

    fn downcast<F: TmFactory, T: zstm_core::TxValue>(&self, stm_id: u64) -> &TVar<F, T> {
        assert_eq!(
            self.stm_id, stm_id,
            "DynVar used with a different DynStm instance than the one that created it"
        );
        self.inner
            .downcast_ref::<TVar<F, T>>()
            .expect("DynVar used with the DynStm (and value type) that created it")
    }
}

impl std::fmt::Debug for DynVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynVar").finish_non_exhaustive()
    }
}

/// Object-safe view of an active transaction, over `i64` and byte-string
/// variables.
pub trait DynTx {
    /// Reads an `i64` variable.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot provide a consistent value.
    fn read_i64(&mut self, var: &DynVar) -> Result<i64, Abort>;

    /// Writes an `i64` variable.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts resolved against this transaction.
    fn write_i64(&mut self, var: &DynVar, value: i64) -> Result<(), Abort>;

    /// Reads a byte-string variable.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot provide a consistent value.
    fn read_bytes(&mut self, var: &DynVar) -> Result<Vec<u8>, Abort>;

    /// Writes a byte-string variable.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts resolved against this transaction.
    fn write_bytes(&mut self, var: &DynVar, value: Vec<u8>) -> Result<(), Abort>;

    /// The blocking-retry abort: `return Err(tx.retry());` parks the
    /// atomic block until another transaction commits writes (exactly
    /// [`Tx::retry`]).
    fn retry(&self) -> Abort;

    /// The transaction's short/long classification.
    fn kind(&self) -> TxKind;
}

impl<F: TmFactory> DynTx for Tx<'_, F> {
    fn read_i64(&mut self, var: &DynVar) -> Result<i64, Abort> {
        let stm_id = self.stm_id;
        self.read(var.downcast::<F, i64>(stm_id))
    }

    fn write_i64(&mut self, var: &DynVar, value: i64) -> Result<(), Abort> {
        let stm_id = self.stm_id;
        self.write(var.downcast::<F, i64>(stm_id), value)
    }

    fn read_bytes(&mut self, var: &DynVar) -> Result<Vec<u8>, Abort> {
        let stm_id = self.stm_id;
        self.read(var.downcast::<F, Vec<u8>>(stm_id))
    }

    fn write_bytes(&mut self, var: &DynVar, value: Vec<u8>) -> Result<(), Abort> {
        let stm_id = self.stm_id;
        self.write(var.downcast::<F, Vec<u8>>(stm_id), value)
    }

    fn retry(&self) -> Abort {
        Abort::new(AbortReason::Retry)
    }

    fn kind(&self) -> TxKind {
        Tx::kind(self)
    }
}

/// Object-safe view of an [`Stm`] handle: runtime-selectable engines for
/// the workload harnesses and figure drivers.
///
/// Implemented by every `Stm<F>`; obtain one with
/// `Arc::new(Stm::new(...)) as Arc<dyn DynStm>`. The convenience methods
/// with typed return values (`atomically`, `atomically_or_else`) live on
/// the trait object itself via the inherent `impl dyn DynStm`.
pub trait DynStm: Send + Sync {
    /// Short name of the underlying engine ("lsa", "z-stm", ...).
    fn name(&self) -> &'static str;

    /// Creates a type-erased `i64` variable.
    fn new_i64(&self, init: i64) -> DynVar;

    /// Creates a type-erased byte-string variable.
    fn new_bytes(&self, init: Vec<u8>) -> DynVar;

    /// Object-safe [`Stm::try_atomically`]: runs `body` (over the erased
    /// transaction view) until commit or budget exhaustion, with blocking
    /// [`DynTx::retry`] support.
    ///
    /// # Errors
    ///
    /// Returns [`RetryExhausted`] when `policy.max_attempts()` rounds all
    /// failed.
    fn atomically_dyn(
        &self,
        kind: TxKind,
        policy: &RetryPolicy,
        body: &mut DynBody<'_>,
    ) -> Result<(), RetryExhausted>;

    /// Object-safe [`Stm::try_atomically_or_else`]: `first` falling
    /// through to `second` on retry, parking only when both block.
    ///
    /// # Errors
    ///
    /// Returns [`RetryExhausted`] when the budget runs out.
    fn or_else_dyn(
        &self,
        kind: TxKind,
        policy: &RetryPolicy,
        first: &mut DynBody<'_>,
        second: &mut DynBody<'_>,
    ) -> Result<(), RetryExhausted>;

    /// Object-safe [`Stm::atomically_async`]: the returned future runs
    /// `body` until an attempt commits, suspending the task (registering
    /// its waker on the commit notifier) whenever the body blocks on
    /// [`DynTx::retry`]. Unbounded, like the typed version; dropping the
    /// future cancels the block and deregisters any pending wakeup.
    fn atomically_async_dyn(&self, kind: TxKind, body: DynAsyncBody) -> DynFuture;

    /// Object-safe [`Stm::atomically_or_else_async`]: `first` falls
    /// through to `second` on retry; the task suspends only when both
    /// alternatives block, and resolves when either commits.
    fn or_else_async_dyn(
        &self,
        kind: TxKind,
        first: DynAsyncBody,
        second: DynAsyncBody,
    ) -> DynFuture;

    /// Object-safe [`Stm::try_atomically_async`]: a **budgeted** async
    /// atomic block. The future resolves `Err(RetryExhausted)` once the
    /// policy's rounds are spent, and the policy's exponential sleep
    /// backoff runs as timed parks on the executor — the server's defense
    /// against conflict livelock pinning a shared pool worker.
    fn try_atomically_async_dyn(
        &self,
        kind: TxKind,
        policy: RetryPolicy,
        body: DynAsyncBody,
    ) -> DynTryFuture;

    /// Takes the statistics accumulated by every pooled context (see
    /// [`Stm::take_stats`]).
    fn take_stats(&self) -> TxStats;

    /// Wakes every transaction currently parked in a blocking or async
    /// retry by bumping the commit notifier, exactly as a committing
    /// writer would. Woken transactions re-run their bodies; ones whose
    /// condition still does not hold park again.
    ///
    /// This is the shutdown hook for long-lived blocking services (the
    /// `zstm-server` `WAIT` command): flip an external stop flag the
    /// retrying bodies observe, then `notify_retries()` so parked
    /// transactions re-run and see it.
    fn notify_retries(&self);
}

impl<F: TmFactory> DynStm for Stm<F> {
    fn name(&self) -> &'static str {
        Stm::name(self)
    }

    fn new_i64(&self, init: i64) -> DynVar {
        DynVar::new(self.new_tvar(init), self.instance_id())
    }

    fn new_bytes(&self, init: Vec<u8>) -> DynVar {
        DynVar::new(self.new_tvar(init), self.instance_id())
    }

    fn atomically_dyn(
        &self,
        kind: TxKind,
        policy: &RetryPolicy,
        body: &mut DynBody<'_>,
    ) -> Result<(), RetryExhausted> {
        self.try_atomically(kind, policy, |tx| body(tx))
    }

    fn or_else_dyn(
        &self,
        kind: TxKind,
        policy: &RetryPolicy,
        first: &mut DynBody<'_>,
        second: &mut DynBody<'_>,
    ) -> Result<(), RetryExhausted> {
        self.try_atomically_or_else(kind, policy, |tx| first(tx), |tx| second(tx))
    }

    fn atomically_async_dyn(&self, kind: TxKind, mut body: DynAsyncBody) -> DynFuture {
        Box::pin(self.atomically_async(kind, move |tx: &mut Tx<'_, F>| body(tx)))
    }

    fn or_else_async_dyn(
        &self,
        kind: TxKind,
        mut first: DynAsyncBody,
        mut second: DynAsyncBody,
    ) -> DynFuture {
        Box::pin(self.atomically_or_else_async(
            kind,
            move |tx: &mut Tx<'_, F>| first(tx),
            move |tx: &mut Tx<'_, F>| second(tx),
        ))
    }

    fn try_atomically_async_dyn(
        &self,
        kind: TxKind,
        policy: RetryPolicy,
        mut body: DynAsyncBody,
    ) -> DynTryFuture {
        Box::pin(self.try_atomically_async(kind, policy, move |tx: &mut Tx<'_, F>| body(tx)))
    }

    fn take_stats(&self) -> TxStats {
        Stm::take_stats(self)
    }

    fn notify_retries(&self) {
        self.notifier().notify();
    }
}

impl dyn DynStm + '_ {
    /// Typed-return convenience over [`DynStm::atomically_dyn`].
    ///
    /// # Errors
    ///
    /// Returns [`RetryExhausted`] when the policy's budget runs out.
    pub fn atomically<R>(
        &self,
        kind: TxKind,
        policy: &RetryPolicy,
        mut body: impl FnMut(&mut dyn DynTx) -> Result<R, Abort>,
    ) -> Result<R, RetryExhausted> {
        let mut out = None;
        self.atomically_dyn(kind, policy, &mut |tx| {
            out = Some(body(tx)?);
            Ok(())
        })?;
        Ok(out.expect("committed body stored its result"))
    }

    /// Typed-return convenience over [`DynStm::or_else_dyn`].
    ///
    /// # Errors
    ///
    /// Returns [`RetryExhausted`] when the policy's budget runs out.
    pub fn atomically_or_else<R>(
        &self,
        kind: TxKind,
        policy: &RetryPolicy,
        mut first: impl FnMut(&mut dyn DynTx) -> Result<R, Abort>,
        mut second: impl FnMut(&mut dyn DynTx) -> Result<R, Abort>,
    ) -> Result<R, RetryExhausted> {
        let out = std::cell::RefCell::new(None);
        self.or_else_dyn(
            kind,
            policy,
            &mut |tx| {
                *out.borrow_mut() = Some(first(tx)?);
                Ok(())
            },
            &mut |tx| {
                *out.borrow_mut() = Some(second(tx)?);
                Ok(())
            },
        )?;
        Ok(out
            .into_inner()
            .expect("committed alternative stored its result"))
    }

    /// Typed-return convenience over [`DynStm::atomically_async_dyn`]:
    /// an `await`-able atomic block on a runtime-selected engine.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use zstm_api::{DynStm, Stm};
    /// use zstm_core::{StmConfig, TxKind};
    /// use zstm_lsa::LsaStm;
    /// use zstm_util::exec::block_on;
    ///
    /// let stm: Arc<dyn DynStm> = Arc::new(Stm::new(LsaStm::new(StmConfig::new(1))));
    /// let var = stm.new_i64(41);
    /// let v = block_on(stm.atomically_async(TxKind::Short, move |tx| {
    ///     let v = tx.read_i64(&var)? + 1;
    ///     tx.write_i64(&var, v)?;
    ///     Ok(v)
    /// }));
    /// assert_eq!(v, 42);
    /// ```
    pub fn atomically_async<R: Send + 'static>(
        &self,
        kind: TxKind,
        mut body: impl FnMut(&mut dyn DynTx) -> Result<R, Abort> + Send + 'static,
    ) -> impl Future<Output = R> + Send + 'static {
        let out = Arc::new(zstm_util::sync::Mutex::new(None::<R>));
        let slot = Arc::clone(&out);
        let future = self.atomically_async_dyn(
            kind,
            Box::new(move |tx| {
                *slot.lock() = Some(body(tx)?);
                Ok(())
            }),
        );
        async move {
            future.await;
            out.lock()
                .take()
                .expect("committed async body stored its result")
        }
    }

    /// Typed-return convenience over [`DynStm::try_atomically_async_dyn`]:
    /// an `await`-able **budgeted** atomic block on a runtime-selected
    /// engine, resolving `Err(RetryExhausted)` when the budget runs out.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use zstm_api::{DynStm, Stm};
    /// use zstm_core::{AbortReason, RetryPolicy, StmConfig, TxKind};
    /// use zstm_lsa::LsaStm;
    /// use zstm_util::exec::block_on;
    ///
    /// let stm: Arc<dyn DynStm> = Arc::new(Stm::new(LsaStm::new(StmConfig::new(1))));
    /// let policy = RetryPolicy::default().with_max_attempts(3);
    /// let err = block_on(stm.try_atomically_async(TxKind::Short, policy, move |tx| {
    ///     Err::<(), _>(tx.retry())
    /// }))
    /// .unwrap_err();
    /// assert_eq!(err.last_reason(), AbortReason::Retry);
    /// ```
    pub fn try_atomically_async<R: Send + 'static>(
        &self,
        kind: TxKind,
        policy: RetryPolicy,
        mut body: impl FnMut(&mut dyn DynTx) -> Result<R, Abort> + Send + 'static,
    ) -> impl Future<Output = Result<R, RetryExhausted>> + Send + 'static {
        let out = Arc::new(zstm_util::sync::Mutex::new(None::<R>));
        let slot = Arc::clone(&out);
        let future = self.try_atomically_async_dyn(
            kind,
            policy,
            Box::new(move |tx| {
                *slot.lock() = Some(body(tx)?);
                Ok(())
            }),
        );
        async move {
            future.await?;
            Ok(out
                .lock()
                .take()
                .expect("committed async body stored its result"))
        }
    }

    /// Typed-return convenience over [`DynStm::or_else_async_dyn`].
    pub fn atomically_or_else_async<R: Send + 'static>(
        &self,
        kind: TxKind,
        mut first: impl FnMut(&mut dyn DynTx) -> Result<R, Abort> + Send + 'static,
        mut second: impl FnMut(&mut dyn DynTx) -> Result<R, Abort> + Send + 'static,
    ) -> impl Future<Output = R> + Send + 'static {
        let out = Arc::new(zstm_util::sync::Mutex::new(None::<R>));
        let (slot_first, slot_second) = (Arc::clone(&out), Arc::clone(&out));
        let future = self.or_else_async_dyn(
            kind,
            Box::new(move |tx| {
                *slot_first.lock() = Some(first(tx)?);
                Ok(())
            }),
            Box::new(move |tx| {
                *slot_second.lock() = Some(second(tx)?);
                Ok(())
            }),
        );
        async move {
            future.await;
            out.lock()
                .take()
                .expect("committed async alternative stored its result")
        }
    }
}
