//! Async atomic blocks: [`TxFuture`], returned by
//! [`Stm::atomically_async`] and [`Stm::atomically_or_else_async`].
//!
//! The future suspends the *task*, never the OS thread: each poll leases
//! an engine context from the owning [`Stm`]'s pool, runs the transaction
//! attempt **to completion synchronously**, and only if every alternative
//! ended in [`Tx::retry`] registers the task's [`Waker`] on the commit
//! notifier and returns `Pending` — releasing the executor thread to run
//! other tasks. That is what lets many transactional tasks multiplex over
//! a few worker threads (see `zstm_util::exec`).
//!
//! Attempts are deliberately non-suspending — the body cannot `.await`:
//! engine transaction handles ([`TmTx`](zstm_core::TmTx)) are `&mut`
//! borrows of the leased per-thread context and are not `Send`, so a
//! transaction cannot be carried across an await point onto another
//! worker. Suspension happens *between* attempts, which is exactly where
//! the synchronous loop parks its thread; the two shapes share one round
//! runner and one notifier protocol, so the no-lost-wakeup argument is the
//! same (the epoch is captured before the attempt, and a registration
//! against a stale epoch is refused — the attempt re-runs instead).
//!
//! Cancellation is the normal async story: dropping a pending `TxFuture`
//! deregisters its waker, so abandoned futures neither leak notifier
//! slots nor wedge the fallback ticker. A future dropped *mid-attempt*
//! (an unwinding executor worker) rolls the engine transaction back
//! through the existing [`Tx`] drop path — the same guarantee panicking
//! synchronous bodies have.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Instant;

use zstm_core::{Abort, RetryExhausted, RetryPolicy, TmFactory, TxKind};

use crate::notify::WakerKey;
use crate::stm::PollOutcome;
use crate::tx::Tx;
use crate::{Stm, TVar};

/// One alternative of an async atomic block. Boxed so `or_else` chains of
/// differently-typed closures fit one future type; `Send` so the future
/// can be spawned onto a multi-threaded executor.
type AltBody<'a, F, R> = Box<dyn FnMut(&mut Tx<'_, F>) -> Result<R, Abort> + Send + 'a>;

/// The future of an async atomic block.
///
/// Created by [`Stm::atomically_async`] /
/// [`Stm::atomically_or_else_async`]; resolves to the committed body's
/// result. The retry loop is unbounded, like [`Stm::atomically`].
///
/// # Examples
///
/// ```
/// use zstm_api::Stm;
/// use zstm_core::{StmConfig, TxKind};
/// use zstm_util::exec::block_on;
/// use zstm_z::ZStm;
///
/// let stm = Stm::new(ZStm::new(StmConfig::new(2)));
/// let balance = stm.new_tvar(10i64);
/// let v = block_on(stm.atomically_async(TxKind::Short, move |tx| {
///     tx.modify(&balance, |b| *b += 5)?;
///     tx.read(&balance)
/// }));
/// assert_eq!(v, 15);
/// ```
#[must_use = "futures do nothing unless polled"]
pub struct TxFuture<'a, F: TmFactory, R> {
    inner: TryTxFuture<'a, F, R>,
}

impl<'a, F: TmFactory, R> TxFuture<'a, F, R> {
    pub(crate) fn new(stm: Stm<F>, kind: TxKind, alternatives: Vec<AltBody<'a, F, R>>) -> Self {
        Self {
            inner: TryTxFuture::new(stm, kind, RetryPolicy::unbounded(), alternatives),
        }
    }
}

// All fields are `Unpin`, so the future is too — `poll` can use
// `Pin::get_mut` without any unsafe projection.
impl<F: TmFactory, R> Future for TxFuture<'_, F, R> {
    type Output = R;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<R> {
        Pin::new(&mut self.get_mut().inner)
            .poll(cx)
            .map(|result| result.expect("unbounded retry loop cannot exhaust"))
    }
}

/// The future of a **budgeted** async atomic block: [`TxFuture`] with an
/// explicit [`RetryPolicy`], resolving `Err(RetryExhausted)` when the
/// budget runs out instead of retrying forever.
///
/// Created by [`Stm::try_atomically_async`]. Every round the block runs —
/// including re-runs after a blocking retry's wakeup — counts against the
/// budget, and a sleeping policy's between-attempt waits become *timed
/// parks* on the executor's timer (`zstm_util::exec::wake_at`), so a
/// livelocking transaction backs off without pinning a worker thread.
/// On an idle system a parked bounded block still drains: the notifier's
/// fallback ticker re-polls it roughly every
/// [`RETRY_FALLBACK_WAKE`](crate::RETRY_FALLBACK_WAKE), and each re-poll
/// spends budget.
#[must_use = "futures do nothing unless polled"]
pub struct TryTxFuture<'a, F: TmFactory, R> {
    stm: Stm<F>,
    kind: TxKind,
    policy: RetryPolicy,
    /// Rounds consumed so far, across polls (the budget's odometer).
    attempts: u64,
    alternatives: Vec<AltBody<'a, F, R>>,
    /// Live waker registration from the previous poll, if any.
    registration: Option<WakerKey>,
    done: bool,
}

impl<'a, F: TmFactory, R> TryTxFuture<'a, F, R> {
    pub(crate) fn new(
        stm: Stm<F>,
        kind: TxKind,
        policy: RetryPolicy,
        alternatives: Vec<AltBody<'a, F, R>>,
    ) -> Self {
        debug_assert!(!alternatives.is_empty());
        Self {
            stm,
            kind,
            policy,
            attempts: 0,
            alternatives,
            registration: None,
            done: false,
        }
    }
}

impl<F: TmFactory, R> Future for TryTxFuture<'_, F, R> {
    type Output = Result<R, RetryExhausted>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        assert!(!this.done, "transaction future polled after completion");
        // A poll with a live registration means the wake came from
        // somewhere else (executor-internal re-poll, select-style
        // composition). Remove the old waker first: the task may have
        // migrated workers, making the stored waker stale.
        if let Some(key) = this.registration.take() {
            this.stm.notifier().deregister_waker(key);
        }
        match this.stm.poll_once(
            this.kind,
            &this.policy,
            &mut this.attempts,
            &mut this.alternatives,
            cx.waker(),
        ) {
            PollOutcome::Ready(result) => {
                this.done = true;
                Poll::Ready(Ok(result))
            }
            PollOutcome::Suspended(key) => {
                this.registration = Some(key);
                Poll::Pending
            }
            PollOutcome::Yielded => {
                // Not suspended — just being fair to co-tasks (conflict
                // burst or the spin A/B shape). Re-poll as soon as the
                // executor comes back around.
                cx.waker().wake_by_ref();
                Poll::Pending
            }
            PollOutcome::Backoff(delay) => {
                // Timed park: the executor's timer re-polls after the
                // policy's sleep, with no worker thread blocked meanwhile.
                zstm_util::exec::wake_at(Instant::now() + delay, cx.waker().clone());
                Poll::Pending
            }
            PollOutcome::Exhausted(err) => {
                this.done = true;
                Poll::Ready(Err(err))
            }
        }
    }
}

/// Cancellation: dropping a suspended future removes its waker from the
/// notifier so the slot is reclaimed and the fallback ticker can stand
/// down. (A commit racing this drop may have already consumed the
/// registration — `deregister_waker` is generation-checked, so the stale
/// key is a no-op.)
impl<F: TmFactory, R> Drop for TryTxFuture<'_, F, R> {
    fn drop(&mut self) {
        if let Some(key) = self.registration.take() {
            self.stm.notifier().deregister_waker(key);
        }
    }
}

impl<F: TmFactory> Stm<F> {
    /// Runs `body` as an **async** transaction: the returned future
    /// resolves once an attempt commits, suspending the task (not the OS
    /// thread) whenever the body [`retries`](Tx::retry).
    ///
    /// Each attempt runs synchronously within one executor poll on a
    /// context leased from this handle's pool — bodies cannot `.await`
    /// (see [`TxFuture`] for why) — so the body
    /// closure is ordinary synchronous code, identical to what
    /// [`Stm::atomically`] takes, plus `Send` so the future can be
    /// spawned. Conflict aborts re-run within the same poll (bounded, then
    /// the poll yields); only blocking retries suspend.
    ///
    /// Dropping the future before it resolves cancels the atomic block:
    /// nothing was committed, and any registered wakeup is deregistered.
    pub fn atomically_async<'a, R>(
        &self,
        kind: TxKind,
        body: impl FnMut(&mut Tx<'_, F>) -> Result<R, Abort> + Send + 'a,
    ) -> TxFuture<'a, F, R> {
        TxFuture::new(self.clone(), kind, vec![Box::new(body)])
    }

    /// [`Stm::atomically_async`] with an explicit retry budget: resolves
    /// `Err(`[`RetryExhausted`]`)` once `policy.max_attempts()` rounds all
    /// failed to commit, and honors the policy's exponential sleep
    /// backoff as timed parks on the executor.
    ///
    /// This is the overload-protection entry point: a server puts each
    /// request's transaction behind a bounded, backing-off policy so a
    /// conflict livelock degrades to a clean error carrying the last
    /// [`AbortReason`](zstm_core::AbortReason) instead of spinning a
    /// shared worker forever.
    pub fn try_atomically_async<'a, R>(
        &self,
        kind: TxKind,
        policy: RetryPolicy,
        body: impl FnMut(&mut Tx<'_, F>) -> Result<R, Abort> + Send + 'a,
    ) -> TryTxFuture<'a, F, R> {
        TryTxFuture::new(self.clone(), kind, policy, vec![Box::new(body)])
    }

    /// Async [`Stm::atomically_or_else`]: `first` falling through to
    /// `second` when it retries, suspending the task only when **both**
    /// alternatives block, resolving once either commits.
    pub fn atomically_or_else_async<'a, R>(
        &self,
        kind: TxKind,
        first: impl FnMut(&mut Tx<'_, F>) -> Result<R, Abort> + Send + 'a,
        second: impl FnMut(&mut Tx<'_, F>) -> Result<R, Abort> + Send + 'a,
    ) -> TxFuture<'a, F, R> {
        TxFuture::new(self.clone(), kind, vec![Box::new(first), Box::new(second)])
    }

    /// Convenience for async code that only reads: `stm.read_async(&var)`.
    ///
    /// Equivalent to an [`Stm::atomically_async`] block reading the one
    /// variable.
    pub fn read_async<'a, T: zstm_core::TxValue>(&self, var: &'a TVar<F, T>) -> TxFuture<'a, F, T> {
        self.atomically_async(TxKind::Short, move |tx| tx.read(var))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zstm_core::StmConfig;
    use zstm_lsa::LsaStm;
    use zstm_util::exec::{block_on, ThreadPool};
    use zstm_z::ZStm;

    #[test]
    fn block_on_drives_a_simple_async_transaction() {
        let stm = Stm::new(ZStm::new(StmConfig::new(1)));
        let var = stm.new_tvar(1i64);
        let v = {
            let var = var.clone();
            block_on(stm.atomically_async(TxKind::Short, move |tx| {
                tx.modify(&var, |v| *v *= 2)?;
                tx.read(&var)
            }))
        };
        assert_eq!(v, 2);
        assert_eq!(stm.take_stats().total_commits(), 1);
    }

    #[test]
    fn async_waiter_suspends_and_wakes_on_commit() {
        let stm = Stm::new(LsaStm::new(StmConfig::new(2)));
        let gate = stm.new_tvar(0i64);
        let pool = ThreadPool::new(1);
        let waiter = {
            let (stm, gate) = (stm.clone(), gate.clone());
            pool.spawn(async move {
                stm.atomically_async(TxKind::Short, move |tx| {
                    let g = tx.read(&gate)?;
                    if g == 0 {
                        return tx.retry();
                    }
                    Ok(g)
                })
                .await
            })
        };
        // Wait until the task actually registered its waker (suspended).
        while stm.notifier().registered_wakers() == 0 {
            std::thread::yield_now();
        }
        stm.atomically(TxKind::Short, |tx| tx.write(&gate, 9));
        assert_eq!(waiter.join(), 9);
        // Stop the executor so its worker thread returns the cached lease
        // (and its stats) to the pool before harvesting.
        drop(pool);
        let stats = stm.take_stats();
        assert!(stats.waker_parks() >= 1, "the waiter must have suspended");
        assert_eq!(
            stats.condvar_parks(),
            0,
            "no OS thread parked anywhere in this test"
        );
    }

    #[test]
    fn dropping_a_suspended_future_deregisters_its_waker() {
        let stm = Stm::new(ZStm::new(StmConfig::new(2)));
        let gate = stm.new_tvar(0i64);
        let mut future = {
            let gate = gate.clone();
            stm.atomically_async(TxKind::Short, move |tx| {
                let g = tx.read(&gate)?;
                if g == 0 {
                    return tx.retry();
                }
                Ok(g)
            })
        };
        // Drive one poll by hand so the future suspends.
        let noop = noop_waker();
        let mut cx = Context::from_waker(&noop);
        assert!(Pin::new(&mut future).poll(&mut cx).is_pending());
        assert_eq!(stm.notifier().registered_wakers(), 1);
        drop(future);
        assert_eq!(
            stm.notifier().registered_wakers(),
            0,
            "cancellation must release the waker slot"
        );
        // And the lease went back to the pool: a fresh transaction works.
        assert_eq!(stm.atomically(TxKind::Short, |tx| tx.read(&gate)), 0);
    }

    fn noop_waker() -> std::task::Waker {
        struct Noop;
        impl std::task::Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        std::task::Waker::from(Arc::new(Noop))
    }

    #[test]
    fn budgeted_future_commits_like_the_unbounded_one() {
        let stm = Stm::new(ZStm::new(StmConfig::new(1)));
        let var = stm.new_tvar(20i64);
        let policy = zstm_core::RetryPolicy::default().with_max_attempts(8);
        let v = {
            let var = var.clone();
            block_on(stm.try_atomically_async(TxKind::Short, policy, move |tx| {
                tx.modify(&var, |v| *v += 1)?;
                tx.read(&var)
            }))
        };
        assert_eq!(v, Ok(21));
    }

    #[test]
    fn budgeted_future_exhausts_on_persistent_aborts_and_records_it() {
        use zstm_core::{Abort, AbortReason};
        let stm = Stm::new(ZStm::new(StmConfig::new(1)));
        let policy = zstm_core::RetryPolicy::default().with_max_attempts(5);
        let err = block_on(stm.try_atomically_async(TxKind::Short, policy, move |_tx| {
            Err::<(), _>(Abort::new(AbortReason::Explicit))
        }))
        .unwrap_err();
        assert_eq!(err.attempts(), 5);
        assert_eq!(err.last_reason(), AbortReason::Explicit);
        assert_eq!(stm.take_stats().retries_exhausted(), 1);
    }

    #[test]
    fn sleeping_policy_backs_off_via_timed_parks() {
        use std::time::{Duration, Instant};
        use zstm_core::{Abort, AbortReason};
        let stm = Stm::new(LsaStm::new(StmConfig::new(1)));
        // 3 attempts with 10ms/20ms sleeps between them: the block must
        // take at least 30ms without any worker thread blocking (block_on
        // parks its own thread; the timer wakes it).
        let policy = zstm_core::RetryPolicy::default()
            .with_max_attempts(3)
            .with_exponential_sleep(Duration::from_millis(10), Duration::from_millis(100));
        let started = Instant::now();
        let err = block_on(stm.try_atomically_async(TxKind::Short, policy, move |_tx| {
            Err::<(), _>(Abort::new(AbortReason::Explicit))
        }))
        .unwrap_err();
        assert_eq!(err.attempts(), 3);
        assert!(
            started.elapsed() >= Duration::from_millis(30),
            "exponential sleeps must actually space the attempts, got {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn bounded_blocking_retry_drains_within_fallback_ticks() {
        // A budget of 2 on a block that always retries: first round
        // suspends, the fallback ticker re-polls it, the second round
        // exhausts. No commit ever happens — the future must still
        // resolve (this is what bounds a WAIT-shaped block server-side).
        let stm = Stm::new(ZStm::new(StmConfig::new(1)));
        let gate = stm.new_tvar(0i64);
        let policy = zstm_core::RetryPolicy::default().with_max_attempts(2);
        let err = {
            let gate = gate.clone();
            block_on(stm.try_atomically_async(TxKind::Short, policy, move |tx| {
                let g = tx.read(&gate)?;
                if g == 0 {
                    return tx.retry();
                }
                Ok(g)
            }))
        }
        .unwrap_err();
        assert_eq!(err.last_reason(), zstm_core::AbortReason::Retry);
        assert_eq!(
            stm.notifier().registered_wakers(),
            0,
            "an exhausted future must leave no waker behind"
        );
    }
}
