//! The transaction handle passed to `Stm::atomically` bodies.

use zstm_core::{Abort, AbortReason, TmFactory, TmThread, TmTx, TxId, TxKind, TxValue};

use crate::TVar;

/// Shorthand for the engine-level transaction type of factory `F`.
pub(crate) type RawTx<'t, F> = <<F as TmFactory>::Thread as TmThread>::Tx<'t>;

/// An active transaction of the [`Stm`](crate::Stm) front end.
///
/// Wraps the engine's [`TmTx`] handle with [`TVar`]-typed accessors,
/// composable blocking ([`Tx::retry`]) and the write tracking the commit
/// notifier needs. Bodies receive `&mut Tx` and propagate [`Abort`] with
/// `?`:
///
/// ```
/// use zstm_api::Stm;
/// use zstm_core::{StmConfig, TxKind};
/// use zstm_z::ZStm;
///
/// let stm = Stm::new(ZStm::new(StmConfig::new(1)));
/// let acc = stm.new_tvar(10i64);
/// let v = stm.atomically(TxKind::Short, |tx| {
///     let v = tx.read(&acc)?;
///     tx.write(&acc, v + 5)?;
///     Ok(v + 5)
/// });
/// assert_eq!(v, 15);
/// ```
pub struct Tx<'t, F: TmFactory> {
    inner: Option<RawTx<'t, F>>,
    pub(crate) wrote: bool,
    /// Id of the owning [`Stm`](crate::Stm) instance, so the erased
    /// facade can reject `DynVar`s from a different instance of the same
    /// engine type.
    pub(crate) stm_id: u64,
}

/// A `Tx` dropped without commit/rollback — a panic unwinding through the
/// body — rolls the engine transaction back so eagerly-acquired write
/// reservations are released instead of wedging their variables behind a
/// permanently-active ghost transaction.
impl<F: TmFactory> Drop for Tx<'_, F> {
    fn drop(&mut self) {
        if let Some(raw) = self.inner.take() {
            raw.rollback(AbortReason::Explicit);
        }
    }
}

impl<'t, F: TmFactory> Tx<'t, F> {
    pub(crate) fn new(raw: RawTx<'t, F>, stm_id: u64) -> Self {
        Self {
            inner: Some(raw),
            wrote: false,
            stm_id,
        }
    }

    pub(crate) fn into_raw(mut self) -> RawTx<'t, F> {
        self.inner.take().expect("transaction still active")
    }

    /// The engine-level transaction, for interop with raw `F::Var`s.
    ///
    /// Writes through this handle still wake parked retries: the notifier
    /// is bumped whenever a transaction that called [`Tx::write`],
    /// [`Tx::modify`] or [`Tx::write_raw`] commits — going around *those*
    /// (writing through `raw()` directly) commits fine but relies on the
    /// fallback timeout to wake waiters, so prefer the helpers.
    pub fn raw(&mut self) -> &mut RawTx<'t, F> {
        self.inner.as_mut().expect("transaction still active")
    }

    /// Reads the variable, returning a snapshot of its value.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot provide a consistent value;
    /// propagate it with `?` and the retry loop re-runs the body.
    pub fn read<T: TxValue>(&mut self, var: &TVar<F, T>) -> Result<T, Abort> {
        self.raw().read(&var.var)
    }

    /// Writes the variable (buffered or tentative until commit).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on write conflicts resolved against this
    /// transaction.
    pub fn write<T: TxValue>(&mut self, var: &TVar<F, T>, value: T) -> Result<(), Abort> {
        self.wrote = true;
        self.raw().write(&var.var, value)
    }

    /// Reads, applies `f` in place, and writes back.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the read or the write aborts.
    pub fn modify<T: TxValue>(
        &mut self,
        var: &TVar<F, T>,
        f: impl FnOnce(&mut T),
    ) -> Result<(), Abort> {
        let mut value = self.read(var)?;
        f(&mut value);
        self.write(var, value)
    }

    /// Reads a raw engine variable (interop with pre-`TVar` code).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot provide a consistent value.
    pub fn read_raw<T: TxValue>(&mut self, var: &F::Var<T>) -> Result<T, Abort> {
        self.raw().read(var)
    }

    /// Writes a raw engine variable; parked retries are still woken when
    /// this transaction commits.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on write conflicts resolved against this
    /// transaction.
    pub fn write_raw<T: TxValue>(&mut self, var: &F::Var<T>, value: T) -> Result<(), Abort> {
        self.wrote = true;
        self.raw().write(var, value)
    }

    /// Blocks the atomic block until the world changes.
    ///
    /// Returning `tx.retry()` from a body rolls the attempt back with
    /// [`AbortReason::Retry`] and parks the thread on the owning
    /// [`Stm`](crate::Stm)'s commit notifier; the body is re-run after the
    /// next writer commit (conservatively: *any* writer). Inside an
    /// [`Stm::atomically_or_else`](crate::Stm::atomically_or_else) first
    /// alternative, a retry falls through to the second alternative
    /// instead of parking.
    ///
    /// # Errors
    ///
    /// Always returns `Err` — the retry abort to propagate with `return`
    /// or `?`.
    pub fn retry<R>(&self) -> Result<R, Abort> {
        Err(Abort::new(AbortReason::Retry))
    }

    /// This attempt's id.
    pub fn id(&self) -> TxId {
        self.inner.as_ref().expect("transaction still active").id()
    }

    /// The transaction's short/long classification.
    pub fn kind(&self) -> TxKind {
        self.inner
            .as_ref()
            .expect("transaction still active")
            .kind()
    }
}
