//! Composable atomic front end for the `zstm` engines.
//!
//! The five STMs expose a deliberately low-level SPI
//! ([`TmFactory`](zstm_core::TmFactory) / [`TmThread`](zstm_core::TmThread)
//! / [`TmTx`](zstm_core::TmTx)): explicit logical-thread registration,
//! `&mut` transaction handles, spin-retry loops. That is what the
//! deterministic paper-figure harnesses need — and nothing an application
//! wants to write. This crate layers the user-facing API on top, changing
//! **no engine code**:
//!
//! * [`Stm`] — a cheap-clone runtime handle that owns the factory and
//!   leases per-OS-thread contexts transparently (thread-local lease pool;
//!   user code never calls `register_thread`);
//! * [`TVar`] — shareable typed variable handles with
//!   [`read`](Tx::read)/[`write`](Tx::write)/[`modify`](Tx::modify)
//!   helpers on the [`Tx`] handle;
//! * composable blocking — [`Tx::retry`] parks the atomic block on the
//!   `Stm`'s commit notifier (conservative wake on any writer commit)
//!   instead of spinning, and [`Stm::atomically_or_else`] composes
//!   alternatives that fall through on retry;
//! * [`DynStm`]/[`DynTx`] — an object-safe erased facade over `i64` and
//!   byte-string variables, so harnesses select an engine at runtime
//!   without monomorphizing every driver five times.
//!
//! # Quickstart
//!
//! ```
//! use zstm_api::Stm;
//! use zstm_core::{StmConfig, TxKind};
//! use zstm_z::ZStm;
//!
//! let stm = Stm::new(ZStm::new(StmConfig::new(2)));
//! let checking = stm.new_tvar(100i64);
//! let savings = stm.new_tvar(400i64);
//!
//! // A short update transaction: all or nothing, retried on conflicts.
//! stm.atomically(TxKind::Short, |tx| {
//!     let c = tx.read(&checking)?;
//!     tx.write(&checking, c - 50)?;
//!     tx.modify(&savings, |s| *s += 50)
//! });
//!
//! // Blocking: withdraw 40 as soon as the balance covers it. The guard
//! // holds here (50 ≥ 40); when it does not, `tx.retry()` parks the
//! // thread until a writer commits instead of spinning.
//! let observed = stm.atomically(TxKind::Short, |tx| {
//!     let c = tx.read(&checking)?;
//!     if c < 40 {
//!         return tx.retry();
//!     }
//!     tx.write(&checking, c - 40)?;
//!     Ok(c)
//! });
//! assert_eq!(observed, 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod erased;
mod future;
mod notify;
mod stm;
mod tvar;
mod tx;

pub use erased::{DynAsyncBody, DynBody, DynFuture, DynStm, DynTryFuture, DynTx, DynVar};
pub use future::{TryTxFuture, TxFuture};
pub use notify::{Notifier, WakerKey, RETRY_FALLBACK_WAKE};
pub use stm::Stm;
pub use tvar::TVar;
pub use tx::Tx;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zstm_core::{Abort, AbortReason, RetryPolicy, StmConfig, TxKind};
    use zstm_lsa::LsaStm;
    use zstm_z::ZStm;

    #[test]
    fn lease_pool_recycles_contexts_across_thread_exits() {
        // Config allows 2 logical threads; 6 sequential OS threads all run
        // transactions because exited threads return their contexts.
        let stm = Stm::new(LsaStm::new(StmConfig::new(2)));
        let counter = stm.new_tvar(0i64);
        for _ in 0..6 {
            let (stm, counter) = (stm.clone(), counter.clone());
            std::thread::spawn(move || {
                stm.atomically(TxKind::Short, |tx| tx.modify(&counter, |c| *c += 1));
            })
            .join()
            .expect("worker finished");
        }
        let total = stm.atomically(TxKind::Short, |tx| tx.read(&counter));
        assert_eq!(total, 6);
    }

    #[test]
    fn nested_atomically_leases_a_second_context() {
        let stm = Stm::new(LsaStm::new(StmConfig::new(2)));
        let a = stm.new_tvar(1i64);
        let b = stm.new_tvar(2i64);
        let sum = stm.atomically(TxKind::Short, |tx| {
            let x = tx.read(&a)?;
            // A nested independent transaction on the same OS thread.
            let y = stm.atomically(TxKind::Short, |tx2| tx2.read(&b));
            Ok(x + y)
        });
        assert_eq!(sum, 3);
    }

    #[test]
    fn take_stats_harvests_every_cached_lease_after_nesting() {
        // A nested atomically leaves TWO leases cached on this thread;
        // take_stats must flush and count both.
        let stm = Stm::new(LsaStm::new(StmConfig::new(2)));
        let a = stm.new_tvar(0i64);
        let b = stm.new_tvar(0i64);
        stm.atomically(TxKind::Short, |tx| {
            tx.modify(&a, |v| *v += 1)?;
            stm.atomically(TxKind::Short, |tx2| tx2.modify(&b, |v| *v += 1));
            Ok(())
        });
        let stats = stm.take_stats();
        assert_eq!(
            stats.total_commits(),
            2,
            "both the outer and the nested context's commits are harvested"
        );
        // And both slots are usable by fresh concurrent threads again.
        let (s1, s2) = (stm.clone(), stm.clone());
        let t1 = std::thread::spawn(move || {
            let v = s1.new_tvar(0i64);
            s1.atomically(TxKind::Short, |tx| tx.read(&v));
        });
        let t2 = std::thread::spawn(move || {
            let v = s2.new_tvar(0i64);
            s2.atomically(TxKind::Short, |tx| tx.read(&v));
        });
        t1.join().expect("first recycled slot");
        t2.join().expect("second recycled slot");
    }

    #[test]
    fn dropped_stm_leases_are_evicted_from_long_lived_threads() {
        // A long-lived thread using short-lived Stm instances must not pin
        // their factories through the TLS lease cache forever.
        let stm1 = Stm::new(LsaStm::new(StmConfig::new(1)));
        let var = stm1.new_tvar(0i64);
        stm1.atomically(TxKind::Short, |tx| tx.read(&var));
        let weak = Arc::downgrade(stm1.factory());
        drop(var);
        drop(stm1);
        // The cache still holds stm1's lease; the next put-back on this
        // thread sweeps it out.
        let stm2 = Stm::new(LsaStm::new(StmConfig::new(1)));
        let var2 = stm2.new_tvar(0i64);
        stm2.atomically(TxKind::Short, |tx| tx.read(&var2));
        assert!(
            weak.upgrade().is_none(),
            "dropped Stm's factory must be released by the lease sweep"
        );
    }

    #[test]
    fn exhausting_concurrent_leases_panics_with_context() {
        let stm = Stm::new(LsaStm::new(StmConfig::new(1)));
        let var = stm.new_tvar(0i64);
        // First lease goes to this thread and stays cached.
        let _ = stm.atomically(TxKind::Short, |tx| tx.read(&var));
        let stm2 = stm.clone();
        let err = std::thread::spawn(move || {
            let var2 = stm2.new_tvar(0i64);
            stm2.atomically(TxKind::Short, |tx| tx.read(&var2));
        })
        .join()
        .expect_err("second concurrent OS thread must fail cleanly");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("logical threads are leased"),
            "panic message should explain the lease exhaustion: {message}"
        );
        // After flushing our cached lease the slot is reusable.
        stm.flush_local();
        let stm3 = stm.clone();
        let var3 = var.clone();
        std::thread::spawn(move || {
            stm3.atomically(TxKind::Short, |tx| tx.modify(&var3, |v| *v += 1));
        })
        .join()
        .expect("slot recycled after flush");
    }

    #[test]
    fn try_atomically_reports_exhaustion_reason() {
        let stm = Stm::new(ZStm::new(StmConfig::new(1)));
        let err = stm
            .try_atomically(
                TxKind::Short,
                &RetryPolicy::default()
                    .with_max_attempts(3)
                    .with_backoff(false),
                |_tx: &mut Tx<'_, ZStm>| -> Result<(), Abort> {
                    Err(Abort::new(AbortReason::Explicit))
                },
            )
            .expect_err("always-aborting body exhausts");
        assert_eq!(err.attempts(), 3);
        assert_eq!(err.last_reason(), AbortReason::Explicit);
    }

    #[test]
    fn bounded_retry_budget_cannot_block_forever() {
        let stm = Stm::new(LsaStm::new(StmConfig::new(1)));
        let gate = stm.new_tvar(0i64);
        let started = std::time::Instant::now();
        let err = stm
            .try_atomically(
                TxKind::Short,
                &RetryPolicy::default().with_max_attempts(1_000_000),
                |tx| {
                    let g = tx.read(&gate)?;
                    if g == 0 {
                        return tx.retry();
                    }
                    Ok(g)
                },
            )
            .expect_err("nothing ever commits, budget must expire");
        assert_eq!(err.last_reason(), AbortReason::Retry);
        assert!(stm.take_stats().blocking_retries() >= 1);
        // The whole point of a bounded policy: fail loudly (one idle
        // fallback tick), not after budget x 100 ms of parking.
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "bounded blocking retry must give up fast on an idle system"
        );
    }

    #[test]
    fn erased_facade_round_trips_i64_and_bytes() {
        let stm: Arc<dyn DynStm> = Arc::new(Stm::new(ZStm::new(StmConfig::new(1))));
        let n = stm.new_i64(41);
        let s = stm.new_bytes(b"abc".to_vec());
        let policy = RetryPolicy::unbounded();
        let (v, bytes) = stm
            .atomically(TxKind::Short, &policy, |tx| {
                let v = tx.read_i64(&n)? + 1;
                tx.write_i64(&n, v)?;
                let mut b = tx.read_bytes(&s)?;
                b.push(b'd');
                tx.write_bytes(&s, b.clone())?;
                Ok((v, b))
            })
            .expect("commits");
        assert_eq!(v, 42);
        assert_eq!(bytes, b"abcd");
        assert_eq!(stm.name(), "z-stm");
        assert!(stm.take_stats().total_commits() >= 1);
    }

    #[test]
    #[should_panic(expected = "different DynStm instance")]
    fn dynvar_type_confusion_panics() {
        let lsa: Arc<dyn DynStm> = Arc::new(Stm::new(LsaStm::new(StmConfig::new(1))));
        let z: Arc<dyn DynStm> = Arc::new(Stm::new(ZStm::new(StmConfig::new(1))));
        let var = lsa.new_i64(0);
        let _ = z.atomically(TxKind::Short, &RetryPolicy::unbounded(), |tx| {
            tx.read_i64(&var)
        });
    }

    #[test]
    #[should_panic(expected = "different DynStm instance")]
    fn dynvar_instance_confusion_panics_even_for_the_same_engine_type() {
        // Two instances of the SAME engine type: the concrete-type
        // downcast would succeed, silently mixing two unrelated clocks —
        // the instance-id tag must catch it.
        let a: Arc<dyn DynStm> = Arc::new(Stm::new(ZStm::new(StmConfig::new(1))));
        let b: Arc<dyn DynStm> = Arc::new(Stm::new(ZStm::new(StmConfig::new(1))));
        let var = a.new_i64(0);
        let _ = b.atomically(TxKind::Short, &RetryPolicy::unbounded(), |tx| {
            tx.read_i64(&var)
        });
    }

    #[test]
    fn panicking_body_rolls_back_and_releases_reservations() {
        // A panic unwinding out of a body must not leave the written
        // variable reserved by a ghost transaction: later writers through
        // a fresh lease must still commit.
        let stm = Stm::new(LsaStm::new(StmConfig::new(2)));
        let var = stm.new_tvar(0i64);
        let (stm2, var2) = (stm.clone(), var.clone());
        let panicked = std::thread::spawn(move || {
            stm2.atomically(TxKind::Short, |tx| {
                tx.write(&var2, 666)?;
                panic!("body blows up mid-transaction");
                #[allow(unreachable_code)]
                Ok(())
            });
        })
        .join();
        assert!(panicked.is_err(), "the body must have panicked");
        // The reservation was rolled back: this write succeeds promptly.
        stm.atomically(TxKind::Short, |tx| tx.write(&var, 1));
        let v = stm.atomically(TxKind::Short, |tx| tx.read(&var));
        assert_eq!(v, 1, "aborted panic write must be invisible");
        let stats = stm.take_stats();
        assert_eq!(
            stats.aborts_for(AbortReason::Explicit),
            1,
            "the panicked attempt is recorded as an explicit abort"
        );
    }
}
