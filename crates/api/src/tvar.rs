//! Shareable typed transactional variables.

use std::sync::Arc;

use zstm_core::{TmFactory, TxValue};

/// A shareable, cheap-to-clone handle to a transactional variable of the
/// STM `F` holding a `T`.
///
/// `TVar`s are created with [`Stm::new_tvar`](crate::Stm::new_tvar) and
/// read/written inside [`Stm::atomically`](crate::Stm::atomically) bodies
/// through the [`Tx`](crate::Tx) handle. Cloning shares the underlying
/// variable (an `Arc` bump), so handles can be captured by worker-thread
/// closures freely.
///
/// # Examples
///
/// ```
/// use zstm_api::Stm;
/// use zstm_core::{StmConfig, TxKind};
/// use zstm_lsa::LsaStm;
///
/// let stm = Stm::new(LsaStm::new(StmConfig::new(1)));
/// let balance = stm.new_tvar(100i64);
/// let snapshot = balance.clone(); // same variable
/// stm.atomically(TxKind::Short, |tx| tx.modify(&balance, |b| *b += 1));
/// let v = stm.atomically(TxKind::Short, |tx| tx.read(&snapshot));
/// assert_eq!(v, 101);
/// ```
pub struct TVar<F: TmFactory, T: TxValue> {
    pub(crate) var: Arc<F::Var<T>>,
}

impl<F: TmFactory, T: TxValue> TVar<F, T> {
    /// Wraps an engine-level variable in a shareable handle.
    ///
    /// Usually called through [`Stm::new_tvar`](crate::Stm::new_tvar);
    /// exposed so existing code holding raw `F::Var<T>`s can migrate
    /// piecemeal.
    pub fn from_raw(var: F::Var<T>) -> Self {
        Self { var: Arc::new(var) }
    }

    /// The underlying engine variable, for interop with the raw
    /// [`TmTx`](zstm_core::TmTx) SPI.
    pub fn raw(&self) -> &F::Var<T> {
        &self.var
    }
}

impl<F: TmFactory, T: TxValue> Clone for TVar<F, T> {
    fn clone(&self) -> Self {
        Self {
            var: Arc::clone(&self.var),
        }
    }
}

impl<F: TmFactory, T: TxValue> std::fmt::Debug for TVar<F, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TVar").finish_non_exhaustive()
    }
}
