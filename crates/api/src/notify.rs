//! The commit notifier behind composable blocking.
//!
//! Every [`Stm`](crate::Stm) owns one [`Notifier`]. The retry loop reads
//! the epoch *before* beginning an attempt; if the attempt ends in
//! [`AbortReason::Retry`](zstm_core::AbortReason::Retry), the thread parks
//! until the epoch moves past the captured value. Every transaction that
//! commits **with writes** through the same `Stm` bumps the epoch — a
//! conservative wake (any writer, any variable) that is correct for all
//! five engines with zero engine changes: a woken waiter simply re-runs
//! its body and either proceeds or retries again.
//!
//! The protocol has no lost wakeups for writers routed through the `Stm`
//! handle: the epoch is captured before the attempt's first read, so a
//! write committed after the capture (the only write the attempt could
//! have missed) has already bumped the epoch by the time the waiter parks,
//! and [`Notifier::wait`] returns immediately. Writers that bypass the
//! handle (raw `TmThread` harness code) are covered by a coarse fallback
//! timeout instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use zstm_util::sync::{Condvar, Mutex};

/// How long a parked retry sleeps before conservatively re-running even
/// without a commit notification. This only matters when a writer commits
/// through the raw engine SPI (which does not bump the notifier); writers
/// using the `Stm` handle always wake parked waiters promptly.
pub const RETRY_FALLBACK_WAKE: Duration = Duration::from_millis(100);

/// Epoch-based commit notification: bump on writer commit, park until the
/// epoch moves.
#[derive(Debug, Default)]
pub struct Notifier {
    epoch: AtomicU64,
    /// Threads currently inside [`Notifier::wait`]. Writers skip the
    /// mutex + `notify_all` entirely while this is zero, so the common
    /// no-waiter commit pays one `SeqCst` add and one load — no shared
    /// lock on the commit path.
    waiters: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Notifier {
    /// Creates a notifier at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current epoch. Capture this *before* beginning a transaction
    /// attempt that may retry.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Announces a writer commit: bumps the epoch and wakes every parked
    /// waiter. With no waiters registered this is two uncontended atomic
    /// operations — writers do not serialize on the notifier mutex.
    pub fn notify(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // SeqCst Dekker pairing with `wait`: the waiter registers itself
        // *before* checking the epoch, we bump the epoch *before* reading
        // the registration — at least one side always sees the other, so
        // skipping the wake while `waiters == 0` cannot strand a waiter.
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        // Taking the lock orders the bump against waiters that checked the
        // epoch but have not yet parked: they hold the lock between check
        // and park, so by the time we acquire it they either saw the new
        // epoch or are already waiting on the condvar.
        drop(self.lock.lock());
        self.cv.notify_all();
    }

    /// Parks until the epoch differs from `seen` or `timeout` elapsed.
    /// Returns `true` if the epoch moved (a commit happened), `false` on
    /// timeout.
    pub fn wait(&self, seen: u64, timeout: Duration) -> bool {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let moved = self.wait_registered(seen, timeout);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        moved
    }

    fn wait_registered(&self, seen: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.lock.lock();
        while self.epoch.load(Ordering::SeqCst) == seen {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _timed_out) = self.cv.wait_timeout(guard, deadline - now);
            guard = g;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_returns_immediately_on_stale_epoch() {
        let n = Notifier::new();
        let seen = n.epoch();
        n.notify();
        assert!(n.wait(seen, Duration::from_secs(5)));
    }

    #[test]
    fn wait_times_out_without_commit() {
        let n = Notifier::new();
        let seen = n.epoch();
        assert!(!n.wait(seen, Duration::from_millis(5)));
    }

    #[test]
    fn notify_wakes_parked_waiter() {
        let n = Arc::new(Notifier::new());
        let seen = n.epoch();
        let n2 = Arc::clone(&n);
        let waiter = std::thread::spawn(move || n2.wait(seen, Duration::from_secs(10)));
        // Give the waiter a moment to park, then notify.
        std::thread::sleep(Duration::from_millis(20));
        n.notify();
        assert!(waiter.join().expect("waiter finished"));
    }
}
