//! The commit notifier behind composable blocking — synchronous *and*
//! asynchronous.
//!
//! Every [`Stm`](crate::Stm) owns one [`Notifier`]. The retry loop reads
//! the epoch *before* beginning an attempt; if the attempt ends in
//! [`AbortReason::Retry`](zstm_core::AbortReason::Retry), the waiter
//! suspends until the epoch moves past the captured value. Every
//! transaction that commits **with writes** through the same `Stm` bumps
//! the epoch — a conservative wake (any writer, any variable) that is
//! correct for all five engines with zero engine changes: a woken waiter
//! simply re-runs its body and either proceeds or retries again.
//!
//! A waiter suspends in one of two shapes:
//!
//! * **condvar park** ([`Notifier::wait`]) — the synchronous
//!   `Stm::atomically` loop puts the whole OS thread to sleep;
//! * **waker registration** ([`Notifier::register_waker`]) — the async
//!   `Stm::atomically_async` future stores a [`Waker`] and returns
//!   `Pending`, releasing its executor thread. [`Notifier::notify`] wakes
//!   both populations.
//!
//! The protocol has no lost wakeups for writers routed through the `Stm`
//! handle, in either shape: the epoch is captured before the attempt's
//! first read, so a write committed after the capture (the only write the
//! attempt could have missed) has already bumped the epoch by the time the
//! waiter suspends — [`Notifier::wait`] returns immediately, and
//! [`Notifier::register_waker`] refuses the registration (the caller
//! re-runs instead of suspending). Writers that bypass the handle (raw
//! `TmThread` harness code) are covered by a coarse fallback: parked
//! threads use a wait timeout, and registered wakers are re-woken by a
//! lazily-spawned **fallback ticker** thread every
//! [`RETRY_FALLBACK_WAKE`]; the ticker exits as soon as no wakers remain
//! registered.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::task::Waker;
use std::time::{Duration, Instant};

use zstm_util::sync::{Condvar, Mutex};

/// How long a suspended retry sleeps before conservatively re-running even
/// without a commit notification. This only matters when a writer commits
/// through the raw engine SPI (which does not bump the notifier); writers
/// using the `Stm` handle always wake suspended waiters promptly. Parked
/// threads apply it as a condvar-wait timeout; registered wakers are
/// re-woken on this period by the notifier's fallback ticker thread.
pub const RETRY_FALLBACK_WAKE: Duration = Duration::from_millis(100);

/// One waker slot: a generation counter (bumped on every removal, so a
/// stale [`WakerKey`] can never deregister a later tenant of the slot)
/// plus the registered waker while occupied.
#[derive(Debug, Default)]
struct WakerSlot {
    gen: u64,
    waker: Option<Waker>,
}

/// State behind the notifier mutex: the waker slab and the ticker flag.
#[derive(Debug, Default)]
struct WakerSlots {
    slots: Vec<WakerSlot>,
    free: Vec<usize>,
    /// Whether a fallback ticker thread is currently alive for this
    /// notifier.
    ticker_running: bool,
}

/// The notifier internals that the fallback ticker thread must outlive-
/// safely share: kept behind an `Arc` so the detached ticker holds a
/// `Weak` and exits when the owning [`Notifier`] is dropped.
#[derive(Debug, Default)]
struct Inner {
    /// Threads currently inside [`Notifier::wait`] plus wakers currently
    /// registered. Writers skip the mutex + wakeups entirely while this is
    /// zero, so the common no-waiter commit pays one `SeqCst` add and one
    /// load — no shared lock on the commit path.
    suspended: AtomicU64,
    lock: Mutex<WakerSlots>,
    cv: Condvar,
}

impl Inner {
    /// Takes every registered waker out of the slab (they re-register on
    /// their next poll if they still need to wait). Returns them so the
    /// caller can invoke `wake()` *after* dropping the slab lock — a waker
    /// may synchronously run executor code, which must not nest under the
    /// notifier mutex.
    fn drain_wakers(&self, slots: &mut WakerSlots) -> Vec<Waker> {
        let mut woken = Vec::new();
        for (index, slot) in slots.slots.iter_mut().enumerate() {
            if let Some(waker) = slot.waker.take() {
                slot.gen += 1;
                slots.free.push(index);
                self.suspended.fetch_sub(1, Ordering::SeqCst);
                woken.push(waker);
            }
        }
        woken
    }
}

/// Handle to one waker registration, returned by
/// [`Notifier::register_waker`].
///
/// Pass it back to [`Notifier::deregister_waker`] when the suspended
/// future is dropped (cancellation) or re-polled; a key whose waker was
/// already consumed by a wake is harmlessly stale (generation-checked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakerKey {
    index: usize,
    gen: u64,
}

/// Epoch-based commit notification: bump on writer commit, suspend until
/// the epoch moves.
#[derive(Debug, Default)]
pub struct Notifier {
    epoch: AtomicU64,
    inner: Arc<Inner>,
}

impl Notifier {
    /// Creates a notifier at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current epoch. Capture this *before* beginning a transaction
    /// attempt that may retry.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Announces a writer commit: bumps the epoch and wakes every
    /// suspended waiter — parked threads and registered wakers alike. With
    /// nobody suspended this is two uncontended atomic operations —
    /// writers do not serialize on the notifier mutex.
    pub fn notify(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // SeqCst Dekker pairing with `wait` and `register_waker`: the
        // waiter announces itself in `suspended` *before* checking the
        // epoch, we bump the epoch *before* reading the announcement — at
        // least one side always sees the other, so skipping the wake while
        // `suspended == 0` cannot strand a waiter.
        if self.inner.suspended.load(Ordering::SeqCst) == 0 {
            return;
        }
        // Taking the lock orders the bump against waiters that checked the
        // epoch but have not yet suspended: they hold the lock between
        // check and suspension, so by the time we acquire it they either
        // saw the new epoch or are already waiting/registered.
        let mut slots = self.inner.lock.lock();
        let woken = self.inner.drain_wakers(&mut slots);
        drop(slots);
        self.inner.cv.notify_all();
        for waker in woken {
            waker.wake();
        }
    }

    /// Parks the calling OS thread until the epoch differs from `seen` or
    /// `timeout` elapsed. Returns `true` if the epoch moved (a commit
    /// happened), `false` on timeout.
    pub fn wait(&self, seen: u64, timeout: Duration) -> bool {
        self.inner.suspended.fetch_add(1, Ordering::SeqCst);
        let moved = self.wait_registered(seen, timeout);
        self.inner.suspended.fetch_sub(1, Ordering::SeqCst);
        moved
    }

    fn wait_registered(&self, seen: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.inner.lock.lock();
        while self.epoch.load(Ordering::SeqCst) == seen {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _timed_out) = self.inner.cv.wait_timeout(guard, deadline - now);
            guard = g;
        }
        true
    }

    /// Registers `waker` to be woken by the next [`Notifier::notify`]
    /// (or fallback tick), **iff** the epoch still equals `seen`.
    ///
    /// Returns `None` when the epoch already moved — the caller must
    /// re-run its attempt instead of suspending, which is exactly the
    /// "no lost wakeups" check: a commit that slipped in between the
    /// attempt's epoch capture and this call refuses the registration.
    /// On `Some(key)`, the waker is woken at most once; the caller
    /// deregisters the key on cancellation (future drop) or keeps it to
    /// detect staleness.
    pub fn register_waker(&self, seen: u64, waker: &Waker) -> Option<WakerKey> {
        // Announce before the epoch check (same Dekker pairing as `wait`),
        // so a concurrent `notify` either sees us suspended (and takes the
        // lock we hold) or we see its epoch bump.
        self.inner.suspended.fetch_add(1, Ordering::SeqCst);
        let mut slots = self.inner.lock.lock();
        if self.epoch.load(Ordering::SeqCst) != seen {
            drop(slots);
            self.inner.suspended.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        let index = match slots.free.pop() {
            Some(index) => index,
            None => {
                slots.slots.push(WakerSlot::default());
                slots.slots.len() - 1
            }
        };
        let slot = &mut slots.slots[index];
        debug_assert!(slot.waker.is_none(), "free slot must be vacant");
        slot.waker = Some(waker.clone());
        let key = WakerKey {
            index,
            gen: slot.gen,
        };
        // Lazily start the fallback ticker that covers raw-SPI writers for
        // async waiters (parked threads cover themselves with a wait
        // timeout; a pending future has no thread to time out on). The
        // flag is claimed under the lock — competing registrants cannot
        // double-spawn — but the spawn syscall itself happens after the
        // guard drops, so writers and other waiters never block on it.
        let spawn_ticker = !slots.ticker_running;
        if spawn_ticker {
            slots.ticker_running = true;
        }
        drop(slots);
        if spawn_ticker {
            spawn_fallback_ticker(Arc::downgrade(&self.inner));
        }
        Some(key)
    }

    /// Removes a registration made by [`Notifier::register_waker`].
    ///
    /// Returns `true` if the waker was still registered (the caller was
    /// suspended and is now forgotten — the cancellation path), `false` if
    /// a wake had already consumed it (stale key; harmless).
    pub fn deregister_waker(&self, key: WakerKey) -> bool {
        let mut slots = self.inner.lock.lock();
        let Some(slot) = slots.slots.get_mut(key.index) else {
            return false;
        };
        if slot.gen != key.gen || slot.waker.is_none() {
            return false;
        }
        slot.waker = None;
        slot.gen += 1;
        slots.free.push(key.index);
        drop(slots);
        self.inner.suspended.fetch_sub(1, Ordering::SeqCst);
        true
    }

    /// Number of currently registered wakers (test instrumentation).
    pub fn registered_wakers(&self) -> usize {
        let slots = self.inner.lock.lock();
        slots.slots.iter().filter(|s| s.waker.is_some()).count()
    }
}

/// The detached fallback ticker: every [`RETRY_FALLBACK_WAKE`] it re-wakes
/// every registered waker, so an async waiter blocked on a value that only
/// a raw-SPI writer (which never bumps the notifier) will change still
/// re-runs its attempt — the async analogue of the condvar wait timeout.
/// The thread exits when the notifier is dropped or a tick finds no wakers
/// registered (a later registration spawns a fresh one).
fn spawn_fallback_ticker(inner: Weak<Inner>) {
    std::thread::Builder::new()
        .name("zstm-retry-tick".into())
        .spawn(move || loop {
            std::thread::sleep(RETRY_FALLBACK_WAKE);
            let Some(inner) = inner.upgrade() else {
                return;
            };
            let mut slots = inner.lock.lock();
            let woken = inner.drain_wakers(&mut slots);
            if woken.is_empty() {
                // Nobody to cover: stand down. `ticker_running` is reset
                // under the same lock, so the next register_waker spawns a
                // replacement without racing this exit.
                slots.ticker_running = false;
                return;
            }
            drop(slots);
            for waker in woken {
                waker.wake();
            }
        })
        .expect("spawn notifier fallback ticker");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::task::Wake;

    /// A waker that counts its wakes.
    struct CountingWaker(AtomicUsize);

    impl CountingWaker {
        fn new() -> Arc<Self> {
            Arc::new(Self(AtomicUsize::new(0)))
        }

        fn wakes(&self) -> usize {
            self.0.load(Ordering::SeqCst)
        }
    }

    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn wait_returns_immediately_on_stale_epoch() {
        let n = Notifier::new();
        let seen = n.epoch();
        n.notify();
        assert!(n.wait(seen, Duration::from_secs(5)));
    }

    #[test]
    fn wait_times_out_without_commit() {
        let n = Notifier::new();
        let seen = n.epoch();
        assert!(!n.wait(seen, Duration::from_millis(5)));
    }

    #[test]
    fn notify_wakes_parked_waiter() {
        let n = Arc::new(Notifier::new());
        let seen = n.epoch();
        let n2 = Arc::clone(&n);
        let waiter = std::thread::spawn(move || n2.wait(seen, Duration::from_secs(10)));
        // Give the waiter a moment to park, then notify.
        std::thread::sleep(Duration::from_millis(20));
        n.notify();
        assert!(waiter.join().expect("waiter finished"));
    }

    #[test]
    fn stale_epoch_refuses_waker_registration() {
        let n = Notifier::new();
        let counting = CountingWaker::new();
        let waker = Waker::from(Arc::clone(&counting));
        let seen = n.epoch();
        n.notify();
        assert!(
            n.register_waker(seen, &waker).is_none(),
            "a commit between capture and registration must refuse the registration"
        );
        assert_eq!(n.registered_wakers(), 0);
    }

    #[test]
    fn notify_consumes_and_wakes_registered_wakers() {
        let n = Notifier::new();
        let counting = CountingWaker::new();
        let waker = Waker::from(Arc::clone(&counting));
        let key = n
            .register_waker(n.epoch(), &waker)
            .expect("fresh epoch registers");
        assert_eq!(n.registered_wakers(), 1);
        n.notify();
        assert_eq!(counting.wakes(), 1, "notify wakes the registered waker");
        assert_eq!(n.registered_wakers(), 0, "the wake consumed the slot");
        // A second notify does not wake again (at-most-once).
        n.notify();
        assert_eq!(counting.wakes(), 1);
        // The stale key deregisters as a no-op.
        assert!(!n.deregister_waker(key));
    }

    #[test]
    fn deregistered_waker_is_never_woken() {
        let n = Notifier::new();
        let counting = CountingWaker::new();
        let waker = Waker::from(Arc::clone(&counting));
        let key = n.register_waker(n.epoch(), &waker).expect("registers");
        assert!(n.deregister_waker(key), "live registration removed");
        n.notify();
        assert_eq!(counting.wakes(), 0, "cancelled waiter must stay silent");
        assert_eq!(n.registered_wakers(), 0);
    }

    #[test]
    fn stale_key_cannot_evict_a_later_tenant_of_the_slot() {
        let n = Notifier::new();
        let first = CountingWaker::new();
        let key = n
            .register_waker(n.epoch(), &Waker::from(Arc::clone(&first)))
            .expect("registers");
        n.notify(); // consumes `first`, frees the slot
        let second = CountingWaker::new();
        let _key2 = n
            .register_waker(n.epoch(), &Waker::from(Arc::clone(&second)))
            .expect("slot reused");
        // The stale first key must not deregister the second tenant.
        assert!(!n.deregister_waker(key));
        assert_eq!(n.registered_wakers(), 1);
        n.notify();
        assert_eq!(second.wakes(), 1);
    }

    #[test]
    fn fallback_ticker_wakes_async_waiters_without_any_commit() {
        // A registered waker with no notify at all: the 100 ms fallback
        // tick must still wake it (the raw-SPI-writer cover).
        let n = Notifier::new();
        let counting = CountingWaker::new();
        let waker = Waker::from(Arc::clone(&counting));
        n.register_waker(n.epoch(), &waker).expect("registers");
        let deadline = Instant::now() + 20 * RETRY_FALLBACK_WAKE;
        while counting.wakes() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(counting.wakes(), 1, "the fallback tick must fire");
        assert_eq!(n.registered_wakers(), 0);
    }

    #[test]
    fn mixed_condvar_and_waker_waiters_all_wake_on_one_notify() {
        let n = Arc::new(Notifier::new());
        let seen = n.epoch();
        let counting = CountingWaker::new();
        n.register_waker(seen, &Waker::from(Arc::clone(&counting)))
            .expect("registers");
        let parked = {
            let n = Arc::clone(&n);
            std::thread::spawn(move || n.wait(seen, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(20));
        n.notify();
        assert!(parked.join().expect("parked thread woke"));
        assert_eq!(counting.wakes(), 1, "waker population woken too");
    }
}
