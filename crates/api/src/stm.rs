//! The `Stm` runtime handle: transparent thread leasing + the blocking
//! retry loop.

use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use zstm_core::{
    Abort, AbortReason, RetryExhausted, RetryPolicy, TmFactory, TmThread, TmTx, TxKind, TxStats,
    TxValue,
};
use zstm_util::Backoff;

use crate::notify::{Notifier, WakerKey, RETRY_FALLBACK_WAKE};
use crate::tx::Tx;
use crate::TVar;

/// Rounds an async poll absorbs without suspending — conflict aborts or
/// commit-refused waker registrations — before yielding the executor
/// thread (see [`Stm::poll_once`]).
const YIELD_AFTER_CONFLICTS: u32 = 64;

/// Outcome of one round over an atomic block's alternatives.
enum RoundOutcome<R> {
    /// An alternative committed (parked waiters already notified if it
    /// wrote).
    Committed(R),
    /// Every alternative ended in [`AbortReason::Retry`]: the block wants
    /// to suspend until a commit changes the world.
    Retried,
    /// An alternative (or its commit) genuinely aborted: restart the
    /// composition from the first alternative.
    Aborted(AbortReason),
}

/// Outcome of one executor poll of an async atomic block (see
/// [`Stm::poll_once`]).
pub(crate) enum PollOutcome<R> {
    /// Committed: the future resolves.
    Ready(R),
    /// Every alternative blocked and the waker is registered under this
    /// key; return `Pending` and deregister the key on drop or re-poll.
    Suspended(WakerKey),
    /// The poll used up its conflict budget (or runs in the spin shape):
    /// self-wake and return `Pending` so co-tasks get the worker.
    Yielded,
    /// The policy sleeps between attempts: re-poll after this delay (the
    /// future converts it to a timed park via `zstm_util::exec::wake_at`,
    /// so the backoff never pins an executor worker).
    Backoff(std::time::Duration),
    /// The retry budget ran out: the future resolves with the error.
    Exhausted(RetryExhausted),
}

/// Runs the alternatives left to right as fresh transactions on `thread`,
/// falling through on [`AbortReason::Retry`]. The single source of truth
/// for attempt semantics, shared by the synchronous retry loop and the
/// async poll path — including the commit notification: a committed
/// writer bumps the notifier before this returns.
///
/// Generic over the alternative representation (`&mut dyn FnMut` slices
/// from the sync loop, boxed closures owned by `TxFuture`) so the async
/// poll path does not re-collect its alternatives on every poll.
fn run_round<F: TmFactory, R, B>(
    shared: &StmShared<F>,
    thread: &mut F::Thread,
    kind: TxKind,
    alternatives: &mut [B],
) -> RoundOutcome<R>
where
    B: FnMut(&mut Tx<'_, F>) -> Result<R, Abort>,
{
    for body in alternatives.iter_mut() {
        let mut tx = Tx::new(thread.begin(kind), shared.id);
        match body(&mut tx) {
            Ok(result) => {
                let wrote = tx.wrote;
                match tx.into_raw().commit() {
                    Ok(()) => {
                        if wrote {
                            shared.notifier.notify();
                        }
                        return RoundOutcome::Committed(result);
                    }
                    Err(abort) => return RoundOutcome::Aborted(abort.reason()),
                }
            }
            Err(abort) if abort.reason() == AbortReason::Retry => {
                tx.into_raw().rollback(AbortReason::Retry);
                // Fall through to the next alternative.
            }
            Err(abort) => {
                tx.into_raw().rollback(abort.reason());
                return RoundOutcome::Aborted(abort.reason());
            }
        }
    }
    RoundOutcome::Retried
}

/// Next unique id for [`Stm`] instances (keys the thread-local lease
/// cache).
static NEXT_STM_ID: AtomicU64 = AtomicU64::new(0);

/// One TLS cache entry: the owning [`Stm`]'s id, a monomorphized probe
/// returning the live [`Stm`]-handle count (used to evict leases whose
/// `Stm` has been dropped without naming `F`), and the boxed lease.
type CacheEntry = (u64, fn(&dyn Any) -> usize, Box<dyn Any>);

thread_local! {
    /// Leased engine thread contexts cached by this OS thread, keyed by
    /// the owning [`Stm`]'s id. Dropping the vector at thread exit returns
    /// every context to its pool.
    static LEASES: RefCell<Vec<CacheEntry>> = const { RefCell::new(Vec::new()) };
}

/// Live [`Stm`] handle count behind a cached [`Lease<F>`] — the
/// monomorphized probe stored in [`CacheEntry`].
fn handle_count_of<F: TmFactory>(boxed: &dyn Any) -> usize {
    let lease = boxed
        .downcast_ref::<Lease<F>>()
        .expect("probe stored next to a lease of its own type");
    lease.shared.handles.load(Ordering::SeqCst)
}

/// Evicts cached leases whose `Stm` handles have all been dropped (the
/// per-`StmShared` live-handle counter reads zero — exact no matter how
/// many threads cached leases for it), so long-lived threads do not
/// accumulate leases (and pinned factories) of short-lived `Stm`s.
fn evict_orphaned_leases(leases: &mut Vec<CacheEntry>) {
    let mut at = 0;
    while at < leases.len() {
        let (_, probe, ref boxed) = leases[at];
        if probe(boxed.as_ref()) == 0 {
            // Dropping the lease returns its context to the (soon to be
            // freed) pool.
            drop(leases.swap_remove(at));
        } else {
            at += 1;
        }
    }
}

struct Pool<F: TmFactory> {
    /// Contexts currently not leased to any OS thread.
    free: Vec<F::Thread>,
    /// Logical threads registered with the factory so far.
    registered: usize,
}

struct StmShared<F: TmFactory> {
    factory: Arc<F>,
    pool: zstm_util::sync::Mutex<Pool<F>>,
    notifier: Notifier,
    id: u64,
    /// Live [`Stm`] handles sharing this state (maintained by
    /// `Stm::clone`/`Stm::drop`, *not* the `Arc` strong count, which also
    /// counts cached leases). Zero means no code can ever run a
    /// transaction on this instance again, so cached leases for it are
    /// garbage.
    handles: AtomicUsize,
}

/// A leased engine thread context; returns itself to the pool on drop
/// (including unwinds and OS-thread exit).
struct Lease<F: TmFactory> {
    shared: Arc<StmShared<F>>,
    thread: Option<F::Thread>,
}

impl<F: TmFactory> Drop for Lease<F> {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.shared.pool.lock().free.push(thread);
        }
    }
}

/// The user-facing STM runtime handle.
///
/// `Stm` owns the engine factory and leases per-OS-thread [`TmThread`]
/// contexts transparently: the first transaction a given OS thread runs
/// checks a context out of a shared pool (registering a new logical
/// thread if none is free) and caches it in thread-local storage; later
/// transactions on the same thread reuse it with no synchronization, and
/// the context returns to the pool when the OS thread exits — so user
/// code never calls [`TmFactory::register_thread`] and short-lived worker
/// threads recycle logical-thread slots instead of exhausting them.
///
/// Cloning an `Stm` is cheap and shares the factory, the lease pool and
/// the commit notifier; clone it into every worker thread.
///
/// At most [`StmConfig::threads`](zstm_core::StmConfig) OS threads can run
/// transactions *concurrently* (each needs a leased context);
/// [`Stm::atomically`] panics with a descriptive message beyond that.
///
/// # Examples
///
/// ```
/// use zstm_api::Stm;
/// use zstm_core::{StmConfig, TxKind};
/// use zstm_z::ZStm;
///
/// let stm = Stm::new(ZStm::new(StmConfig::new(2)));
/// let counter = stm.new_tvar(0i64);
/// let worker = {
///     let (stm, counter) = (stm.clone(), counter.clone());
///     std::thread::spawn(move || {
///         stm.atomically(TxKind::Short, |tx| tx.modify(&counter, |c| *c += 1))
///     })
/// };
/// stm.atomically(TxKind::Short, |tx| tx.modify(&counter, |c| *c += 1));
/// worker.join().unwrap();
/// let total = stm.atomically(TxKind::Short, |tx| tx.read(&counter));
/// assert_eq!(total, 2);
/// ```
pub struct Stm<F: TmFactory> {
    shared: Arc<StmShared<F>>,
    /// Whether `AbortReason::Retry` parks on the notifier (`true`, the
    /// default) or spin-retries like an ordinary abort (`false`; the A/B
    /// knob behind the queue baseline gate).
    park_on_retry: bool,
}

impl<F: TmFactory> Clone for Stm<F> {
    fn clone(&self) -> Self {
        self.shared.handles.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
            park_on_retry: self.park_on_retry,
        }
    }
}

impl<F: TmFactory> Drop for Stm<F> {
    fn drop(&mut self) {
        self.shared.handles.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<F: TmFactory> std::fmt::Debug for Stm<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stm")
            .field("engine", &self.shared.factory.name())
            .field("park_on_retry", &self.park_on_retry)
            .finish_non_exhaustive()
    }
}

impl<F: TmFactory> Stm<F> {
    /// Wraps a factory in a runtime handle.
    pub fn new(factory: F) -> Self {
        Self::from_arc(Arc::new(factory))
    }

    /// Wraps an already-shared factory (e.g. one that raw-SPI harness code
    /// also drives).
    ///
    /// Logical threads that raw-SPI code registered directly on the
    /// factory are invisible to the lease pool's capacity accounting, so
    /// exceeding [`TmFactory::max_threads`] in such mixed use trips the
    /// engine's own `register_thread` assertion rather than the pool's
    /// descriptive panic. Size [`StmConfig::threads`](zstm_core::StmConfig)
    /// for the sum of both.
    pub fn from_arc(factory: Arc<F>) -> Self {
        Self {
            shared: Arc::new(StmShared {
                factory,
                pool: zstm_util::sync::Mutex::new(Pool {
                    free: Vec::new(),
                    registered: 0,
                }),
                notifier: Notifier::new(),
                id: NEXT_STM_ID.fetch_add(1, Ordering::Relaxed),
                handles: AtomicUsize::new(1),
            }),
            park_on_retry: true,
        }
    }

    /// Selects whether [`Tx::retry`] parks on the commit notifier (the
    /// default) or spin-retries like an ordinary abort. The spin shape
    /// exists for A/B measurement (`repro_figures queue`); applications
    /// want parking.
    pub fn with_parking(mut self, park: bool) -> Self {
        self.park_on_retry = park;
        self
    }

    /// The underlying factory.
    pub fn factory(&self) -> &Arc<F> {
        &self.shared.factory
    }

    /// Short name of the underlying engine ("lsa", "z-stm", ...).
    pub fn name(&self) -> &'static str {
        self.shared.factory.name()
    }

    /// The commit notifier (exposed for tests asserting the wake
    /// protocol).
    pub fn notifier(&self) -> &Notifier {
        &self.shared.notifier
    }

    /// This instance's unique id (tags `DynVar`s with their origin).
    pub(crate) fn instance_id(&self) -> u64 {
        self.shared.id
    }

    /// Creates a shareable transactional variable.
    pub fn new_tvar<T: TxValue>(&self, init: T) -> TVar<F, T> {
        TVar::from_raw(self.shared.factory.new_var(init))
    }

    /// Runs `body` as a transaction of kind `kind`, retrying until it
    /// commits.
    ///
    /// Aborted attempts re-run with exponential backoff; attempts that end
    /// in [`Tx::retry`] park on the commit notifier until another
    /// transaction commits writes through this `Stm`. The loop is
    /// unbounded — use [`Stm::try_atomically`] to cap attempts.
    pub fn atomically<R>(
        &self,
        kind: TxKind,
        mut body: impl FnMut(&mut Tx<'_, F>) -> Result<R, Abort>,
    ) -> R {
        self.try_atomically(kind, &RetryPolicy::unbounded(), &mut body)
            .expect("unbounded retry loop cannot exhaust")
    }

    /// Like [`Stm::atomically`] with an explicit retry budget.
    ///
    /// # Errors
    ///
    /// Returns [`RetryExhausted`] when `policy.max_attempts()` rounds all
    /// failed to commit. Parked retries count as rounds too, and a parked
    /// round that waits out a full fallback tick without *any* commit
    /// happening fails immediately (re-running could not observe anything
    /// new) — so a bounded policy fails loudly within roughly
    /// [`RETRY_FALLBACK_WAKE`] on an idle system instead of blocking for
    /// its whole budget.
    pub fn try_atomically<R>(
        &self,
        kind: TxKind,
        policy: &RetryPolicy,
        mut body: impl FnMut(&mut Tx<'_, F>) -> Result<R, Abort>,
    ) -> Result<R, RetryExhausted> {
        self.run_alternatives(kind, policy, &mut [&mut body])
    }

    /// Runs `first`, falling back to `second` when `first` blocks.
    ///
    /// The composable-blocking combinator: if `first` ends in
    /// [`Tx::retry`], its attempt is rolled back (all effects discarded)
    /// and `second` runs as a fresh transaction in the same round. Only
    /// when *both* alternatives retry does the thread park; a genuine
    /// abort in either alternative restarts the whole composition from
    /// `first` (aborts propagate, they do not fall through). The loop is
    /// unbounded — see [`Stm::try_atomically_or_else`] for a budget.
    pub fn atomically_or_else<R>(
        &self,
        kind: TxKind,
        mut first: impl FnMut(&mut Tx<'_, F>) -> Result<R, Abort>,
        mut second: impl FnMut(&mut Tx<'_, F>) -> Result<R, Abort>,
    ) -> R {
        self.run_alternatives(
            kind,
            &RetryPolicy::unbounded(),
            &mut [&mut first, &mut second],
        )
        .expect("unbounded retry loop cannot exhaust")
    }

    /// [`Stm::atomically_or_else`] with an explicit retry budget.
    ///
    /// # Errors
    ///
    /// Returns [`RetryExhausted`] when the budget runs out; the error's
    /// last reason is [`AbortReason::Retry`] if the final round blocked on
    /// both alternatives.
    pub fn try_atomically_or_else<R>(
        &self,
        kind: TxKind,
        policy: &RetryPolicy,
        mut first: impl FnMut(&mut Tx<'_, F>) -> Result<R, Abort>,
        mut second: impl FnMut(&mut Tx<'_, F>) -> Result<R, Abort>,
    ) -> Result<R, RetryExhausted> {
        self.run_alternatives(kind, policy, &mut [&mut first, &mut second])
    }

    /// The shared retry loop: one round runs the alternatives left to
    /// right, falling through on [`AbortReason::Retry`]; a genuine abort
    /// ends the round immediately (backoff, restart from the first
    /// alternative); a round in which every alternative retried parks on
    /// the notifier.
    #[allow(clippy::type_complexity)]
    fn run_alternatives<R>(
        &self,
        kind: TxKind,
        policy: &RetryPolicy,
        alternatives: &mut [&mut dyn FnMut(&mut Tx<'_, F>) -> Result<R, Abort>],
    ) -> Result<R, RetryExhausted> {
        debug_assert!(!alternatives.is_empty());
        self.with_thread(|shared, park, thread| {
            let mut backoff = Backoff::new();
            let mut last_reason = AbortReason::Explicit;
            for round in 0..policy.max_attempts() {
                // Captured before the attempt's first read: any write this
                // round could miss bumps the epoch after this point, so a
                // park below cannot sleep through it.
                let seen = shared.notifier.epoch();
                match run_round(shared, thread, kind, &mut *alternatives) {
                    RoundOutcome::Committed(result) => return Ok(result),
                    RoundOutcome::Retried if park => {
                        last_reason = AbortReason::Retry;
                        // Count the park only when we are actually about
                        // to sleep: a commit that already moved the epoch
                        // makes `wait` return immediately, mirroring
                        // `register_waker` refusing a stale registration
                        // on the async path (a commit slipping in between
                        // this check and the wait is a benign overcount).
                        if shared.notifier.epoch() == seen {
                            if let Some(stats) = thread.stats_mut() {
                                stats.record_condvar_park();
                            }
                        }
                        let commit_seen = shared.notifier.wait(seen, RETRY_FALLBACK_WAKE);
                        // A *bounded* policy exists to fail loudly instead
                        // of hanging. If a full fallback tick passed
                        // without any commit anywhere, re-running cannot
                        // observe anything new — give up now rather than
                        // sleeping through the remaining budget (1M rounds
                        // x 100 ms is a day, not "loudly").
                        if !commit_seen && policy.max_attempts() != u64::MAX {
                            if let Some(stats) = thread.stats_mut() {
                                stats.record_retry_exhausted();
                            }
                            return Err(RetryExhausted::new(round + 1, AbortReason::Retry));
                        }
                        backoff.reset();
                    }
                    RoundOutcome::Retried => {
                        last_reason = AbortReason::Retry;
                        if let Some(sleep) = policy.sleep_for_attempt(round) {
                            std::thread::sleep(sleep);
                        } else if policy.backoff_enabled() {
                            backoff.spin();
                            if round % 64 == 63 {
                                backoff.reset();
                            }
                        }
                    }
                    RoundOutcome::Aborted(reason) => {
                        last_reason = reason;
                        if let Some(sleep) = policy.sleep_for_attempt(round) {
                            std::thread::sleep(sleep);
                        } else if policy.backoff_enabled() {
                            backoff.spin();
                            // Saturated backoff resets so long waits do
                            // not grow unboundedly under persistent
                            // contention.
                            if round % 64 == 63 {
                                backoff.reset();
                            }
                        }
                    }
                }
            }
            if let Some(stats) = thread.stats_mut() {
                stats.record_retry_exhausted();
            }
            Err(RetryExhausted::new(policy.max_attempts(), last_reason))
        })
    }

    /// One executor poll of an async atomic block: runs rounds to
    /// completion on the leased context ("attempts stay non-suspending" —
    /// engine transaction handles are `&mut` borrows of the thread context
    /// and not `Send`, so an attempt can never cross an `.await`), and
    /// suspends by registering `waker` when every alternative blocked.
    ///
    /// The epoch protocol is the poll-based spelling of the condvar loop
    /// in [`Stm::run_alternatives`]: the epoch is captured before each
    /// round, and [`Notifier::register_waker`](crate::Notifier) refuses
    /// the registration when a commit slipped in after the capture — the
    /// round re-runs instead of suspending, so wakeups cannot be lost.
    /// After [`YIELD_AFTER_CONFLICTS`] rounds without suspending —
    /// conflict aborts or registrations refused by racing commits — the
    /// poll gives the executor thread back ([`PollOutcome::Yielded`])
    /// so one contended transaction cannot starve its worker's co-tasks.
    ///
    /// `attempts` is the caller's cumulative round counter (the future
    /// owns it — a poll may run many rounds, and the budget spans polls).
    /// Once it reaches `policy.max_attempts()` the poll ends in
    /// [`PollOutcome::Exhausted`]; with a sleeping policy a failed round
    /// ends the poll in [`PollOutcome::Backoff`] so the wait happens as a
    /// timed park on the executor, not a `thread::sleep` on its worker.
    pub(crate) fn poll_once<R, B>(
        &self,
        kind: TxKind,
        policy: &RetryPolicy,
        attempts: &mut u64,
        alternatives: &mut [B],
        waker: &std::task::Waker,
    ) -> PollOutcome<R>
    where
        B: FnMut(&mut Tx<'_, F>) -> Result<R, Abort>,
    {
        debug_assert!(!alternatives.is_empty());
        self.with_thread(|shared, park, thread| {
            let mut backoff = Backoff::new();
            let mut conflicts = 0u32;
            let exhaust = |reason: AbortReason, attempts: u64, thread: &mut F::Thread| {
                if let Some(stats) = thread.stats_mut() {
                    stats.record_retry_exhausted();
                }
                PollOutcome::Exhausted(RetryExhausted::new(attempts, reason))
            };
            loop {
                let seen = shared.notifier.epoch();
                *attempts += 1;
                match run_round(shared, thread, kind, &mut *alternatives) {
                    RoundOutcome::Committed(result) => return PollOutcome::Ready(result),
                    RoundOutcome::Retried => {
                        if *attempts >= policy.max_attempts() {
                            return exhaust(AbortReason::Retry, *attempts, thread);
                        }
                        if !park {
                            // The A/B "spin" shape (`Stm::with_parking
                            // (false)`): busy re-polling through the
                            // executor instead of suspending.
                            return PollOutcome::Yielded;
                        }
                        match shared.notifier.register_waker(seen, waker) {
                            Some(key) => {
                                if let Some(stats) = thread.stats_mut() {
                                    stats.record_waker_park();
                                }
                                return PollOutcome::Suspended(key);
                            }
                            // A commit raced the registration: what the
                            // attempt missed is now visible, re-run it —
                            // but count the round against the yield
                            // budget. Under a steady stream of unrelated
                            // commits every registration is refused, and
                            // an unbounded loop here would starve
                            // co-tasks of this executor worker (the sync
                            // path only burns its own thread; this one is
                            // shared).
                            None => {
                                conflicts += 1;
                                if conflicts >= YIELD_AFTER_CONFLICTS {
                                    return PollOutcome::Yielded;
                                }
                                backoff.reset();
                            }
                        }
                    }
                    RoundOutcome::Aborted(reason) => {
                        if *attempts >= policy.max_attempts() {
                            return exhaust(reason, *attempts, thread);
                        }
                        if let Some(sleep) = policy.sleep_for_attempt(*attempts - 1) {
                            return PollOutcome::Backoff(sleep);
                        }
                        conflicts += 1;
                        if conflicts >= YIELD_AFTER_CONFLICTS {
                            return PollOutcome::Yielded;
                        }
                        backoff.spin();
                    }
                }
            }
        })
    }

    /// Runs `f` with this OS thread's leased engine context, checking one
    /// out (and caching it in TLS) on first use.
    fn with_thread<R>(&self, f: impl FnOnce(&StmShared<F>, bool, &mut F::Thread) -> R) -> R {
        // Take the lease *out* of TLS while the body runs so re-entrant
        // transactions (an atomically inside an atomically body) lease a
        // second context instead of hitting a RefCell double borrow.
        let mut lease = self.take_cached_lease().unwrap_or_else(|| self.checkout());
        let result = f(
            &self.shared,
            self.park_on_retry,
            lease.thread.as_mut().expect("leased context present"),
        );
        // Only reached on normal return: a panic in `f` drops the lease,
        // returning the context to the pool.
        LEASES.with(|leases| {
            let mut leases = leases.borrow_mut();
            leases.push((
                self.shared.id,
                handle_count_of::<F>,
                Box::new(lease) as Box<dyn Any>,
            ));
            // Amortized cleanup: drop cached leases of Stm instances this
            // thread will never see again.
            evict_orphaned_leases(&mut leases);
        });
        result
    }

    /// Removes and returns this OS thread's cached lease for this `Stm`,
    /// if any.
    fn take_cached_lease(&self) -> Option<Lease<F>> {
        LEASES.with(|leases| {
            let mut leases = leases.borrow_mut();
            let at = leases.iter().position(|(id, _, _)| *id == self.shared.id)?;
            let (_, _, boxed) = leases.swap_remove(at);
            Some(
                *boxed
                    .downcast::<Lease<F>>()
                    .expect("lease cached under this Stm's id has its type"),
            )
        })
    }

    fn checkout(&self) -> Lease<F> {
        let mut pool = self.shared.pool.lock();
        let thread = if let Some(thread) = pool.free.pop() {
            thread
        } else {
            let capacity = self.shared.factory.max_threads();
            if let Some(capacity) = capacity {
                assert!(
                    pool.registered < capacity,
                    "Stm<{}>: all {} configured logical threads are leased to live OS \
                     threads; raise StmConfig::new(n) or run fewer threads concurrently \
                     (contexts recycle when their OS thread exits)",
                    self.shared.factory.name(),
                    capacity,
                );
            }
            pool.registered += 1;
            self.shared.factory.register_thread()
        };
        drop(pool);
        Lease {
            shared: Arc::clone(&self.shared),
            thread: Some(thread),
        }
    }

    /// Returns this OS thread's cached contexts to the shared pool —
    /// every one of them: a thread that ran nested transactions may have
    /// cached several.
    ///
    /// Useful before [`Stm::take_stats`] on a driver thread that also ran
    /// transactions, and before handing the last `Stm` clone to another
    /// thread.
    pub fn flush_local(&self) {
        while self.take_cached_lease().is_some() {}
    }

    /// Takes the statistics accumulated by every *pooled* context,
    /// including this OS thread's cached one, leaving zeroes behind.
    ///
    /// Contexts still leased to other live OS threads are not reachable;
    /// their statistics are harvested once those threads exit (or flush).
    /// The usual harvest pattern — join the workers, then call this on the
    /// driver — therefore sees everything.
    pub fn take_stats(&self) -> TxStats {
        self.flush_local();
        let mut pool = self.shared.pool.lock();
        let mut total = TxStats::new();
        for thread in pool.free.iter_mut() {
            total.merge(&thread.take_stats());
        }
        total
    }
}
