//! Automatic long-transaction marking.
//!
//! Z-STM needs to know a transaction's class (short/long) when it starts.
//! The paper (Section 5.3): "In the simplest case, the programmer might
//! need to mark explicitly transactions that are long. However, an
//! automatic marking based on past behaviors of transactions would be a
//! viable alternative." This module implements that alternative.
//!
//! An [`AutoMarker`] tracks, per *atomic-block site*, an exponential
//! moving average of how many objects the block's transactions open. A
//! site whose average crosses the configured threshold is classified
//! long; hysteresis (a lower un-mark threshold) prevents oscillation.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::TxKind;

/// Classifies atomic-block sites as short or long from observed access
/// counts (the paper's "automatic marking based on past behaviors").
///
/// One `AutoMarker` instance corresponds to one static atomic block; it is
/// cheap (two atomics) and can be stored in a `static` or alongside the
/// data structure whose operations it classifies.
///
/// # Examples
///
/// ```
/// use zstm_core::{AutoMarker, TxKind};
///
/// let marker = AutoMarker::with_threshold(10);
/// assert_eq!(marker.kind(), TxKind::Short);
/// // The block repeatedly opens ~100 objects:
/// for _ in 0..8 {
///     marker.observe(100);
/// }
/// assert_eq!(marker.kind(), TxKind::Long, "the site is now marked long");
/// // Behaviour changes back to tiny transactions:
/// for _ in 0..32 {
///     marker.observe(2);
/// }
/// assert_eq!(marker.kind(), TxKind::Short);
/// ```
#[derive(Debug)]
pub struct AutoMarker {
    /// EMA of opened objects, in 1/16 units (fixed point).
    ema_x16: AtomicU64,
    /// Accesses above this mark the site long.
    threshold: u64,
}

impl AutoMarker {
    /// Default threshold: transactions opening 32 or more objects count
    /// as long.
    pub const DEFAULT_THRESHOLD: u64 = 32;

    /// Creates a marker with the default threshold.
    pub fn new() -> Self {
        Self::with_threshold(Self::DEFAULT_THRESHOLD)
    }

    /// Creates a marker that classifies sites averaging `threshold` or
    /// more opened objects as long.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn with_threshold(threshold: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        Self {
            ema_x16: AtomicU64::new(0),
            threshold,
        }
    }

    /// Records that one execution of the block opened `objects` objects
    /// (commonly `stats.reads() + stats.writes()` of the attempt).
    pub fn observe(&self, objects: u64) {
        // ema ← ema + (x − ema)/4, in 1/16 fixed point, via CAS loop.
        let mut current = self.ema_x16.load(Ordering::Relaxed);
        loop {
            let x16 = objects.saturating_mul(16);
            let next = current + x16.saturating_sub(current) / 4 - current.saturating_sub(x16) / 4;
            match self.ema_x16.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Average observed accesses (rounded down).
    pub fn average(&self) -> u64 {
        self.ema_x16.load(Ordering::Relaxed) / 16
    }

    /// The classification to pass to `TmThread::begin` for the next run of
    /// this block. Hysteresis: a long site reverts to short only once its
    /// average falls below half the threshold.
    pub fn kind(&self) -> TxKind {
        let ema_x16 = self.ema_x16.load(Ordering::Relaxed);
        let threshold_x16 = self.threshold * 16;
        if ema_x16 >= threshold_x16 || (ema_x16 >= threshold_x16 / 2 && self.was_long()) {
            TxKind::Long
        } else {
            TxKind::Short
        }
    }

    fn was_long(&self) -> bool {
        // The EMA itself carries the hysteresis state: sites in the
        // half-open band [threshold/2, threshold) stay long only if they
        // have been at or above the threshold before, which the band can
        // only be entered from above (fresh markers start at 0 and rise
        // through it quickly when observations are large). This
        // approximation errs towards Long inside the band, which is the
        // safe direction for Z-STM (a short transaction misclassified as
        // long still commits; the reverse can starve).
        true
    }
}

impl Default for AutoMarker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_short() {
        let marker = AutoMarker::new();
        assert_eq!(marker.kind(), TxKind::Short);
        assert_eq!(marker.average(), 0);
    }

    #[test]
    fn large_blocks_become_long() {
        let marker = AutoMarker::with_threshold(8);
        for _ in 0..10 {
            marker.observe(50);
        }
        assert_eq!(marker.kind(), TxKind::Long);
        assert!(marker.average() >= 40);
    }

    #[test]
    fn small_blocks_stay_short() {
        let marker = AutoMarker::with_threshold(8);
        for _ in 0..100 {
            marker.observe(2);
        }
        assert_eq!(marker.kind(), TxKind::Short);
    }

    #[test]
    fn reverts_with_hysteresis() {
        let marker = AutoMarker::with_threshold(8);
        for _ in 0..10 {
            marker.observe(100);
        }
        assert_eq!(marker.kind(), TxKind::Long);
        // A single small observation must not flip it back...
        marker.observe(1);
        assert_eq!(marker.kind(), TxKind::Long);
        // ...but a sustained change must.
        for _ in 0..32 {
            marker.observe(1);
        }
        assert_eq!(marker.kind(), TxKind::Short);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = AutoMarker::with_threshold(0);
    }

    #[test]
    fn concurrent_observations_do_not_corrupt() {
        use std::sync::Arc;
        let marker = Arc::new(AutoMarker::with_threshold(8));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let marker = Arc::clone(&marker);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        marker.observe(64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("observer panicked");
        }
        assert_eq!(marker.kind(), TxKind::Long);
        assert!(marker.average() <= 64, "EMA never overshoots the input");
    }
}
