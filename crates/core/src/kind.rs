use core::fmt;

/// Classification of a transaction as short or long (Section 5.3 of the
/// paper).
///
/// Z-STM requires the class to be known when the transaction starts: "in the
/// simplest case, the programmer might need to mark explicitly transactions
/// that are long". The other STMs accept the kind but treat both classes
/// identically, so workloads can run unchanged across all five STMs.
///
/// # Examples
///
/// ```
/// use zstm_core::TxKind;
///
/// assert!(TxKind::Long.is_long());
/// assert!(!TxKind::Short.is_long());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum TxKind {
    /// A short transaction (e.g. a bank transfer touching two accounts).
    #[default]
    Short,
    /// A long transaction (e.g. computing the balance over all accounts).
    Long,
}

impl TxKind {
    /// Returns `true` for [`TxKind::Long`].
    pub fn is_long(self) -> bool {
        matches!(self, TxKind::Long)
    }
}

impl fmt::Display for TxKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxKind::Short => f.write_str("short"),
            TxKind::Long => f.write_str("long"),
        }
    }
}

/// Mode in which a transaction opens an object (the `m` parameter of the
/// `Open` procedures in Algorithms 1–3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// The object is only read; the transaction sees the current version.
    Read,
    /// The object will be updated; a tentative private copy is created.
    Write,
}

impl AccessMode {
    /// Returns `true` for [`AccessMode::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessMode::Write)
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessMode::Read => f.write_str("read"),
            AccessMode::Write => f.write_str("write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(TxKind::Long.is_long());
        assert!(!TxKind::Short.is_long());
        assert_eq!(TxKind::default(), TxKind::Short);
    }

    #[test]
    fn mode_predicates() {
        assert!(AccessMode::Write.is_write());
        assert!(!AccessMode::Read.is_write());
    }

    #[test]
    fn display_strings() {
        assert_eq!(TxKind::Long.to_string(), "long");
        assert_eq!(AccessMode::Read.to_string(), "read");
    }
}
