use core::fmt;

use crate::{AbortReason, TxKind};

/// Per-thread transaction statistics.
///
/// Every [`crate::TmThread`] owns one of these and updates it without
/// synchronization; the workload harness merges the per-thread values after
/// the measurement interval. Commits and aborts are broken down by
/// [`TxKind`] because the paper's evaluation plots long (Compute-Total) and
/// short (transfer) throughput separately.
///
/// # Examples
///
/// ```
/// use zstm_core::{AbortReason, TxKind, TxStats};
///
/// let mut stats = TxStats::default();
/// stats.record_commit(TxKind::Short);
/// stats.record_abort(TxKind::Long, AbortReason::ReadValidation);
/// assert_eq!(stats.commits(TxKind::Short), 1);
/// assert_eq!(stats.total_aborts(), 1);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct TxStats {
    commits_short: u64,
    commits_long: u64,
    aborts_short: u64,
    aborts_long: u64,
    aborts_by_reason: [u64; AbortReason::ALL.len()],
    reads: u64,
    writes: u64,
    retries_exhausted: u64,
    condvar_parks: u64,
    waker_parks: u64,
}

impl TxStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a committed transaction of the given kind.
    pub fn record_commit(&mut self, kind: TxKind) {
        match kind {
            TxKind::Short => self.commits_short += 1,
            TxKind::Long => self.commits_long += 1,
        }
    }

    /// Records an aborted transaction attempt.
    pub fn record_abort(&mut self, kind: TxKind, reason: AbortReason) {
        match kind {
            TxKind::Short => self.aborts_short += 1,
            TxKind::Long => self.aborts_long += 1,
        }
        self.aborts_by_reason[reason.index()] += 1;
    }

    /// Records a transactional read.
    pub fn record_read(&mut self) {
        self.reads += 1;
    }

    /// Records a transactional write.
    pub fn record_write(&mut self) {
        self.writes += 1;
    }

    /// Records an atomic block that gave up after exhausting its retries.
    pub fn record_retry_exhausted(&mut self) {
        self.retries_exhausted += 1;
    }

    /// Records a blocked retry parking an **OS thread** on the commit
    /// notifier's condvar (the synchronous `Stm::atomically` shape).
    pub fn record_condvar_park(&mut self) {
        self.condvar_parks += 1;
    }

    /// Records a blocked retry suspending a **task** by registering a
    /// [`std::task::Waker`] on the commit notifier (the
    /// `Stm::atomically_async` shape). The OS thread is released back to
    /// the executor instead of sleeping.
    pub fn record_waker_park(&mut self) {
        self.waker_parks += 1;
    }

    /// Commits of the given kind.
    pub fn commits(&self, kind: TxKind) -> u64 {
        match kind {
            TxKind::Short => self.commits_short,
            TxKind::Long => self.commits_long,
        }
    }

    /// Total commits across kinds.
    pub fn total_commits(&self) -> u64 {
        self.commits_short + self.commits_long
    }

    /// Aborted attempts of the given kind.
    pub fn aborts(&self, kind: TxKind) -> u64 {
        match kind {
            TxKind::Short => self.aborts_short,
            TxKind::Long => self.aborts_long,
        }
    }

    /// Total aborted attempts.
    pub fn total_aborts(&self) -> u64 {
        self.aborts_short + self.aborts_long
    }

    /// Aborts attributed to `reason`.
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        self.aborts_by_reason[reason.index()]
    }

    /// Attempts that rolled back with [`AbortReason::Retry`] — i.e. blocked
    /// waiting for other transactions rather than losing a conflict.
    ///
    /// Queue-style benchmarks report this *block rate* separately from the
    /// conflict rate ([`TxStats::conflict_aborts`]): a bounded queue that is
    /// frequently empty or full blocks a lot without any contention being
    /// wrong.
    pub fn blocking_retries(&self) -> u64 {
        self.aborts_for(AbortReason::Retry)
    }

    /// Aborts injected by the online SSI certification layer
    /// (`zstm-certify`) — i.e. attempts the engine's native criterion
    /// would have committed but full serializability certification
    /// rejected. The certify benchmark reports this count separately so
    /// the *price of serializability* is attributable.
    pub fn certification_aborts(&self) -> u64 {
        self.aborts_for(AbortReason::Certification)
    }

    /// Aborted attempts that were *not* blocking retries: conflicts,
    /// kills, snapshot failures — and also voluntary
    /// [`AbortReason::Explicit`] aborts (user-requested aborts, rolled
    /// back panics); subtract [`TxStats::aborts_for`]`(Explicit)` for a
    /// pure conflict count in workloads that abort explicitly.
    pub fn conflict_aborts(&self) -> u64 {
        self.total_aborts() - self.blocking_retries()
    }

    /// Transactional reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Transactional writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Atomic blocks that exhausted their retry budget.
    pub fn retries_exhausted(&self) -> u64 {
        self.retries_exhausted
    }

    /// Blocked retries that parked an OS thread on a condvar (see
    /// [`TxStats::record_condvar_park`]).
    ///
    /// Together with [`TxStats::waker_parks`] this splits the *park
    /// mechanism*; [`TxStats::blocking_retries`] counts the blocked
    /// attempts themselves (one attempt can park at most once, but an
    /// attempt whose epoch moved before parking does not park at all, so
    /// `condvar_parks + waker_parks <= blocking_retries`).
    pub fn condvar_parks(&self) -> u64 {
        self.condvar_parks
    }

    /// Blocked retries that suspended a task by registering a waker (see
    /// [`TxStats::record_waker_park`]).
    pub fn waker_parks(&self) -> u64 {
        self.waker_parks
    }

    /// Every time a blocked retry actually suspended, by either mechanism.
    pub fn total_parks(&self) -> u64 {
        self.condvar_parks + self.waker_parks
    }

    /// Fraction of attempts that aborted, in `[0, 1]`; zero when idle.
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.total_commits() + self.total_aborts();
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / attempts as f64
        }
    }

    /// Accumulates `other` into `self` (for merging per-thread stats).
    pub fn merge(&mut self, other: &TxStats) {
        self.commits_short += other.commits_short;
        self.commits_long += other.commits_long;
        self.aborts_short += other.aborts_short;
        self.aborts_long += other.aborts_long;
        for (mine, theirs) in self
            .aborts_by_reason
            .iter_mut()
            .zip(other.aborts_by_reason.iter())
        {
            *mine += theirs;
        }
        self.reads += other.reads;
        self.writes += other.writes;
        self.retries_exhausted += other.retries_exhausted;
        self.condvar_parks += other.condvar_parks;
        self.waker_parks += other.waker_parks;
    }
}

impl fmt::Debug for TxStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut by_reason = f.debug_struct("TxStats");
        by_reason
            .field("commits_short", &self.commits_short)
            .field("commits_long", &self.commits_long)
            .field("aborts_short", &self.aborts_short)
            .field("aborts_long", &self.aborts_long)
            .field("reads", &self.reads)
            .field("writes", &self.writes);
        for reason in AbortReason::ALL {
            let count = self.aborts_for(reason);
            if count > 0 {
                by_reason.field(reason.label(), &count);
            }
        }
        by_reason.finish()
    }
}

impl std::iter::Sum for TxStats {
    fn sum<I: Iterator<Item = TxStats>>(iter: I) -> Self {
        let mut total = TxStats::default();
        for stats in iter {
            total.merge(&stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_and_aborts_split_by_kind() {
        let mut stats = TxStats::new();
        stats.record_commit(TxKind::Short);
        stats.record_commit(TxKind::Short);
        stats.record_commit(TxKind::Long);
        stats.record_abort(TxKind::Long, AbortReason::ZonePassed);
        assert_eq!(stats.commits(TxKind::Short), 2);
        assert_eq!(stats.commits(TxKind::Long), 1);
        assert_eq!(stats.total_commits(), 3);
        assert_eq!(stats.aborts(TxKind::Long), 1);
        assert_eq!(stats.aborts_for(AbortReason::ZonePassed), 1);
    }

    #[test]
    fn blocking_retries_counted_separately_from_conflicts() {
        let mut stats = TxStats::new();
        stats.record_abort(TxKind::Short, AbortReason::Retry);
        stats.record_abort(TxKind::Short, AbortReason::Retry);
        stats.record_abort(TxKind::Short, AbortReason::WriteConflict);
        assert_eq!(stats.aborts_for(AbortReason::Retry), 2);
        assert_eq!(stats.blocking_retries(), 2);
        assert_eq!(stats.conflict_aborts(), 1);
        assert_eq!(stats.total_aborts(), 3);
        // Merging preserves the split.
        let mut merged = TxStats::new();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.blocking_retries(), 4);
        assert_eq!(merged.conflict_aborts(), 2);
        // And the Debug breakdown lists the retry reason.
        assert!(format!("{stats:?}").contains("retry"));
    }

    #[test]
    fn park_mechanisms_counted_separately_and_merged() {
        let mut stats = TxStats::new();
        stats.record_condvar_park();
        stats.record_condvar_park();
        stats.record_waker_park();
        assert_eq!(stats.condvar_parks(), 2);
        assert_eq!(stats.waker_parks(), 1);
        assert_eq!(stats.total_parks(), 3);
        let mut merged = TxStats::new();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.condvar_parks(), 4);
        assert_eq!(merged.waker_parks(), 2);
        let summed: TxStats = [stats.clone(), stats].into_iter().sum();
        assert_eq!(summed.total_parks(), 6);
    }

    #[test]
    fn certification_aborts_counted_separately() {
        let mut stats = TxStats::new();
        stats.record_abort(TxKind::Short, AbortReason::Certification);
        stats.record_abort(TxKind::Short, AbortReason::WriteConflict);
        assert_eq!(stats.certification_aborts(), 1);
        assert_eq!(stats.conflict_aborts(), 2);
        assert!(format!("{stats:?}").contains("certification"));
    }

    #[test]
    fn abort_ratio_handles_idle() {
        let stats = TxStats::new();
        assert_eq!(stats.abort_ratio(), 0.0);
    }

    #[test]
    fn abort_ratio_is_fractional() {
        let mut stats = TxStats::new();
        stats.record_commit(TxKind::Short);
        stats.record_abort(TxKind::Short, AbortReason::WriteConflict);
        assert!((stats.abort_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_and_sum_accumulate_everything() {
        let mut a = TxStats::new();
        a.record_commit(TxKind::Short);
        a.record_read();
        a.record_retry_exhausted();
        let mut b = TxStats::new();
        b.record_abort(TxKind::Short, AbortReason::Killed);
        b.record_write();

        let total: TxStats = [a.clone(), b.clone()].into_iter().sum();
        assert_eq!(total.total_commits(), 1);
        assert_eq!(total.total_aborts(), 1);
        assert_eq!(total.reads(), 1);
        assert_eq!(total.writes(), 1);
        assert_eq!(total.retries_exhausted(), 1);

        a.merge(&b);
        assert_eq!(a, total);
    }

    #[test]
    fn debug_lists_active_reasons_only() {
        let mut stats = TxStats::new();
        stats.record_abort(TxKind::Short, AbortReason::ZoneCross);
        let repr = format!("{stats:?}");
        assert!(repr.contains("zone-cross"));
        assert!(!repr.contains("precedence-cycle"));
    }
}
