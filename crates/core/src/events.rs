//! Transaction event stream for offline consistency checking.
//!
//! Every STM in this workspace can report its transactional events to an
//! [`EventSink`]. The `zstm-history` crate implements a recording sink and
//! checkers that verify, on the recorded history, exactly the guarantee each
//! STM claims (linearizability, causal serializability, serializability,
//! z-linearizability).
//!
//! ## Real-time soundness contract
//!
//! For the linearizability checkers to be sound, STMs must emit
//! * the [`TxEventKind::Begin`] event **before** the transaction takes its
//!   snapshot / becomes visible, and
//! * the [`TxEventKind::Commit`] event **after** the commit point.
//!
//! A sink that stamps events with a global sequence number then satisfies:
//! if `seq(commit A) < seq(begin B)`, transaction A's commit point truly
//! precedes B's start in real time. (Missing real-time edges only make the
//! check weaker, never unsound.)

use core::fmt;

use crate::{AbortReason, ObjId, ThreadId, TxId, TxKind};

/// Sequence number of an object version: the initial version is 0 and each
/// committed update increments it by one.
pub type VersionSeq = u64;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TxEventKind {
    /// The transaction started (recorded before its snapshot is taken).
    Begin,
    /// The transaction read version `version` of `obj`.
    Read {
        /// Object read.
        obj: ObjId,
        /// Version observed.
        version: VersionSeq,
    },
    /// The transaction committed a write installing `version` of `obj`.
    ///
    /// Write events are emitted at commit time (not at the tentative write)
    /// so the history only contains writes that took effect.
    Write {
        /// Object written.
        obj: ObjId,
        /// Version installed.
        version: VersionSeq,
    },
    /// The transaction committed (recorded after the commit point). `zone`
    /// is the z-linearizability zone for Z-STM histories, `None` elsewhere.
    Commit {
        /// Zone number at commit, for z-linearizable STMs.
        zone: Option<u64>,
    },
    /// The transaction attempt aborted.
    Abort {
        /// Why.
        reason: AbortReason,
    },
}

/// One event emitted by an STM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxEvent {
    /// The transaction attempt this event belongs to.
    pub tx: TxId,
    /// Logical thread running the transaction.
    pub thread: ThreadId,
    /// Short/long classification of the transaction.
    pub kind: TxKind,
    /// What happened.
    pub event: TxEventKind,
}

impl TxEvent {
    /// Convenience constructor.
    pub fn new(tx: TxId, thread: ThreadId, kind: TxKind, event: TxEventKind) -> Self {
        Self {
            tx,
            thread,
            kind,
            event,
        }
    }
}

impl fmt::Display for TxEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {:?}", self.thread, self.tx, self.event)
    }
}

/// Receiver of transaction events.
///
/// Implementations must be cheap when disabled: STM hot paths consult
/// [`EventSink::enabled`] before assembling events.
pub trait EventSink: Send + Sync + 'static {
    /// Whether events should be reported at all. STMs skip event assembly
    /// when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event. Called concurrently from many threads.
    fn record(&self, event: TxEvent);
}

/// Sink that drops everything; the default for benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TxEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(TxEvent::new(
            TxId::fresh(),
            ThreadId::new(0),
            TxKind::Short,
            TxEventKind::Begin,
        ));
    }

    #[test]
    fn event_display_mentions_parties() {
        let tx = TxId::fresh();
        let event = TxEvent::new(tx, ThreadId::new(2), TxKind::Long, TxEventKind::Begin);
        let text = event.to_string();
        assert!(text.contains("thr2"));
        assert!(text.contains("Begin"));
    }
}
