use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_TX_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_OBJ_ID: AtomicU64 = AtomicU64::new(1);

/// Process-unique identifier of one transaction attempt.
///
/// Every retry of an atomic block is a *new* transaction with a new id; this
/// matches the paper's model where an aborted transaction is re-executed as
/// a fresh transaction.
///
/// # Examples
///
/// ```
/// use zstm_core::TxId;
///
/// let a = TxId::fresh();
/// let b = TxId::fresh();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(u64);

impl TxId {
    /// Allocates the next process-unique transaction id.
    pub fn fresh() -> Self {
        Self(NEXT_TX_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx#{}", self.0)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx#{}", self.0)
    }
}

/// Process-unique identifier of a transactional object (a `Var`).
///
/// Object ids identify objects in recorded histories so the consistency
/// checkers can correlate reads and writes across transactions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(u64);

impl ObjId {
    /// Allocates the next process-unique object id.
    pub fn fresh() -> Self {
        Self(NEXT_OBJ_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Index of a logical thread within one STM instance.
///
/// Logical threads are explicit rather than OS-thread-local so that a
/// deterministic test driver can interleave several transactions from a
/// single OS thread (this is how the paper's Figures 1–4 are encoded as
/// unit tests).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(usize);

impl ThreadId {
    /// Wraps a raw slot index.
    pub const fn new(slot: usize) -> Self {
        Self(slot)
    }

    /// The raw slot index, usable with `zstm_clock` time bases.
    pub fn slot(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thr{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thr{}", self.0)
    }
}

impl From<usize> for ThreadId {
    fn from(slot: usize) -> Self {
        Self(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_ids_are_unique_and_increasing() {
        let a = TxId::fresh();
        let b = TxId::fresh();
        assert!(a < b);
        assert_ne!(a.as_u64(), b.as_u64());
    }

    #[test]
    fn obj_ids_are_unique() {
        assert_ne!(ObjId::fresh(), ObjId::fresh());
    }

    #[test]
    fn thread_id_round_trips() {
        let id = ThreadId::new(7);
        assert_eq!(id.slot(), 7);
        assert_eq!(ThreadId::from(7usize), id);
    }

    #[test]
    fn debug_formats() {
        assert!(format!("{:?}", TxId::fresh()).starts_with("tx#"));
        assert!(format!("{:?}", ObjId::fresh()).starts_with("obj#"));
        assert_eq!(format!("{}", ThreadId::new(3)), "thr3");
    }
}
