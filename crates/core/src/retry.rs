use zstm_util::Backoff;

use crate::{Abort, AbortReason, RetryExhausted, TmThread, TmTx, TxKind};

/// Retry policy for [`atomically`].
///
/// # Examples
///
/// ```
/// use zstm_core::RetryPolicy;
///
/// let policy = RetryPolicy::default().with_max_attempts(100);
/// assert_eq!(policy.max_attempts(), 100);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    max_attempts: u64,
    backoff_on_abort: bool,
}

impl RetryPolicy {
    /// Effectively unbounded retries (the benchmark default: throughput
    /// collapse, not failure, is the observable outcome the paper plots).
    pub fn unbounded() -> Self {
        Self {
            max_attempts: u64::MAX,
            backoff_on_abort: true,
        }
    }

    /// Limits the number of attempts per atomic block.
    pub fn with_max_attempts(mut self, attempts: u64) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Enables or disables exponential backoff between attempts.
    pub fn with_backoff(mut self, enabled: bool) -> Self {
        self.backoff_on_abort = enabled;
        self
    }

    /// Maximum number of attempts per atomic block.
    pub fn max_attempts(&self) -> u64 {
        self.max_attempts
    }

    /// Whether the retry loop backs off exponentially between attempts.
    pub fn backoff_enabled(&self) -> bool {
        self.backoff_on_abort
    }
}

impl Default for RetryPolicy {
    /// The default policy **caps attempts at 1 000 000** (with backoff).
    ///
    /// That bound exists so tests and interactive use fail loudly instead
    /// of hanging when an atomic block can never commit; it is *not*
    /// unbounded. Benchmark and figure-reproduction paths use
    /// [`RetryPolicy::unbounded`] explicitly — there, throughput collapse
    /// (not failure) is the observable outcome the paper plots, and a
    /// silent cap would turn heavy contention into spurious
    /// [`RetryExhausted`] errors.
    fn default() -> Self {
        Self {
            max_attempts: 1_000_000,
            backoff_on_abort: true,
        }
    }
}

/// Runs `body` as a transaction of kind `kind` on `thread`, retrying on
/// aborts according to `policy`.
///
/// This is the **low-level, engine-facing retry loop**: it needs an
/// explicitly registered [`TmThread`] and always spin-retries (with
/// backoff). The `zstm-api` front end's `Stm::atomically` wraps the same
/// engine calls but leases thread contexts transparently and *parks* on
/// [`AbortReason::Retry`] instead of spinning; prefer it in application
/// code and keep this function for harnesses that script logical threads
/// by hand (the deterministic scenario drivers, the engines' own tests).
/// An [`AbortReason::Retry`] abort is treated here like any other abort:
/// the body is immediately re-run.
///
/// The body receives the active transaction handle and must propagate
/// [`Abort`] errors from reads and writes with `?`. Returning `Ok` leads to
/// a commit attempt; a failed commit restarts the body as a fresh
/// transaction (the paper's model: an aborted transaction is re-executed).
///
/// # Errors
///
/// Returns [`RetryExhausted`] when `policy.max_attempts()` attempts all
/// aborted.
///
/// # Examples
///
/// See the crate-level documentation; every STM crate's tests use this
/// function.
pub fn atomically<Th, F, R>(
    thread: &mut Th,
    kind: TxKind,
    policy: &RetryPolicy,
    mut body: F,
) -> Result<R, RetryExhausted>
where
    Th: TmThread,
    F: FnMut(&mut Th::Tx<'_>) -> Result<R, Abort>,
{
    let mut backoff = Backoff::new();
    let mut last_reason = AbortReason::Explicit;
    for attempt in 0..policy.max_attempts {
        let mut tx = thread.begin(kind);
        match body(&mut tx) {
            Ok(result) => match tx.commit() {
                Ok(()) => return Ok(result),
                Err(abort) => last_reason = abort.reason(),
            },
            Err(abort) => {
                last_reason = abort.reason();
                tx.rollback(abort.reason());
            }
        }
        if policy.backoff_on_abort {
            backoff.spin();
        }
        // Saturated backoff resets so long waits do not grow unboundedly
        // under persistent contention.
        if attempt % 64 == 63 {
            backoff.reset();
        }
    }
    Err(RetryExhausted::new(policy.max_attempts, last_reason))
}
