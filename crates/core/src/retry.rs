use std::time::Duration;

use zstm_util::Backoff;

use crate::{Abort, AbortReason, RetryExhausted, TmThread, TmTx, TxKind};

/// Retry policy for [`atomically`].
///
/// Two independent knobs: **how many** attempts an atomic block gets
/// ([`with_max_attempts`](Self::with_max_attempts)) and **how it waits**
/// between them — CPU spin-backoff by default, or bounded exponential
/// *sleep* backoff ([`with_exponential_sleep`](Self::with_exponential_sleep))
/// for overload-facing callers where a livelocking transaction must yield
/// its worker rather than burn it.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use zstm_core::RetryPolicy;
///
/// let policy = RetryPolicy::default().with_max_attempts(100);
/// assert_eq!(policy.max_attempts(), 100);
///
/// // A server-side budget: at most 32 attempts, sleeping 1ms, 2ms, 4ms...
/// // capped at 50ms between them.
/// let budget = RetryPolicy::default()
///     .with_max_attempts(32)
///     .with_exponential_sleep(Duration::from_millis(1), Duration::from_millis(50));
/// assert_eq!(budget.sleep_for_attempt(2), Some(Duration::from_millis(4)));
/// assert_eq!(budget.sleep_for_attempt(63), Some(Duration::from_millis(50)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    max_attempts: u64,
    backoff_on_abort: bool,
    sleep_base: Option<Duration>,
    sleep_cap: Duration,
}

impl RetryPolicy {
    /// Effectively unbounded retries (the benchmark default: throughput
    /// collapse, not failure, is the observable outcome the paper plots).
    pub fn unbounded() -> Self {
        Self {
            max_attempts: u64::MAX,
            backoff_on_abort: true,
            sleep_base: None,
            sleep_cap: Duration::ZERO,
        }
    }

    /// Limits the number of attempts per atomic block.
    pub fn with_max_attempts(mut self, attempts: u64) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Enables or disables exponential backoff between attempts.
    pub fn with_backoff(mut self, enabled: bool) -> Self {
        self.backoff_on_abort = enabled;
        self
    }

    /// Switches the between-attempt wait from CPU spinning to bounded
    /// exponential **sleep**: attempt `n` waits `base << n`, capped at
    /// `cap`. A zero `base` disables sleeping again (back to spin
    /// backoff). Sleeping policies yield the OS thread — on the server's
    /// shared pool the async retry loop converts the sleep into a timed
    /// park instead, so a conflicting transaction never pins a worker.
    pub fn with_exponential_sleep(mut self, base: Duration, cap: Duration) -> Self {
        self.sleep_base = (!base.is_zero()).then_some(base);
        self.sleep_cap = cap.max(base);
        self
    }

    /// Maximum number of attempts per atomic block.
    pub fn max_attempts(&self) -> u64 {
        self.max_attempts
    }

    /// Whether the retry loop backs off exponentially between attempts.
    pub fn backoff_enabled(&self) -> bool {
        self.backoff_on_abort
    }

    /// The sleep before re-running attempt `attempt + 1`, if this policy
    /// sleeps between attempts (`None` means spin backoff; see
    /// [`with_exponential_sleep`](Self::with_exponential_sleep)).
    /// Exponential in the attempt index with the doubling saturated well
    /// below overflow, then clamped to the configured cap.
    pub fn sleep_for_attempt(&self, attempt: u64) -> Option<Duration> {
        let base = self.sleep_base?;
        let exp = u32::try_from(attempt.min(20)).expect("min(20) fits in u32");
        Some(base.saturating_mul(1 << exp).min(self.sleep_cap))
    }
}

impl Default for RetryPolicy {
    /// The default policy **caps attempts at 1 000 000** (with backoff).
    ///
    /// That bound exists so tests and interactive use fail loudly instead
    /// of hanging when an atomic block can never commit; it is *not*
    /// unbounded. Benchmark and figure-reproduction paths use
    /// [`RetryPolicy::unbounded`] explicitly — there, throughput collapse
    /// (not failure) is the observable outcome the paper plots, and a
    /// silent cap would turn heavy contention into spurious
    /// [`RetryExhausted`] errors.
    fn default() -> Self {
        Self {
            max_attempts: 1_000_000,
            backoff_on_abort: true,
            sleep_base: None,
            sleep_cap: Duration::ZERO,
        }
    }
}

/// Runs `body` as a transaction of kind `kind` on `thread`, retrying on
/// aborts according to `policy`.
///
/// This is the **low-level, engine-facing retry loop**: it needs an
/// explicitly registered [`TmThread`] and always spin-retries (with
/// backoff). The `zstm-api` front end's `Stm::atomically` wraps the same
/// engine calls but leases thread contexts transparently and *parks* on
/// [`AbortReason::Retry`] instead of spinning; prefer it in application
/// code and keep this function for harnesses that script logical threads
/// by hand (the deterministic scenario drivers, the engines' own tests).
/// An [`AbortReason::Retry`] abort is treated here like any other abort:
/// the body is immediately re-run.
///
/// The body receives the active transaction handle and must propagate
/// [`Abort`] errors from reads and writes with `?`. Returning `Ok` leads to
/// a commit attempt; a failed commit restarts the body as a fresh
/// transaction (the paper's model: an aborted transaction is re-executed).
///
/// # Errors
///
/// Returns [`RetryExhausted`] when `policy.max_attempts()` attempts all
/// aborted.
///
/// # Examples
///
/// See the crate-level documentation; every STM crate's tests use this
/// function.
pub fn atomically<Th, F, R>(
    thread: &mut Th,
    kind: TxKind,
    policy: &RetryPolicy,
    mut body: F,
) -> Result<R, RetryExhausted>
where
    Th: TmThread,
    F: FnMut(&mut Th::Tx<'_>) -> Result<R, Abort>,
{
    let mut backoff = Backoff::new();
    let mut last_reason = AbortReason::Explicit;
    for attempt in 0..policy.max_attempts {
        let mut tx = thread.begin(kind);
        match body(&mut tx) {
            Ok(result) => match tx.commit() {
                Ok(()) => return Ok(result),
                Err(abort) => last_reason = abort.reason(),
            },
            Err(abort) => {
                last_reason = abort.reason();
                tx.rollback(abort.reason());
            }
        }
        if let Some(sleep) = policy.sleep_for_attempt(attempt) {
            std::thread::sleep(sleep);
        } else if policy.backoff_on_abort {
            backoff.spin();
        }
        // Saturated backoff resets so long waits do not grow unboundedly
        // under persistent contention.
        if attempt % 64 == 63 {
            backoff.reset();
        }
    }
    Err(RetryExhausted::new(policy.max_attempts, last_reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_does_not_sleep() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.sleep_for_attempt(0), None);
        assert_eq!(policy.sleep_for_attempt(1_000), None);
    }

    #[test]
    fn exponential_sleep_doubles_and_caps() {
        let policy = RetryPolicy::default()
            .with_exponential_sleep(Duration::from_millis(1), Duration::from_millis(8));
        assert_eq!(policy.sleep_for_attempt(0), Some(Duration::from_millis(1)));
        assert_eq!(policy.sleep_for_attempt(1), Some(Duration::from_millis(2)));
        assert_eq!(policy.sleep_for_attempt(3), Some(Duration::from_millis(8)));
        // Saturates at the cap for arbitrarily late attempts.
        assert_eq!(
            policy.sleep_for_attempt(u64::MAX),
            Some(Duration::from_millis(8))
        );
    }

    #[test]
    fn zero_base_disables_sleeping() {
        let policy = RetryPolicy::default()
            .with_exponential_sleep(Duration::from_millis(1), Duration::from_millis(8))
            .with_exponential_sleep(Duration::ZERO, Duration::from_millis(8));
        assert_eq!(policy.sleep_for_attempt(0), None);
    }

    #[test]
    fn cap_never_sits_below_base() {
        let policy = RetryPolicy::default()
            .with_exponential_sleep(Duration::from_millis(10), Duration::from_millis(1));
        assert_eq!(policy.sleep_for_attempt(0), Some(Duration::from_millis(10)));
    }
}
