use zstm_util::Backoff;

use crate::{Abort, AbortReason, RetryExhausted, TmThread, TmTx, TxKind};

/// Retry policy for [`atomically`].
///
/// # Examples
///
/// ```
/// use zstm_core::RetryPolicy;
///
/// let policy = RetryPolicy::default().with_max_attempts(100);
/// assert_eq!(policy.max_attempts(), 100);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    max_attempts: u64,
    backoff_on_abort: bool,
}

impl RetryPolicy {
    /// Effectively unbounded retries (the benchmark default: throughput
    /// collapse, not failure, is the observable outcome the paper plots).
    pub fn unbounded() -> Self {
        Self {
            max_attempts: u64::MAX,
            backoff_on_abort: true,
        }
    }

    /// Limits the number of attempts per atomic block.
    pub fn with_max_attempts(mut self, attempts: u64) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Enables or disables exponential backoff between attempts.
    pub fn with_backoff(mut self, enabled: bool) -> Self {
        self.backoff_on_abort = enabled;
        self
    }

    /// Maximum number of attempts per atomic block.
    pub fn max_attempts(&self) -> u64 {
        self.max_attempts
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1_000_000,
            backoff_on_abort: true,
        }
    }
}

/// Runs `body` as a transaction of kind `kind` on `thread`, retrying on
/// aborts according to `policy`.
///
/// The body receives the active transaction handle and must propagate
/// [`Abort`] errors from reads and writes with `?`. Returning `Ok` leads to
/// a commit attempt; a failed commit restarts the body as a fresh
/// transaction (the paper's model: an aborted transaction is re-executed).
///
/// # Errors
///
/// Returns [`RetryExhausted`] when `policy.max_attempts()` attempts all
/// aborted.
///
/// # Examples
///
/// See the crate-level documentation; every STM crate's tests use this
/// function.
pub fn atomically<Th, F, R>(
    thread: &mut Th,
    kind: TxKind,
    policy: &RetryPolicy,
    mut body: F,
) -> Result<R, RetryExhausted>
where
    Th: TmThread,
    F: FnMut(&mut Th::Tx<'_>) -> Result<R, Abort>,
{
    let mut backoff = Backoff::new();
    let mut last_reason = AbortReason::Explicit;
    for attempt in 0..policy.max_attempts {
        let mut tx = thread.begin(kind);
        match body(&mut tx) {
            Ok(result) => match tx.commit() {
                Ok(()) => return Ok(result),
                Err(abort) => last_reason = abort.reason(),
            },
            Err(abort) => {
                last_reason = abort.reason();
                tx.rollback(abort.reason());
            }
        }
        if policy.backoff_on_abort {
            backoff.spin();
        }
        // Saturated backoff resets so long waits do not grow unboundedly
        // under persistent contention.
        if attempt % 64 == 63 {
            backoff.reset();
        }
    }
    Err(RetryExhausted::new(policy.max_attempts, last_reason))
}
