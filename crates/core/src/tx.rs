use core::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use crate::{ThreadId, TxId, TxKind};

/// Lifecycle state of a transaction descriptor.
///
/// The `Committing` state implements the paper's note (Section 4.2) that an
/// "additional state indicates when transactions are committing": once a
/// transaction has entered `Committing` it can no longer be killed by a
/// contention manager, which gives commits a point of no return without
/// locks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxStatus {
    /// Executing its body; may be killed by an opponent.
    Active,
    /// Executing its commit protocol; no longer killable.
    Committing,
    /// Irrevocably committed; its tentative versions are the current ones.
    Committed,
    /// Irrevocably aborted; its tentative versions are garbage.
    Aborted,
}

const ACTIVE: u8 = 0;
const COMMITTING: u8 = 1;
const COMMITTED: u8 = 2;
const ABORTED: u8 = 3;

fn decode(status: u8) -> TxStatus {
    match status {
        ACTIVE => TxStatus::Active,
        COMMITTING => TxStatus::Committing,
        COMMITTED => TxStatus::Committed,
        ABORTED => TxStatus::Aborted,
        _ => unreachable!("invalid status byte"),
    }
}

/// Shared, atomically updated descriptor of one transaction attempt.
///
/// This is the DSTM-style transaction record that object locators point to:
/// the single compare-and-swap on [`TxShared::status`] is the commit point
/// of every STM in this workspace (cf. Algorithm 2 line 25, "atomically
/// flips its status"). Contention managers inspect descriptors of both
/// parties of a conflict and kill the loser through [`TxShared::try_kill`].
///
/// # Examples
///
/// ```
/// use zstm_core::{ThreadId, TxKind, TxShared, TxStatus};
///
/// let tx = TxShared::start(ThreadId::new(0), TxKind::Short, 0);
/// assert_eq!(tx.status(), TxStatus::Active);
/// assert!(tx.begin_commit());
/// assert!(!tx.try_kill()); // too late: already committing
/// tx.finish_commit();
/// assert_eq!(tx.status(), TxStatus::Committed);
/// ```
pub struct TxShared {
    id: TxId,
    thread: ThreadId,
    kind: TxKind,
    /// Global sequence number at start; used by timestamp-based contention
    /// managers ("older transaction wins").
    start_seq: u64,
    status: AtomicU8,
    /// Accumulated priority for the Karma policy (roughly: objects opened).
    karma: AtomicU64,
    /// Set while the transaction is blocked waiting on an opponent; the
    /// Greedy policy aborts waiting opponents.
    waiting: AtomicBool,
    /// Commit time stamped onto versions this transaction installs; set
    /// during the commit protocol, before the status flip.
    commit_ct: AtomicU64,
}

static START_SEQ: AtomicU64 = AtomicU64::new(0);

impl TxShared {
    /// Creates a descriptor in the `Active` state. `karma` carries over
    /// priority accumulated by earlier aborted attempts of the same atomic
    /// block (the Karma policy's defining feature).
    pub fn start(thread: ThreadId, kind: TxKind, karma: u64) -> Self {
        Self {
            id: TxId::fresh(),
            thread,
            kind,
            start_seq: START_SEQ.fetch_add(1, Ordering::Relaxed),
            status: AtomicU8::new(ACTIVE),
            karma: AtomicU64::new(karma),
            waiting: AtomicBool::new(false),
            commit_ct: AtomicU64::new(0),
        }
    }

    /// The commit time this transaction stamps onto the versions it
    /// installs. Only meaningful once the transaction reached `Committing`
    /// or `Committed`.
    pub fn commit_ct(&self) -> u64 {
        self.commit_ct.load(Ordering::Acquire)
    }

    /// Records the commit time; must be called before the status flip that
    /// publishes the transaction's updates.
    pub fn set_commit_ct(&self, ct: u64) {
        self.commit_ct.store(ct, Ordering::Release);
    }

    /// This attempt's unique id.
    pub fn id(&self) -> TxId {
        self.id
    }

    /// Logical thread executing the transaction.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Short/long classification.
    pub fn kind(&self) -> TxKind {
        self.kind
    }

    /// Global start sequence number (smaller = older).
    pub fn start_seq(&self) -> u64 {
        self.start_seq
    }

    /// Current lifecycle state.
    pub fn status(&self) -> TxStatus {
        decode(self.status.load(Ordering::Acquire))
    }

    /// Returns `true` if the descriptor is still `Active`.
    pub fn is_active(&self) -> bool {
        self.status() == TxStatus::Active
    }

    /// Returns `true` once the descriptor reached `Committed`.
    pub fn is_committed(&self) -> bool {
        self.status() == TxStatus::Committed
    }

    /// Attempts to kill an active transaction (CAS `Active → Aborted`).
    /// Returns `true` if this call performed the kill. Transactions that
    /// already entered `Committing` cannot be killed.
    pub fn try_kill(&self) -> bool {
        self.status
            .compare_exchange(ACTIVE, ABORTED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Enters the commit protocol (CAS `Active → Committing`). Returns
    /// `false` if the transaction was killed first.
    pub fn begin_commit(&self) -> bool {
        self.status
            .compare_exchange(ACTIVE, COMMITTING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Completes the commit protocol (`Committing → Committed`). This store
    /// is the linearization point at which tentative versions become
    /// current.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor is not in the `Committing` state.
    pub fn finish_commit(&self) {
        let previous = self.status.swap(COMMITTED, Ordering::AcqRel);
        assert_eq!(
            previous, COMMITTING,
            "finish_commit outside commit protocol"
        );
    }

    /// Attempts the one-shot commit used by STMs whose entire commit is the
    /// status flip (CAS `Active → Committed`), e.g. Z-STM long transactions.
    pub fn try_commit_directly(&self) -> bool {
        self.status
            .compare_exchange(ACTIVE, COMMITTED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Marks the transaction aborted regardless of current state, unless it
    /// already committed. Returns the resulting status.
    pub fn abort(&self) -> TxStatus {
        let mut current = self.status.load(Ordering::Acquire);
        loop {
            if current == COMMITTED || current == ABORTED {
                return decode(current);
            }
            match self.status.compare_exchange_weak(
                current,
                ABORTED,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return TxStatus::Aborted,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current Karma priority.
    pub fn karma(&self) -> u64 {
        self.karma.load(Ordering::Relaxed)
    }

    /// Accrues Karma priority (called on each object open).
    pub fn add_karma(&self, amount: u64) {
        self.karma.fetch_add(amount, Ordering::Relaxed);
    }

    /// Whether the transaction is currently blocked on an opponent.
    pub fn is_waiting(&self) -> bool {
        self.waiting.load(Ordering::Acquire)
    }

    /// Sets or clears the waiting flag (used by the Greedy policy).
    pub fn set_waiting(&self, waiting: bool) {
        self.waiting.store(waiting, Ordering::Release);
    }
}

impl fmt::Debug for TxShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxShared")
            .field("id", &self.id)
            .field("thread", &self.thread)
            .field("kind", &self.kind)
            .field("status", &self.status())
            .field("karma", &self.karma())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_descriptor_is_active() {
        let tx = TxShared::start(ThreadId::new(1), TxKind::Long, 5);
        assert_eq!(tx.status(), TxStatus::Active);
        assert!(tx.is_active());
        assert_eq!(tx.kind(), TxKind::Long);
        assert_eq!(tx.thread(), ThreadId::new(1));
        assert_eq!(tx.karma(), 5);
    }

    #[test]
    fn kill_only_works_while_active() {
        let tx = TxShared::start(ThreadId::new(0), TxKind::Short, 0);
        assert!(tx.try_kill());
        assert_eq!(tx.status(), TxStatus::Aborted);
        assert!(!tx.try_kill());
    }

    #[test]
    fn committing_shields_from_kill() {
        let tx = TxShared::start(ThreadId::new(0), TxKind::Short, 0);
        assert!(tx.begin_commit());
        assert!(!tx.try_kill());
        tx.finish_commit();
        assert!(tx.is_committed());
    }

    #[test]
    fn direct_commit_path() {
        let tx = TxShared::start(ThreadId::new(0), TxKind::Long, 0);
        assert!(tx.try_commit_directly());
        assert!(tx.is_committed());
        assert!(!tx.try_commit_directly());
    }

    #[test]
    fn abort_is_idempotent_and_respects_committed() {
        let tx = TxShared::start(ThreadId::new(0), TxKind::Short, 0);
        assert_eq!(tx.abort(), TxStatus::Aborted);
        assert_eq!(tx.abort(), TxStatus::Aborted);

        let done = TxShared::start(ThreadId::new(0), TxKind::Short, 0);
        assert!(done.try_commit_directly());
        assert_eq!(done.abort(), TxStatus::Committed);
    }

    #[test]
    fn start_seq_is_monotonic() {
        let a = TxShared::start(ThreadId::new(0), TxKind::Short, 0);
        let b = TxShared::start(ThreadId::new(0), TxKind::Short, 0);
        assert!(a.start_seq() < b.start_seq());
    }

    #[test]
    fn karma_accrues() {
        let tx = TxShared::start(ThreadId::new(0), TxKind::Short, 2);
        tx.add_karma(3);
        assert_eq!(tx.karma(), 5);
    }

    #[test]
    fn concurrent_kill_vs_commit_has_single_winner() {
        for _ in 0..200 {
            let tx = Arc::new(TxShared::start(ThreadId::new(0), TxKind::Short, 0));
            let killer = {
                let tx = Arc::clone(&tx);
                std::thread::spawn(move || tx.try_kill())
            };
            let committer = {
                let tx = Arc::clone(&tx);
                std::thread::spawn(move || tx.try_commit_directly())
            };
            let killed = killer.join().expect("killer panicked");
            let committed = committer.join().expect("committer panicked");
            assert!(killed ^ committed, "exactly one must win");
        }
    }
}
