//! Contention managers (the `arbitrate`/`conflict` module of Algorithms
//! 1–3).
//!
//! When two transactions conflict on an object, the STM does not decide who
//! wins — it delegates to a pluggable *contention manager* "responsible for
//! the liveness of the system" (Section 4.1). This module provides the
//! classic DSTM-lineage policies; the benchmarks compare them under the
//! paper's long/short mix (ablation C in `ARCHITECTURE.md`).

use core::fmt;
use std::sync::Arc;

use crate::{TxShared, TxStatus};

/// Decision returned by a contention manager for one conflict round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Kill the opponent and take the object.
    AbortOther,
    /// Abort the calling transaction.
    AbortSelf,
    /// Back off and re-examine the conflict.
    Wait,
}

/// Arbitration policy between two conflicting transactions.
///
/// `me` is the transaction that detected the conflict (the *attacker*),
/// `other` the current owner (the *victim*). `round` counts how many times
/// this same conflict has already been retried, letting policies escalate
/// from waiting to aborting.
///
/// Implementations must guarantee progress: for any fixed pair of
/// transactions, repeated calls with increasing `round` must eventually
/// return something other than [`Resolution::Wait`].
pub trait ContentionManager: Send + Sync + 'static {
    /// Decides the current conflict round.
    fn resolve(&self, me: &TxShared, other: &TxShared, round: u64) -> Resolution;

    /// Policy name used in benchmark reports.
    fn name(&self) -> &'static str;
}

/// Rounds after which the escalating policies stop waiting.
const PATIENCE: u64 = 16;

/// Always aborts the opponent. Maximum progress for the attacker, maximum
/// wasted work for everybody else; the paper's "first committer wins"
/// degenerates into "last attacker wins" under this policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct Aggressive;

impl ContentionManager for Aggressive {
    fn resolve(&self, _me: &TxShared, _other: &TxShared, _round: u64) -> Resolution {
        Resolution::AbortOther
    }

    fn name(&self) -> &'static str {
        "aggressive"
    }
}

/// Always aborts itself. Dual of [`Aggressive`]; useful as a worst case in
/// the contention ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Suicide;

impl ContentionManager for Suicide {
    fn resolve(&self, _me: &TxShared, _other: &TxShared, _round: u64) -> Resolution {
        Resolution::AbortSelf
    }

    fn name(&self) -> &'static str {
        "suicide"
    }
}

/// Backs off with bounded patience, then aborts the opponent.
///
/// This is the default policy: it resolves transient conflicts without any
/// abort at all (the opponent usually commits during the wait) and degrades
/// to [`Aggressive`] for persistent ones.
#[derive(Clone, Copy, Debug)]
pub struct Polite {
    patience: u64,
}

impl Polite {
    /// Creates the policy with an explicit number of waiting rounds.
    pub fn with_patience(patience: u64) -> Self {
        Self { patience }
    }
}

impl Default for Polite {
    fn default() -> Self {
        Self::with_patience(PATIENCE)
    }
}

impl ContentionManager for Polite {
    fn resolve(&self, _me: &TxShared, other: &TxShared, round: u64) -> Resolution {
        if other.status() != TxStatus::Active {
            // The opponent finished while we were backing off; the caller
            // re-examines the object and will no longer conflict.
            return Resolution::Wait;
        }
        if round < self.patience {
            Resolution::Wait
        } else {
            Resolution::AbortOther
        }
    }

    fn name(&self) -> &'static str {
        "polite"
    }
}

/// Karma: transactions accumulate priority proportional to the work they
/// have invested (objects opened, carried across retries). The attacker
/// wins only once its karma plus the rounds it has waited exceeds the
/// victim's karma — so a long transaction that has opened hundreds of
/// objects is not killed by a two-access transfer.
#[derive(Clone, Copy, Debug, Default)]
pub struct Karma;

impl ContentionManager for Karma {
    fn resolve(&self, me: &TxShared, other: &TxShared, round: u64) -> Resolution {
        if other.status() != TxStatus::Active {
            return Resolution::Wait;
        }
        if me.karma().saturating_add(round) >= other.karma() {
            Resolution::AbortOther
        } else {
            Resolution::Wait
        }
    }

    fn name(&self) -> &'static str {
        "karma"
    }
}

/// Timestamp: the older transaction (smaller start sequence) wins. The
/// younger attacker waits with bounded patience and then aborts itself,
/// which makes the policy livelock-free: the oldest active transaction is
/// never the one that self-aborts.
#[derive(Clone, Copy, Debug, Default)]
pub struct Timestamp;

impl ContentionManager for Timestamp {
    fn resolve(&self, me: &TxShared, other: &TxShared, round: u64) -> Resolution {
        if other.status() != TxStatus::Active {
            return Resolution::Wait;
        }
        if me.start_seq() < other.start_seq() {
            Resolution::AbortOther
        } else if round < PATIENCE {
            Resolution::Wait
        } else {
            Resolution::AbortSelf
        }
    }

    fn name(&self) -> &'static str {
        "timestamp"
    }
}

/// Greedy: like [`Timestamp`], but an opponent that is itself blocked
/// waiting (its `waiting` flag is set) is killed immediately, which bounds
/// the length of waiting chains.
#[derive(Clone, Copy, Debug, Default)]
pub struct Greedy;

impl ContentionManager for Greedy {
    fn resolve(&self, me: &TxShared, other: &TxShared, round: u64) -> Resolution {
        if other.status() != TxStatus::Active {
            return Resolution::Wait;
        }
        if me.start_seq() < other.start_seq() || other.is_waiting() {
            Resolution::AbortOther
        } else if round < PATIENCE {
            Resolution::Wait
        } else {
            Resolution::AbortSelf
        }
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Selectable contention-management policy, the configuration-friendly
/// counterpart of the [`ContentionManager`] implementations.
///
/// # Examples
///
/// ```
/// use zstm_core::CmPolicy;
///
/// let cm = CmPolicy::Karma.build();
/// assert_eq!(cm.name(), "karma");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum CmPolicy {
    /// [`Aggressive`].
    Aggressive,
    /// [`Suicide`].
    Suicide,
    /// [`Polite`] with default patience.
    #[default]
    Polite,
    /// [`Karma`].
    Karma,
    /// [`Timestamp`].
    Timestamp,
    /// [`Greedy`].
    Greedy,
}

impl CmPolicy {
    /// All selectable policies (for benchmark sweeps).
    pub const ALL: [CmPolicy; 6] = [
        CmPolicy::Aggressive,
        CmPolicy::Suicide,
        CmPolicy::Polite,
        CmPolicy::Karma,
        CmPolicy::Timestamp,
        CmPolicy::Greedy,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Arc<dyn ContentionManager> {
        match self {
            CmPolicy::Aggressive => Arc::new(Aggressive),
            CmPolicy::Suicide => Arc::new(Suicide),
            CmPolicy::Polite => Arc::new(Polite::default()),
            CmPolicy::Karma => Arc::new(Karma),
            CmPolicy::Timestamp => Arc::new(Timestamp),
            CmPolicy::Greedy => Arc::new(Greedy),
        }
    }
}

impl fmt::Display for CmPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.build().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreadId, TxKind};

    fn pair() -> (TxShared, TxShared) {
        let older = TxShared::start(ThreadId::new(0), TxKind::Short, 0);
        let younger = TxShared::start(ThreadId::new(1), TxKind::Short, 0);
        (older, younger)
    }

    #[test]
    fn aggressive_always_aborts_other() {
        let (a, b) = pair();
        assert_eq!(Aggressive.resolve(&a, &b, 0), Resolution::AbortOther);
        assert_eq!(Aggressive.resolve(&b, &a, 99), Resolution::AbortOther);
    }

    #[test]
    fn suicide_always_aborts_self() {
        let (a, b) = pair();
        assert_eq!(Suicide.resolve(&a, &b, 0), Resolution::AbortSelf);
    }

    #[test]
    fn polite_waits_then_escalates() {
        let (a, b) = pair();
        let cm = Polite::with_patience(3);
        assert_eq!(cm.resolve(&a, &b, 0), Resolution::Wait);
        assert_eq!(cm.resolve(&a, &b, 2), Resolution::Wait);
        assert_eq!(cm.resolve(&a, &b, 3), Resolution::AbortOther);
    }

    #[test]
    fn polite_defers_to_finished_opponents() {
        let (a, b) = pair();
        b.abort();
        assert_eq!(Polite::default().resolve(&a, &b, 100), Resolution::Wait);
    }

    #[test]
    fn karma_respects_invested_work() {
        let (a, b) = pair();
        b.add_karma(10);
        // Attacker with no karma waits for a rich victim...
        assert_eq!(Karma.resolve(&a, &b, 0), Resolution::Wait);
        // ...but eventually out-waits it...
        assert_eq!(Karma.resolve(&a, &b, 10), Resolution::AbortOther);
        // ...and a rich attacker wins immediately.
        a.add_karma(20);
        assert_eq!(Karma.resolve(&a, &b, 0), Resolution::AbortOther);
    }

    #[test]
    fn timestamp_lets_elders_win() {
        let (older, younger) = pair();
        assert_eq!(
            Timestamp.resolve(&older, &younger, 0),
            Resolution::AbortOther
        );
        assert_eq!(Timestamp.resolve(&younger, &older, 0), Resolution::Wait);
        assert_eq!(
            Timestamp.resolve(&younger, &older, PATIENCE),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn greedy_kills_waiting_opponents() {
        let (older, younger) = pair();
        older.set_waiting(true);
        assert_eq!(
            Greedy.resolve(&younger, &older, 0),
            Resolution::AbortOther,
            "a waiting opponent is killable regardless of age"
        );
    }

    #[test]
    fn all_policies_eventually_stop_waiting() {
        let (a, b) = pair();
        b.add_karma(1_000);
        for policy in CmPolicy::ALL {
            let cm = policy.build();
            let resolved = (0..=2_000)
                .map(|round| cm.resolve(&a, &b, round))
                .any(|r| r != Resolution::Wait);
            assert!(resolved, "{} waits forever", cm.name());
        }
    }

    #[test]
    fn policy_enum_builds_matching_names() {
        for policy in CmPolicy::ALL {
            assert_eq!(policy.to_string(), policy.build().name());
        }
    }
}
