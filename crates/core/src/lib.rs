//! Shared STM framework for the `zstm` workspace.
//!
//! The paper's algorithms (LSA-STM, CS-STM, S-STM, Z-STM) share a large
//! amount of machinery that this crate factors out:
//!
//! * [`TxShared`] — the DSTM-style transaction descriptor whose atomic
//!   status word is every STM's commit point;
//! * [`ContentionManager`] and the classic policies ([`CmPolicy`]) invoked
//!   from the `arbitrate`/`conflict` hooks of Algorithms 1–3;
//! * [`TxStats`] — per-thread commit/abort accounting split by
//!   [`TxKind`], matching the paper's separate long/short throughput plots;
//! * [`EventSink`]/[`TxEvent`] — the event stream consumed by the
//!   consistency checkers in `zstm-history`;
//! * the [`TmFactory`]/[`TmThread`]/[`TmTx`] traits plus the
//!   [`atomically`] retry loop, which let one workload harness drive all
//!   five STMs.
//!
//! # Examples
//!
//! Running a transaction against any STM implementing the traits (here
//! LSA-STM; swap in any of the five engines):
//!
//! ```
//! use std::sync::Arc;
//! use zstm_core::{atomically, RetryPolicy, StmConfig, TmFactory, TmThread, TmTx, TxKind};
//! use zstm_lsa::LsaStm;
//!
//! let stm = Arc::new(LsaStm::new(StmConfig::new(2)));
//! let var = stm.new_var(0i64);
//! let mut thread = stm.register_thread();
//! let value = atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
//!     let v = tx.read(&var)?;
//!     tx.write(&var, v + 1)?;
//!     Ok(v + 1)
//! })?;
//! assert_eq!(value, 1);
//! # Ok::<(), zstm_core::RetryExhausted>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cm;
mod config;
mod error;
mod events;
mod ids;
mod kind;
mod marker;
mod retry;
mod stats;
mod traits;
mod tx;

pub use cm::{
    Aggressive, CmPolicy, ContentionManager, Greedy, Karma, Polite, Resolution, Suicide, Timestamp,
};
pub use config::StmConfig;
pub use error::{Abort, AbortReason, RetryExhausted};
pub use events::{EventSink, NullSink, TxEvent, TxEventKind, VersionSeq};
pub use ids::{ObjId, ThreadId, TxId};
pub use kind::{AccessMode, TxKind};
pub use marker::AutoMarker;
pub use retry::{atomically, RetryPolicy};
pub use stats::TxStats;
pub use traits::{TmFactory, TmThread, TmTx, TxValue};
pub use tx::{TxShared, TxStatus};
