use std::sync::Arc;

use crate::{Abort, AbortReason, ThreadId, TxId, TxKind, TxStats};

/// Values that can live in transactional variables.
///
/// Reads return owned clones (invisible reads hand out snapshots, so the
/// caller must own the data), hence `Clone`; versions are shared between
/// threads, hence `Send + Sync`. Implemented automatically for every
/// suitable type.
pub trait TxValue: Clone + Send + Sync + 'static {}

impl<T: Clone + Send + Sync + 'static> TxValue for T {}

/// One STM instance: a factory for transactional variables and per-thread
/// contexts.
///
/// Each of the five STMs (LSA, TL2, CS, S, Z) implements this trait, which
/// is what lets a single workload/benchmark harness drive all of them. The
/// factory is shared behind an [`Arc`]; variables and threads borrow it
/// internally.
///
/// This trait trio ([`TmFactory`] / [`TmThread`] / [`TmTx`]) is the
/// **engine SPI**: the contract an STM engine implements. Application code
/// normally goes through the `zstm-api` front end (`Stm`, `TVar`,
/// `Stm::atomically`), which layers transparent thread leasing, composable
/// blocking (`retry`/`or_else`) and a type-erased facade on top of these
/// traits without the engines having to know.
pub trait TmFactory: Send + Sync + Sized + 'static {
    /// STM-specific transactional variable holding a `T`.
    ///
    /// The `'static` bound lets var handles be type-erased (boxed as
    /// `dyn Any`) by the runtime-selectable facade of the API layer; every
    /// engine's var is an `Arc`-shaped handle, so the bound costs nothing.
    type Var<T: TxValue>: Send + Sync + 'static;
    /// STM-specific per-logical-thread context.
    type Thread: TmThread<Factory = Self>;

    /// Creates a transactional variable with the given initial value (the
    /// initial version has version sequence 0).
    fn new_var<T: TxValue>(&self, init: T) -> Self::Var<T>;

    /// Registers the next logical thread and returns its context.
    ///
    /// # Panics
    ///
    /// Implementations may panic when more threads are registered than the
    /// STM was configured for.
    fn register_thread(self: &Arc<Self>) -> Self::Thread;

    /// Number of logical threads this STM was configured for, if bounded.
    ///
    /// The API layer's lease pool uses this to fail fast (with a clear
    /// message) instead of tripping the [`TmFactory::register_thread`]
    /// assertion when more OS threads run transactions concurrently than
    /// the STM supports. `None` means "not statically bounded"; the
    /// default.
    fn max_threads(&self) -> Option<usize> {
        None
    }

    /// Short name of the STM ("lsa", "z", ...) used in reports.
    fn name(&self) -> &'static str;
}

/// Per-logical-thread context of an STM.
///
/// Logical threads are explicit objects rather than OS-thread-locals so a
/// deterministic scenario driver can own several of them and interleave
/// their transactions from a single OS thread (how the paper's figures are
/// replayed as tests). A `TmThread` must still only be used by one OS
/// thread at a time (`&mut self` everywhere).
pub trait TmThread: Send + 'static {
    /// The owning factory type.
    type Factory: TmFactory;
    /// Active-transaction handle borrowing this context.
    type Tx<'a>: TmTx<Factory = Self::Factory>
    where
        Self: 'a;

    /// Starts a transaction of the given kind.
    fn begin(&mut self, kind: TxKind) -> Self::Tx<'_>;

    /// This context's logical thread id.
    fn thread_id(&self) -> ThreadId;

    /// Statistics accumulated by this thread so far.
    fn stats(&self) -> &TxStats;

    /// Mutable access to this thread's statistics, for layers *above* the
    /// engine that account work against the same per-thread counters —
    /// the `zstm-api` retry loop records condvar vs waker parks here.
    ///
    /// Defaulted to `None` so engine-external [`TmThread`] doubles keep
    /// compiling; all five engines override it (like
    /// [`TmFactory::max_threads`], this is a documented SPI extension
    /// point). Returning `None` merely loses the park counters.
    fn stats_mut(&mut self) -> Option<&mut TxStats> {
        None
    }

    /// Takes the accumulated statistics, leaving zeroes behind.
    fn take_stats(&mut self) -> TxStats;
}

/// An active transaction.
///
/// Reads and writes return `Err(Abort)` when the transaction must restart;
/// user code propagates the error with `?` and the [`crate::atomically`]
/// loop retries. After an `Err`, the transaction is already doomed: the
/// only valid next step is [`TmTx::rollback`] (which the retry loop does).
pub trait TmTx {
    /// The owning factory type.
    type Factory: TmFactory;

    /// Reads the variable, returning a snapshot of its value.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if no consistent version can be provided.
    fn read<T: TxValue>(&mut self, var: &<Self::Factory as TmFactory>::Var<T>) -> Result<T, Abort>;

    /// Writes the variable (buffered or tentative until commit).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on write conflicts resolved against this
    /// transaction.
    fn write<T: TxValue>(
        &mut self,
        var: &<Self::Factory as TmFactory>::Var<T>,
        value: T,
    ) -> Result<(), Abort>;

    /// Attempts to commit.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if validation fails; the transaction is rolled
    /// back.
    fn commit(self) -> Result<(), Abort>;

    /// Abandons the transaction, releasing every resource it holds.
    fn rollback(self, reason: AbortReason);

    /// This attempt's id.
    fn id(&self) -> TxId;

    /// The transaction's short/long classification.
    fn kind(&self) -> TxKind;
}
