use core::fmt;
use std::error::Error;

/// Why a transaction aborted.
///
/// The reasons map one-to-one onto the abort sites in the paper's
/// algorithms; the statistics module counts aborts per reason so the
/// benchmarks can attribute throughput loss to specific mechanisms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AbortReason {
    /// Commit-time validation found a read object overwritten
    /// (read/write conflict; e.g. Algorithm 1 line 23).
    ReadValidation,
    /// Another transaction owns the object for writing and the contention
    /// manager decided against us (write/write conflict).
    WriteConflict,
    /// The contention manager or another transaction killed us.
    Killed,
    /// No version valid at the transaction's snapshot time is available any
    /// more (the bounded version history was exhausted).
    SnapshotUnavailable,
    /// A long transaction was passed by a long transaction with a higher
    /// zone number (Algorithm 2 line 20).
    ZonePassed,
    /// A long transaction reached commit with `T.zc <= CT`
    /// (Algorithm 2 line 29).
    ZoneCommitRace,
    /// A short transaction would cross an active long transaction's zone
    /// (Algorithm 3 lines 9 and 18).
    ZoneCross,
    /// Committing would create a cycle in the precedence graph
    /// (S-STM, Section 4.2).
    PrecedenceCycle,
    /// The user requested the abort explicitly.
    Explicit,
    /// The transaction asked to be re-run once the world has changed
    /// (composable blocking: `Tx::retry` in the `zstm-api` front end).
    ///
    /// To every engine this is an ordinary abort — the transaction rolls
    /// back and releases its resources. The *waiting* happens one layer
    /// up: the API retry loop parks the thread on the owning `Stm`'s
    /// commit notifier instead of re-running immediately, so statistics
    /// count blocked attempts (this reason) separately from conflict
    /// aborts.
    Retry,
    /// Committing would complete an SSI dangerous structure detected by
    /// the online certification layer (`zstm-certify`).
    ///
    /// Like [`AbortReason::Retry`] this reason is injected from *above*
    /// the engine SPI: the `CertifiedFactory` wrapper tracks SIREAD-style
    /// read marks plus `in_conflict`/`out_conflict` flags per transaction
    /// and rolls the inner transaction back with this reason when its
    /// commit would let a serializability cycle form. Engines never raise
    /// it themselves; their native criteria stay untouched.
    Certification,
}

impl AbortReason {
    /// All reasons, in a stable order used for statistics indexing.
    pub const ALL: [AbortReason; 11] = [
        AbortReason::ReadValidation,
        AbortReason::WriteConflict,
        AbortReason::Killed,
        AbortReason::SnapshotUnavailable,
        AbortReason::ZonePassed,
        AbortReason::ZoneCommitRace,
        AbortReason::ZoneCross,
        AbortReason::PrecedenceCycle,
        AbortReason::Explicit,
        AbortReason::Retry,
        AbortReason::Certification,
    ];

    /// Stable index of this reason within [`AbortReason::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&r| r == self)
            .expect("reason present in ALL")
    }

    /// Short human-readable label used in benchmark reports.
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::ReadValidation => "read-validation",
            AbortReason::WriteConflict => "write-conflict",
            AbortReason::Killed => "killed",
            AbortReason::SnapshotUnavailable => "snapshot-unavailable",
            AbortReason::ZonePassed => "zone-passed",
            AbortReason::ZoneCommitRace => "zone-commit-race",
            AbortReason::ZoneCross => "zone-cross",
            AbortReason::PrecedenceCycle => "precedence-cycle",
            AbortReason::Explicit => "explicit",
            AbortReason::Retry => "retry",
            AbortReason::Certification => "certification",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error signalling that the current transaction attempt aborted and must be
/// retried (or given up on).
///
/// Transactional reads and writes return `Result<_, Abort>`; user code
/// propagates it with `?` and the [`crate::atomically`] retry loop restarts
/// the body.
///
/// # Examples
///
/// ```
/// use zstm_core::{Abort, AbortReason};
///
/// let err = Abort::new(AbortReason::WriteConflict);
/// assert_eq!(err.reason(), AbortReason::WriteConflict);
/// assert!(err.to_string().contains("write-conflict"));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort {
    reason: AbortReason,
}

impl Abort {
    /// Creates an abort error with the given reason.
    pub fn new(reason: AbortReason) -> Self {
        Self { reason }
    }

    /// Why the transaction aborted.
    pub fn reason(&self) -> AbortReason {
        self.reason
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted: {}", self.reason)
    }
}

impl Error for Abort {}

impl From<AbortReason> for Abort {
    fn from(reason: AbortReason) -> Self {
        Self::new(reason)
    }
}

/// Error returned by [`crate::atomically`] when a transaction failed to
/// commit within the configured number of retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryExhausted {
    attempts: u64,
    last: AbortReason,
}

impl RetryExhausted {
    /// Creates the error from the number of attempts made and the last
    /// abort reason observed.
    pub fn new(attempts: u64, last: AbortReason) -> Self {
        Self { attempts, last }
    }

    /// Number of attempts made before giving up.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Reason of the final abort.
    pub fn last_reason(&self) -> AbortReason {
        self.last
    }
}

impl fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transaction failed to commit after {} attempts (last abort: {})",
            self.attempts, self.last
        )
    }
}

impl Error for RetryExhausted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_indices_are_stable_and_distinct() {
        for (i, reason) in AbortReason::ALL.iter().enumerate() {
            assert_eq!(reason.index(), i);
        }
    }

    #[test]
    fn abort_round_trip() {
        let abort: Abort = AbortReason::ZoneCross.into();
        assert_eq!(abort.reason(), AbortReason::ZoneCross);
        assert!(abort.to_string().contains("zone-cross"));
    }

    #[test]
    fn retry_exhausted_reports_attempts() {
        let err = RetryExhausted::new(32, AbortReason::ReadValidation);
        assert_eq!(err.attempts(), 32);
        assert!(err.to_string().contains("32 attempts"));
        assert!(err.to_string().contains("read-validation"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<Abort>();
        assert_err::<RetryExhausted>();
    }
}
