use std::sync::Arc;

use crate::{CmPolicy, EventSink, NullSink};

/// Configuration shared by every STM in the workspace.
///
/// Built with a non-consuming builder:
///
/// ```
/// use zstm_core::{CmPolicy, StmConfig};
///
/// let mut config = StmConfig::new(8);
/// config.cm(CmPolicy::Karma).max_versions(4);
/// assert_eq!(config.threads(), 8);
/// assert_eq!(config.cm_policy(), CmPolicy::Karma);
/// ```
#[derive(Clone)]
pub struct StmConfig {
    threads: usize,
    cm: CmPolicy,
    max_versions: usize,
    readonly_readsets: bool,
    fast_reads: bool,
    sink: Arc<dyn EventSink>,
}

impl StmConfig {
    /// Default bound on retained versions per object (multi-version STMs).
    pub const DEFAULT_MAX_VERSIONS: usize = 8;

    /// Creates a configuration for `threads` logical threads with default
    /// settings: Polite contention management, 8 retained versions, read
    /// sets maintained for read-only transactions, events disabled.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "an STM needs at least one thread");
        Self {
            threads,
            cm: CmPolicy::default(),
            max_versions: Self::DEFAULT_MAX_VERSIONS,
            readonly_readsets: true,
            fast_reads: true,
            sink: Arc::new(NullSink),
        }
    }

    /// Selects the contention-management policy.
    pub fn cm(&mut self, policy: CmPolicy) -> &mut Self {
        self.cm = policy;
        self
    }

    /// Bounds the number of versions retained per object (≥ 1). Only
    /// multi-version STMs (LSA and the STMs built on it) consult this.
    pub fn max_versions(&mut self, max: usize) -> &mut Self {
        self.max_versions = max.max(1);
        self
    }

    /// Chooses whether read-only transactions maintain read sets.
    ///
    /// `true` is plain LSA-STM; `false` is the optimized "LSA-STM (no
    /// readsets)" variant from Figure 6 that detects read-only transactions
    /// and serves them from the version history without validation.
    pub fn readonly_readsets(&mut self, enabled: bool) -> &mut Self {
        self.readonly_readsets = enabled;
        self
    }

    /// Enables or disables the optimistic (mutex-free) read fast paths.
    ///
    /// `true` (the default) lets engines serve quiescent reads from their
    /// lock-free publication cells; `false` forces every read through the
    /// settled-lock slow path. The knob exists for the `read_hotspot`
    /// regression gate and A/B tests — both modes are semantically
    /// identical, only the locking shape differs.
    pub fn fast_reads(&mut self, enabled: bool) -> &mut Self {
        self.fast_reads = enabled;
        self
    }

    /// Installs an event sink for history recording.
    pub fn event_sink(&mut self, sink: Arc<dyn EventSink>) -> &mut Self {
        self.sink = sink;
        self
    }

    /// Number of logical threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Selected contention-management policy.
    pub fn cm_policy(&self) -> CmPolicy {
        self.cm
    }

    /// Bound on retained versions per object.
    pub fn max_versions_per_object(&self) -> usize {
        self.max_versions
    }

    /// Whether read-only transactions maintain read sets.
    pub fn readonly_uses_readsets(&self) -> bool {
        self.readonly_readsets
    }

    /// Whether the mutex-free read fast paths are enabled.
    pub fn fast_reads_enabled(&self) -> bool {
        self.fast_reads
    }

    /// The configured event sink.
    pub fn sink(&self) -> &Arc<dyn EventSink> {
        &self.sink
    }
}

impl std::fmt::Debug for StmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StmConfig")
            .field("threads", &self.threads)
            .field("cm", &self.cm)
            .field("max_versions", &self.max_versions)
            .field("readonly_readsets", &self.readonly_readsets)
            .field("fast_reads", &self.fast_reads)
            .field("events", &self.sink.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let config = StmConfig::new(4);
        assert_eq!(config.threads(), 4);
        assert_eq!(config.cm_policy(), CmPolicy::Polite);
        assert_eq!(
            config.max_versions_per_object(),
            StmConfig::DEFAULT_MAX_VERSIONS
        );
        assert!(config.readonly_uses_readsets());
        assert!(config.fast_reads_enabled());
        assert!(!config.sink().enabled());
    }

    #[test]
    fn builder_chains() {
        let mut config = StmConfig::new(2);
        config
            .cm(CmPolicy::Greedy)
            .max_versions(0) // clamped to 1
            .readonly_readsets(false);
        assert_eq!(config.cm_policy(), CmPolicy::Greedy);
        assert_eq!(config.max_versions_per_object(), 1);
        assert!(!config.readonly_uses_readsets());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = StmConfig::new(0);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", StmConfig::new(1)).contains("StmConfig"));
    }
}
