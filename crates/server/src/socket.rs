//! The transport abstraction: a [`Socket`] trait over byte streams, plus
//! the [`ChaosSocket`] fault-injection decorator.
//!
//! The server never names `TcpStream` past the accept loop — every
//! connection is a `Box<dyn Socket>`. That one indirection is what the
//! whole failure-handling test surface hangs off: wrap the same stream in
//! [`ChaosSocket`] and the connection experiences short reads, injected
//! latency and mid-stream disconnects, deterministically from a seed,
//! with zero changes to the protocol or server code under test.
//!
//! Faults are injected on the *server's* side of the connection, which is
//! the interesting side: a request half-read when the link dies must not
//! leave half a transaction behind, and a `MULTI` body queued before the
//! drop must never execute.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use zstm_util::XorShift64;

/// A bidirectional byte stream the server can serve a connection over.
///
/// Deliberately smaller than `Read + Write`: exactly the three operations
/// the connection loop performs, so a decorator has one choke point per
/// failure mode.
pub trait Socket: Send {
    /// Reads at most `buf.len()` bytes; `Ok(0)` is end-of-stream.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; the connection loop treats any error
    /// as a dead peer.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Writes the whole buffer.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; the connection loop treats any error
    /// as a dead peer.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Closes both directions, unblocking any peer blocked in a read.
    fn shutdown(&mut self);

    /// Caps how long a [`read`](Socket::read) may block before failing
    /// with [`io::ErrorKind::WouldBlock`] / `TimedOut` (`None` blocks
    /// forever). The connection loop uses this as the **idle timeout**: a
    /// peer that sends nothing for this long is treated as dead.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (e.g. a closed socket).
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;

    /// Caps how long a [`write_all`](Socket::write_all) may block on a
    /// full send buffer — the slow-consumer guard: a peer that stops
    /// reading its replies fails the write instead of wedging the
    /// connection thread.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (e.g. a closed socket).
    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Socket for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        Read::read(self, buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }

    fn shutdown(&mut self) {
        let _ = TcpStream::shutdown(self, Shutdown::Both);
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }
}

/// Deterministic fault plan for one [`ChaosSocket`].
///
/// All faults are drawn from a seeded [`XorShift64`], so a failing run is
/// replayable from its seed — the same convention as `zstm-sim`'s
/// schedule fuzzing.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// PRNG seed; every decorated connection forks its own stream from
    /// this.
    pub seed: u64,
    /// Cap reads at a uniformly drawn `1..=short_read_max` bytes
    /// (`0` disables). Exercises every resumption point of the frame
    /// parser: with a cap of 1, a frame arrives one byte per `read`.
    pub short_read_max: usize,
    /// Sleep this long before every read (zero disables) — models a slow
    /// link and gives the RPS figure a degraded series to gate against.
    pub read_delay: Duration,
    /// Per-operation probability, in permille, that the connection is
    /// torn down mid-stream (`0` disables). A triggered drop shuts the
    /// underlying socket and fails the operation with
    /// [`io::ErrorKind::ConnectionReset`].
    pub drop_permille: u16,
    /// Sleep this long before every write (zero disables) — a uniformly
    /// slow consumer, the write-side mirror of `read_delay`.
    pub write_delay: Duration,
    /// Per-write probability, in permille, of an additional
    /// [`write_stall`](Self::write_stall)-long pause (`0` disables) —
    /// a consumer that mostly keeps up but intermittently freezes, the
    /// shape that exercises write deadlines without slowing every reply.
    pub write_stall_permille: u16,
    /// How long a triggered write stall pauses (see
    /// [`write_stall_permille`](Self::write_stall_permille)).
    pub write_stall: Duration,
}

impl ChaosConfig {
    /// No faults at all — the identity decorator (useful as a base to
    /// override one knob in tests).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            short_read_max: 0,
            read_delay: Duration::ZERO,
            drop_permille: 0,
            write_delay: Duration::ZERO,
            write_stall_permille: 0,
            write_stall: Duration::ZERO,
        }
    }

    /// The adversarial shape the chaos tests use: byte-at-a-time-ish
    /// reads and a real chance of dying mid-frame.
    pub fn hostile(seed: u64) -> Self {
        Self {
            seed,
            short_read_max: 3,
            read_delay: Duration::ZERO,
            drop_permille: 30,
            write_delay: Duration::ZERO,
            write_stall_permille: 20,
            write_stall: Duration::from_millis(1),
        }
    }
}

/// Fault-injecting [`Socket`] decorator (drop / delay / short read).
pub struct ChaosSocket<S: Socket> {
    inner: S,
    rng: XorShift64,
    config: ChaosConfig,
    dropped: bool,
}

impl<S: Socket> ChaosSocket<S> {
    /// Wraps `inner`, forking a per-connection PRNG stream from the
    /// config seed and `stream` (typically a connection counter, so
    /// concurrent connections fault independently but reproducibly).
    pub fn new(inner: S, config: ChaosConfig, stream: u64) -> Self {
        let mut base = XorShift64::new(config.seed);
        let rng = base.fork(stream);
        Self {
            inner,
            rng,
            config,
            dropped: false,
        }
    }

    /// Rolls the drop die; on a hit, kills the connection for good.
    fn maybe_drop(&mut self) -> io::Result<()> {
        if self.dropped {
            return Err(io::ErrorKind::ConnectionReset.into());
        }
        if self.config.drop_permille > 0
            && self.rng.next_range(1000) < u64::from(self.config.drop_permille)
        {
            self.dropped = true;
            self.inner.shutdown();
            return Err(io::ErrorKind::ConnectionReset.into());
        }
        Ok(())
    }
}

impl<S: Socket> Socket for ChaosSocket<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.maybe_drop()?;
        if !self.config.read_delay.is_zero() {
            std::thread::sleep(self.config.read_delay);
        }
        let cap = if self.config.short_read_max > 0 {
            (1 + self.rng.next_range(self.config.short_read_max as u64) as usize).min(buf.len())
        } else {
            buf.len()
        };
        self.inner.read(&mut buf[..cap])
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.maybe_drop()?;
        if !self.config.write_delay.is_zero() {
            std::thread::sleep(self.config.write_delay);
        }
        if self.config.write_stall_permille > 0
            && self.rng.next_range(1000) < u64::from(self.config.write_stall_permille)
        {
            std::thread::sleep(self.config.write_stall);
        }
        self.inner.write_all(buf)
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }

    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(timeout)
    }
}

/// An in-memory bidirectional pipe implementing [`Socket`] — unit tests
/// exercise the codec and the chaos decorator without touching the
/// network stack.
pub mod pipe {
    use super::Socket;
    use std::collections::VecDeque;
    use std::io;
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use zstm_util::sync::{Condvar, Mutex};

    struct Half {
        buf: Mutex<VecDeque<u8>>,
        closed: Mutex<bool>,
        cv: Condvar,
    }

    impl Half {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                buf: Mutex::new(VecDeque::new()),
                closed: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn push(&self, bytes: &[u8]) -> io::Result<()> {
            if *self.closed.lock() {
                return Err(io::ErrorKind::BrokenPipe.into());
            }
            self.buf.lock().extend(bytes);
            self.cv.notify_all();
            Ok(())
        }

        fn pull(&self, out: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
            let deadline = timeout.map(|t| Instant::now() + t);
            let mut buf = self.buf.lock();
            loop {
                if !buf.is_empty() {
                    let n = out.len().min(buf.len());
                    for slot in out.iter_mut().take(n) {
                        *slot = buf.pop_front().expect("checked non-empty");
                    }
                    return Ok(n);
                }
                if *self.closed.lock() {
                    return Ok(0);
                }
                match deadline {
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(io::ErrorKind::TimedOut.into());
                        }
                        let (guard, _) = self.cv.wait_timeout(buf, deadline - now);
                        buf = guard;
                    }
                    None => buf = self.cv.wait(buf),
                }
            }
        }

        fn close(&self) {
            *self.closed.lock() = true;
            self.cv.notify_all();
        }
    }

    /// One end of an in-memory duplex pipe.
    ///
    /// Read timeouts behave like `TcpStream`'s: a timed-out `read` fails
    /// with [`io::ErrorKind::TimedOut`]. Writes never block (the buffer
    /// is unbounded), so the write timeout is accepted and ignored.
    pub struct PipeSocket {
        incoming: Arc<Half>,
        outgoing: Arc<Half>,
        read_timeout: Option<Duration>,
    }

    /// Creates a connected pair: bytes written to one end are read from
    /// the other. Closing either end wakes blocked readers on both.
    pub fn pair() -> (PipeSocket, PipeSocket) {
        let (a, b) = (Half::new(), Half::new());
        (
            PipeSocket {
                incoming: Arc::clone(&a),
                outgoing: Arc::clone(&b),
                read_timeout: None,
            },
            PipeSocket {
                incoming: b,
                outgoing: a,
                read_timeout: None,
            },
        )
    }

    impl Socket for PipeSocket {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.incoming.pull(buf, self.read_timeout)
        }

        fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            self.outgoing.push(buf)
        }

        fn shutdown(&mut self) {
            self.incoming.close();
            self.outgoing.close();
        }

        fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
            self.read_timeout = timeout;
            Ok(())
        }

        fn set_write_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
            // Pipe writes are buffered and never block; nothing to bound.
            Ok(())
        }
    }

    impl Drop for PipeSocket {
        fn drop(&mut self) {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::pipe::pair;
    use super::*;

    #[test]
    fn pipe_round_trips() {
        let (mut a, mut b) = pair();
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn short_reads_chunk_the_stream() {
        let (a, mut b) = pair();
        let mut chaotic = ChaosSocket::new(
            a,
            ChaosConfig {
                short_read_max: 2,
                ..ChaosConfig::quiet(7)
            },
            0,
        );
        b.write_all(b"abcdefgh").unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        while got.len() < 8 {
            let n = chaotic.read(&mut buf).unwrap();
            assert!((1..=2).contains(&n), "short reads must cap at 2, got {n}");
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"abcdefgh");
    }

    #[test]
    fn pipe_read_times_out_like_tcp() {
        let (mut a, mut b) = pair();
        a.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        let mut buf = [0u8; 8];
        let started = std::time::Instant::now();
        let err = a.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(started.elapsed() >= Duration::from_millis(30));
        // Data that arrives within the window is still delivered.
        b.write_all(b"ok").unwrap();
        assert_eq!(a.read(&mut buf).unwrap(), 2);
        // Clearing the timeout blocks again (verified by the close path).
        a.set_read_timeout(None).unwrap();
        b.shutdown();
        assert_eq!(a.read(&mut buf).unwrap(), 0, "closed pipe reads EOF");
    }

    #[test]
    fn write_delay_slows_the_producer_side() {
        let (a, mut b) = pair();
        let mut chaotic = ChaosSocket::new(
            a,
            ChaosConfig {
                write_delay: Duration::from_millis(20),
                ..ChaosConfig::quiet(3)
            },
            0,
        );
        let started = std::time::Instant::now();
        chaotic.write_all(b"x").unwrap();
        assert!(started.elapsed() >= Duration::from_millis(20));
        let mut buf = [0u8; 4];
        assert_eq!(b.read(&mut buf).unwrap(), 1);
    }

    #[test]
    fn write_stalls_fire_probabilistically_but_deterministically() {
        let elapsed_for = |seed| {
            let (a, _b) = pair();
            let mut chaotic = ChaosSocket::new(
                a,
                ChaosConfig {
                    write_stall_permille: 500,
                    write_stall: Duration::from_millis(5),
                    ..ChaosConfig::quiet(seed)
                },
                0,
            );
            let started = std::time::Instant::now();
            for _ in 0..64 {
                chaotic.write_all(b"y").unwrap();
            }
            started.elapsed()
        };
        // ~32 of 64 writes stall 5ms: well over 50ms in total.
        assert!(elapsed_for(9) >= Duration::from_millis(50));
    }

    #[test]
    fn drops_are_deterministic_and_permanent() {
        let run = |seed| {
            let (a, mut b) = pair();
            let mut chaotic = ChaosSocket::new(
                a,
                ChaosConfig {
                    drop_permille: 200,
                    ..ChaosConfig::quiet(seed)
                },
                1,
            );
            b.write_all(&[0u8; 4096]).unwrap();
            let mut ops = 0u32;
            let mut buf = [0u8; 8];
            loop {
                match chaotic.read(&mut buf) {
                    Ok(_) => ops += 1,
                    Err(e) => {
                        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                        // Once dropped, always dropped.
                        assert!(chaotic.read(&mut buf).is_err());
                        assert!(chaotic.write_all(b"x").is_err());
                        break ops;
                    }
                }
                assert!(ops < 10_000, "a 2% per-op drop must fire eventually");
            }
        };
        assert_eq!(run(42), run(42), "same seed, same fault point");
    }
}
