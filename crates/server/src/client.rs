//! A blocking scripted client: what the examples, the workload harness
//! and the end-to-end tests speak through.
//!
//! One request in, one reply out — the client never pipelines, so its
//! call surface maps one-to-one onto PROTOCOL.md's command table. Use
//! [`frame::encode_request`](crate::frame::encode_request) directly for
//! pipelining or malformed-input tests.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::frame::{encode_request, parse_reply, FrameError, Parsed, Reply};

/// Default I/O timeout for a fresh [`Client`]: long enough for any
/// legitimate reply in the test and harness suites, short enough that a
/// wedged server turns a hung harness into an error. Raise it per
/// connection with [`Client::set_timeout`] (e.g. for long `WAIT`s).
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A connected client.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a server. Reads and writes both start bounded by
    /// [`DEFAULT_TIMEOUT`] so a wedged server or a full send buffer
    /// surfaces as an error instead of hanging the harness forever.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(DEFAULT_TIMEOUT))?;
        stream.set_write_timeout(Some(DEFAULT_TIMEOUT))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Bounds every subsequent reply wait *and* request write (useful in
    /// tests that expect the server to drop the connection instead of
    /// replying; `None` removes the default bound entirely).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Sends one request and reads one reply.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the connection dies or the server
    /// sends bytes that do not decode as a reply frame.
    pub fn request(&mut self, args: &[&[u8]]) -> io::Result<Reply> {
        self.stream.write_all(&encode_request(args))?;
        self.read_reply()
    }

    /// Reads one reply without sending anything (for raw-bytes tests that
    /// wrote via [`send_raw`](Client::send_raw)).
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] on connection loss or a malformed reply.
    pub fn read_reply(&mut self) -> io::Result<Reply> {
        let mut chunk = [0u8; 4096];
        loop {
            match parse_reply(&self.buf) {
                Ok(Parsed::Complete(reply, consumed)) => {
                    self.buf.drain(..consumed);
                    return Ok(reply);
                }
                Ok(Parsed::Incomplete) => {}
                Err(error) => return Err(frame_to_io(error)),
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Consumes the client, returning the raw stream — for tests that
    /// need to observe the server closing the connection (any bytes
    /// still buffered client-side are discarded).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }

    /// Writes raw bytes with no framing — the malformed-input tests'
    /// entry point.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// `PING` → expects `PONG`.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a non-`PONG`
    /// reply.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(&[b"PING"])? {
            Reply::Status(s) if s == "PONG" => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `GET key` → `Some(bytes)` or `None` for a missing key.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on an error reply.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        match self.request(&[b"GET", key])? {
            Reply::Value(bytes) => Ok(Some(bytes)),
            Reply::Nil => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// `SET key value`.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on an error reply.
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        match self.request(&[b"SET", key, value])? {
            Reply::Status(s) if s == "OK" => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `CAS key expected new` → whether the swap happened.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on an error reply.
    pub fn cas(&mut self, key: &[u8], expected: &[u8], new: &[u8]) -> io::Result<bool> {
        match self.request(&[b"CAS", key, expected, new])? {
            Reply::Int(1) => Ok(true),
            Reply::Int(0) => Ok(false),
            other => Err(unexpected(&other)),
        }
    }

    /// `ADD key delta` → the post-add value.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on an error reply.
    pub fn add(&mut self, key: &[u8], delta: i64) -> io::Result<i64> {
        match self.request(&[b"ADD", key, delta.to_string().as_bytes()])? {
            Reply::Int(value) => Ok(value),
            other => Err(unexpected(&other)),
        }
    }

    /// `MULTI`, the queued commands, `EXEC` — one atomic transaction.
    /// Returns the per-command replies in queue order.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] when queuing fails or
    /// `EXEC` replies with an error.
    pub fn multi_exec(&mut self, commands: &[Vec<Vec<u8>>]) -> io::Result<Vec<Reply>> {
        match self.request(&[b"MULTI"])? {
            Reply::Status(s) if s == "OK" => {}
            other => return Err(unexpected(&other)),
        }
        for command in commands {
            let args: Vec<&[u8]> = command.iter().map(Vec::as_slice).collect();
            match self.request(&args)? {
                Reply::Status(s) if s == "QUEUED" => {}
                other => return Err(unexpected(&other)),
            }
        }
        match self.request(&[b"EXEC"])? {
            Reply::Multi(replies) => Ok(replies),
            other => Err(unexpected(&other)),
        }
    }

    /// `WAIT key expected` — blocks (server-side, in a parked
    /// transaction) until the key holds `expected`.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on an error reply
    /// (e.g. the server shut down while this client waited).
    pub fn wait(&mut self, key: &[u8], expected: &[u8]) -> io::Result<()> {
        match self.request(&[b"WAIT", key, expected])? {
            Reply::Status(s) if s == "OK" => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `WAIT key expected deadline-ms` — like [`Client::wait`] but bounded
    /// server-side: returns the raw reply so callers can distinguish `OK`
    /// (the condition held in time) from the `TIMEOUT ...` error frame
    /// (the deadline passed first).
    ///
    /// # Errors
    ///
    /// I/O errors only; protocol-level `TIMEOUT` comes back as
    /// [`Reply::Error`].
    pub fn wait_deadline(
        &mut self,
        key: &[u8],
        expected: &[u8],
        deadline_ms: u64,
    ) -> io::Result<Reply> {
        self.request(&[b"WAIT", key, expected, deadline_ms.to_string().as_bytes()])
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply: {reply:?}"),
    )
}

fn frame_to_io(error: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, error)
}
