//! Byte-level fuzzing of the frame codec (the CI `fuzz-smoke` entry
//! point for this crate, wired like `zstm-sim`'s `fuzz_schedules`).
//!
//! Three input families per iteration, all drawn from one seeded
//! [`XorShift64`] so a failure replays from its seed:
//!
//! 1. **valid** — a generated request / reply must round-trip exactly,
//!    consume exactly its own length, and parse as
//!    [`Incomplete`](Parsed::Incomplete) from every strict prefix;
//! 2. **mutated** — a valid frame with bytes flipped, truncated or
//!    garbage appended must parse to *something* (complete, incomplete or
//!    a [`FrameError`](crate::frame::FrameError)) without panicking, and a complete parse must
//!    consume no more than the buffer holds;
//! 3. **garbage** — arbitrary bytes, same no-panic/no-overrun property,
//!    for both the request and the reply parser.
//!
//! Violations are captured as hex dumps; the `fuzz_frames` binary writes
//! them to `--out` and exits non-zero.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use zstm_util::XorShift64;

use crate::frame::{encode_request, parse_reply, parse_request, Parsed, Reply};

/// Fuzzer knobs (CLI-mapped by the `fuzz_frames` binary).
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// PRNG seed.
    pub seed: u64,
    /// Stop after this many iterations, if the budget has not hit first.
    pub max_iterations: usize,
    /// Wall-clock budget.
    pub time_budget: Duration,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        Self {
            seed: 0xF4A3_5EED,
            max_iterations: usize::MAX,
            time_budget: Duration::from_secs(10),
        }
    }
}

/// One captured property violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Which property failed.
    pub property: String,
    /// The offending input, hex-encoded for the report file.
    pub input_hex: String,
}

/// What a fuzz run did and found.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Iterations executed (each covers all three input families).
    pub iterations: usize,
    /// Inputs that parsed to a complete frame.
    pub complete: u64,
    /// Inputs rejected with a [`FrameError`](crate::frame::FrameError).
    pub rejected: u64,
    /// Property violations (empty on a clean run).
    pub counterexamples: Vec<Counterexample>,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn random_args(rng: &mut XorShift64) -> Vec<Vec<u8>> {
    let argc = 1 + rng.next_range(8) as usize;
    (0..argc)
        .map(|_| {
            let len = rng.next_range(64) as usize;
            (0..len).map(|_| rng.next_range(256) as u8).collect()
        })
        .collect()
}

fn random_reply(rng: &mut XorShift64, depth: u32) -> Reply {
    match rng.next_range(if depth == 0 { 5 } else { 6 }) {
        0 => Reply::status("OK"),
        1 => Reply::error("ERR fuzz"),
        2 => Reply::Value(
            (0..rng.next_range(32))
                .map(|_| rng.next_range(256) as u8)
                .collect(),
        ),
        3 => Reply::Nil,
        4 => Reply::Int(rng.next_range(u64::MAX) as i64),
        _ => {
            let n = rng.next_range(4) as usize;
            Reply::Multi((0..n).map(|_| random_reply(rng, depth - 1)).collect())
        }
    }
}

/// Feeds `buf` to a parser and checks the no-panic / bounded-consumption
/// property; records the outcome in `report`.
fn check_parse(
    report: &mut FuzzReport,
    property: &str,
    buf: &[u8],
    parse: impl Fn(&[u8]) -> Option<usize> + std::panic::RefUnwindSafe,
) {
    match catch_unwind(AssertUnwindSafe(|| parse(buf))) {
        Ok(Some(consumed)) => {
            report.complete += 1;
            if consumed > buf.len() || consumed < 4 {
                report.counterexamples.push(Counterexample {
                    property: format!("{property}: consumed {consumed} of {}", buf.len()),
                    input_hex: hex(buf),
                });
            }
        }
        Ok(None) => report.rejected += 1,
        Err(_) => report.counterexamples.push(Counterexample {
            property: format!("{property}: parser panicked"),
            input_hex: hex(buf),
        }),
    }
}

fn parse_request_outcome(buf: &[u8]) -> Option<usize> {
    match parse_request(buf) {
        Ok(Parsed::Complete(_, consumed)) => Some(consumed),
        Ok(Parsed::Incomplete) | Err(_) => None,
    }
}

fn parse_reply_outcome(buf: &[u8]) -> Option<usize> {
    match parse_reply(buf) {
        Ok(Parsed::Complete(_, consumed)) => Some(consumed),
        Ok(Parsed::Incomplete) | Err(_) => None,
    }
}

/// Runs the fuzzer. Deterministic given `options.seed` (and a generous
/// enough budget to reach `max_iterations`).
pub fn fuzz_frames(options: &FuzzOptions) -> FuzzReport {
    let mut rng = XorShift64::new(options.seed);
    let mut report = FuzzReport::default();
    let started = Instant::now();
    while report.iterations < options.max_iterations
        && started.elapsed() < options.time_budget
        && report.counterexamples.len() < 16
    {
        report.iterations += 1;

        // Family 1: valid request, exact round trip + prefix behavior.
        let args = random_args(&mut rng);
        let borrowed: Vec<&[u8]> = args.iter().map(Vec::as_slice).collect();
        let wire = encode_request(&borrowed);
        match parse_request(&wire) {
            Ok(Parsed::Complete(request, consumed)) if consumed == wire.len() => {
                if request.args != borrowed {
                    report.counterexamples.push(Counterexample {
                        property: "valid request did not round-trip".into(),
                        input_hex: hex(&wire),
                    });
                }
            }
            other => report.counterexamples.push(Counterexample {
                property: format!("valid request parsed as {other:?}"),
                input_hex: hex(&wire),
            }),
        }
        let cut = rng.next_range(wire.len() as u64) as usize;
        if parse_request(&wire[..cut]) != Ok(Parsed::Incomplete) {
            report.counterexamples.push(Counterexample {
                property: format!("strict prefix of {cut} bytes was not Incomplete"),
                input_hex: hex(&wire[..cut]),
            });
        }

        // Valid reply round trip.
        let reply = random_reply(&mut rng, 2);
        let reply_wire = reply.encode_frame();
        match parse_reply(&reply_wire) {
            Ok(Parsed::Complete(decoded, consumed))
                if consumed == reply_wire.len() && decoded == reply => {}
            other => report.counterexamples.push(Counterexample {
                property: format!("valid reply parsed as {other:?}"),
                input_hex: hex(&reply_wire),
            }),
        }

        // Family 2: mutate the valid frame.
        let mut mutated = wire.clone();
        for _ in 0..=rng.next_range(4) {
            match rng.next_range(3) {
                0 => {
                    let at = rng.next_range(mutated.len() as u64) as usize;
                    mutated[at] ^= 1 << rng.next_range(8);
                }
                1 => {
                    mutated.truncate(rng.next_range(mutated.len() as u64 + 1) as usize);
                }
                _ => {
                    let extra = rng.next_range(8);
                    for _ in 0..extra {
                        mutated.push(rng.next_range(256) as u8);
                    }
                }
            }
            if mutated.is_empty() {
                mutated.push(0);
            }
        }
        check_parse(
            &mut report,
            "mutated request",
            &mutated,
            parse_request_outcome,
        );
        check_parse(&mut report, "mutated reply", &mutated, parse_reply_outcome);

        // Family 3: pure garbage.
        let garbage: Vec<u8> = (0..rng.next_range(128))
            .map(|_| rng.next_range(256) as u8)
            .collect();
        check_parse(
            &mut report,
            "garbage request",
            &garbage,
            parse_request_outcome,
        );
        check_parse(&mut report, "garbage reply", &garbage, parse_reply_outcome);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_fuzz_run_is_clean() {
        let report = fuzz_frames(&FuzzOptions {
            seed: 7,
            max_iterations: 500,
            time_budget: Duration::from_secs(30),
        });
        assert_eq!(report.iterations, 500);
        assert!(
            report.counterexamples.is_empty(),
            "codec property violations: {:?}",
            report.counterexamples
        );
    }
}
