//! Runtime engine selection: a name → [`DynStm`] registry.
//!
//! The server binary and the workload harness pick an engine from a
//! string flag; this module is the one place that string is interpreted,
//! so the set of servable engines cannot drift from the set of built
//! ones. Every engine is also available wrapped in the SSI
//! [`CertifiedFactory`], upgrading its
//! isolation to full serializability at the certifier's documented cost.

use std::sync::Arc;

use zstm_api::{DynStm, Stm};
use zstm_certify::CertifiedFactory;
use zstm_core::StmConfig;
use zstm_cs::CsStm;
use zstm_lsa::LsaStm;
use zstm_sstm::SStm;
use zstm_tl2::Tl2Stm;
use zstm_z::ZStm;

/// The engine names [`build_engine`] accepts, in documentation order.
pub const ENGINE_NAMES: [&str; 5] = ["lsa", "tl2", "cs", "sstm", "z"];

/// Builds the named engine as an erased handle sized for `threads`
/// logical threads (the server passes its pool-worker count plus slack —
/// connections do not lease contexts, only pool workers polling
/// transaction futures do).
///
/// With `certified` the engine is wrapped in the SSI certifier, so every
/// `EXEC` commits under full serializability regardless of the native
/// criterion; certification aborts retry server-side like any conflict
/// (see PROTOCOL.md § transactions).
///
/// Returns `None` for an unknown name; [`ENGINE_NAMES`] lists the valid
/// ones.
pub fn build_engine(name: &str, threads: usize, certified: bool) -> Option<Arc<dyn DynStm>> {
    let config = StmConfig::new(threads);
    let stm: Arc<dyn DynStm> = match (name, certified) {
        ("lsa", false) => Arc::new(Stm::new(LsaStm::new(config))),
        ("lsa", true) => Arc::new(Stm::new(CertifiedFactory::new(config, LsaStm::new))),
        ("tl2", false) => Arc::new(Stm::new(Tl2Stm::new(config))),
        ("tl2", true) => Arc::new(Stm::new(CertifiedFactory::new(config, Tl2Stm::new))),
        ("cs", false) => Arc::new(Stm::new(CsStm::with_vector_clock(config))),
        ("cs", true) => Arc::new(Stm::new(CertifiedFactory::new(
            config,
            CsStm::with_vector_clock,
        ))),
        ("sstm", false) => Arc::new(Stm::new(SStm::with_vector_clock(config))),
        ("sstm", true) => Arc::new(Stm::new(CertifiedFactory::new(
            config,
            SStm::with_vector_clock,
        ))),
        ("z", false) => Arc::new(Stm::new(ZStm::new(config))),
        ("z", true) => Arc::new(Stm::new(CertifiedFactory::new(config, ZStm::new))),
        _ => return None,
    };
    Some(stm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_engine_builds_native_and_certified() {
        for name in ENGINE_NAMES {
            let native = build_engine(name, 2, false).expect(name);
            let certified = build_engine(name, 2, true).expect(name);
            assert!(!native.name().starts_with("certified-"));
            assert!(certified.name().starts_with("certified-"));
        }
        assert!(build_engine("redis", 2, false).is_none());
    }
}
