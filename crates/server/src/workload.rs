//! The server workload: concurrent TCP clients hammering `MULTI`…`EXEC`
//! transfers, with a conservation audit — the driver behind the
//! `repro_figures server` RPS figure and the chaos integration tests.
//!
//! Every transfer is one atomic transaction, `MULTI [ADD from -1; ADD to
//! +1] EXEC`, over a zero-initialized key space, so the audit invariant is
//! the bank workload's: the balances must sum to zero no matter how many
//! connections a [`ChaosSocket`](crate::socket::ChaosSocket) tears down
//! mid-protocol. Optional *waiter* connections park in `WAIT` for the
//! whole run, proving the pool multiplexes more server-side tasks than it
//! has workers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use zstm_util::XorShift64;

use crate::client::Client;
use crate::server::{ServerConfig, ServerHandle};

/// Configuration of one server-workload run.
#[derive(Clone, Debug)]
pub struct ServerWorkloadConfig {
    /// The server under load (engine, workers, chaos).
    pub server: ServerConfig,
    /// Concurrent transfer connections.
    pub connections: usize,
    /// Extra connections parked in `WAIT` for the whole run. With
    /// `connections + waiters > server.workers` the pool is provably
    /// multiplexing: parked waits hold no worker.
    pub waiters: usize,
    /// Distinct keys (`acct-0` … `acct-{keys-1}`).
    pub keys: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// PRNG seed (client key choices; chaos has its own seed).
    pub seed: u64,
}

impl ServerWorkloadConfig {
    /// A short LSA run sized for tests and smoke benches.
    pub fn quick(connections: usize) -> Self {
        Self {
            server: ServerConfig::new("lsa"),
            connections,
            waiters: 0,
            keys: 32,
            duration: Duration::from_millis(150),
            seed: 0x5eed,
        }
    }
}

/// Result of one server-workload run.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Name of the engine that served.
    pub engine: &'static str,
    /// Transfer connections used.
    pub connections: usize,
    /// Pool workers that executed the transactions.
    pub workers: usize,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
    /// Committed `EXEC` transfer transactions (full request/reply round
    /// trips, so this is end-to-end server throughput).
    pub committed: u64,
    /// Connections the chaos decorator tore down (each one reconnected).
    pub reconnects: u64,
    /// Waiter connections that parked and were released.
    pub waiters_released: u64,
    /// Committed transfers per second — the RPS figure's y-axis.
    pub rps: f64,
    /// `true` iff the final audit summed every balance to zero.
    pub conserved: bool,
}

fn key_name(i: usize) -> Vec<u8> {
    format!("acct-{i}").into_bytes()
}

/// Runs the workload: spawns a server, drives it over real sockets,
/// audits conservation, shuts it down.
///
/// # Panics
///
/// Panics if the server cannot spawn, a fault-free connection cannot be
/// established, or the final audit round trip fails — harness errors, not
/// measured outcomes (chaos-torn connections are counted, not fatal).
pub fn run_server(config: &ServerWorkloadConfig) -> ServerReport {
    let handle = ServerHandle::spawn("127.0.0.1:0", &config.server).expect("spawn server");
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(config.connections + 1));
    let reconnects = Arc::new(AtomicU64::new(0));

    // Waiters park first so the whole measured window runs with more
    // server-side tasks than pool workers.
    let release_key = b"release".to_vec();
    let mut waiter_threads = Vec::with_capacity(config.waiters);
    for _ in 0..config.waiters {
        let mut client = Client::connect(addr).expect("waiter connect");
        waiter_threads.push(std::thread::spawn(move || {
            client.wait(b"release", b"go").is_ok()
        }));
    }

    let mut transfer_threads = Vec::with_capacity(config.connections);
    for c in 0..config.connections {
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let reconnects = Arc::clone(&reconnects);
        let config = config.clone();
        let mut rng = XorShift64::new(config.seed.wrapping_add(c as u64 * 6271));
        transfer_threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).ok();
            let mut committed = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let Some(connected) = client.as_mut() else {
                    // Chaos killed the link; reconnect and carry on.
                    reconnects.fetch_add(1, Ordering::Relaxed);
                    client = Client::connect(addr).ok();
                    continue;
                };
                let from = rng.next_range(config.keys as u64) as usize;
                let to = rng.next_range(config.keys as u64) as usize;
                if from == to {
                    continue;
                }
                let transfer = [
                    vec![b"ADD".to_vec(), key_name(from), b"-1".to_vec()],
                    vec![b"ADD".to_vec(), key_name(to), b"1".to_vec()],
                ];
                match connected.multi_exec(&transfer) {
                    Ok(_) => committed += 1,
                    Err(_) => client = None,
                }
            }
            committed
        }));
    }

    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed();

    let committed: u64 = transfer_threads
        .into_iter()
        .map(|t| t.join().expect("transfer client panicked"))
        .sum();

    // Out-of-band audit, straight against the engine: under hostile
    // chaos a multi-key client round trip has no realistic chance of
    // surviving, and the invariant is about the *store*, not the link.
    let conserved = handle.sum_keys(b"acct-") == Some(0);

    // Release the waiters, then shut down.
    let released = if config.waiters > 0 {
        set_with_retry(addr, &release_key, b"go");
        waiter_threads
            .into_iter()
            .map(|t| u64::from(t.join().expect("waiter panicked")))
            .sum()
    } else {
        0
    };

    let engine = handle.stm().name();
    handle.shutdown();

    let secs = elapsed.as_secs_f64();
    ServerReport {
        engine,
        connections: config.connections,
        workers: config.server.workers,
        elapsed,
        committed,
        reconnects: reconnects.load(Ordering::Relaxed),
        waiters_released: released,
        rps: committed as f64 / secs,
        conserved,
    }
}

/// Configuration of one overload run: closed-loop clients offering as
/// much load as they can against a server with tight [`Limits`], counting
/// how the excess is answered.
///
/// [`Limits`]: crate::server::Limits
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// The server under overload (set its `limits` tight — that is the
    /// point).
    pub server: ServerConfig,
    /// Closed-loop client connections (the offered-load axis: each tries
    /// transfers back-to-back, so more connections = more offered load).
    pub connections: usize,
    /// Distinct keys (`acct-0` … `acct-{keys-1}`).
    pub keys: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// PRNG seed.
    pub seed: u64,
}

impl OverloadConfig {
    /// A short run against an LSA server admitting at most `cap`
    /// concurrent transactions over one worker, offered `connections`
    /// clients' worth of load.
    pub fn tight(connections: usize, cap: usize) -> Self {
        let mut server = ServerConfig::new("lsa").with_workers(1);
        server.limits.max_inflight_tx = cap;
        Self {
            server,
            connections,
            keys: 16,
            duration: Duration::from_millis(150),
            seed: 0x10ad,
        }
    }
}

/// Result of one overload run. `offered` counts transfer attempts that
/// reached `EXEC` (or died trying); every attempt resolves into exactly
/// one of `committed`, `busy`, `timeouts`, or `errors`.
#[derive(Clone, Debug)]
pub struct OverloadReport {
    /// Name of the engine that served.
    pub engine: &'static str,
    /// Client connections offering load.
    pub connections: usize,
    /// Transfer attempts started.
    pub offered: u64,
    /// Attempts whose `EXEC` committed.
    pub committed: u64,
    /// Attempts answered with a `BUSY …` frame (admission or retry
    /// budget), including connections shed at accept time.
    pub busy: u64,
    /// Attempts answered with a `TIMEOUT …` frame.
    pub timeouts: u64,
    /// Attempts lost to I/O errors (died mid-protocol; the client
    /// reconnects).
    pub errors: u64,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
    /// Committed transfers per second — the figure's goodput axis.
    pub goodput: f64,
    /// `(busy + timeouts) / offered` — the figure's shed-rate axis.
    pub shed_rate: f64,
    /// `true` iff the final audit summed every balance to zero: shed and
    /// timed-out transfers must leave no partial effects.
    pub conserved: bool,
}

/// One transfer attempt over an open connection: `MULTI`, two `ADD`s,
/// `EXEC`, classifying how the server answered.
enum Attempt {
    Committed,
    /// A `BUSY …` answer. `connection_dead` distinguishes the accept-time
    /// shed (a goodbye frame — the socket is gone) from an admission or
    /// retry-budget `BUSY` on `EXEC`, after which the connection stays
    /// usable and the client retries without paying a reconnect.
    Busy {
        connection_dead: bool,
    },
    TimedOut,
    /// Protocol-level refusal that is neither BUSY nor TIMEOUT (not
    /// expected in this workload, counted separately so it cannot be
    /// mistaken for shedding).
    OtherError,
    /// The connection died mid-attempt.
    Io,
}

fn offer_transfer(client: &mut Client, from: &[u8], to: &[u8]) -> Attempt {
    // MULTI and the queued ADDs never enter the engine, so a BUSY on a
    // queueing step can only be the accept-time shed goodbye — the
    // connection behind it is already gone. Any other error here is
    // unexpected.
    let steps: [&[&[u8]]; 3] = [&[b"MULTI"], &[b"ADD", from, b"-1"], &[b"ADD", to, b"1"]];
    for step in steps {
        match client.request(step) {
            Ok(crate::frame::Reply::Error(text)) if text.starts_with("BUSY") => {
                return Attempt::Busy {
                    connection_dead: true,
                }
            }
            Ok(crate::frame::Reply::Error(_)) => return Attempt::OtherError,
            Ok(_) => {}
            Err(_) => return Attempt::Io,
        }
    }
    // EXEC takes the queue whether or not the transaction is admitted
    // (PROTOCOL.md), so a BUSY or TIMEOUT answer here leaves the
    // connection out of MULTI mode and fully usable.
    match client.request(&[b"EXEC"]) {
        Ok(crate::frame::Reply::Multi(_)) => Attempt::Committed,
        Ok(crate::frame::Reply::Error(text)) if text.starts_with("BUSY") => Attempt::Busy {
            connection_dead: false,
        },
        Ok(crate::frame::Reply::Error(text)) if text.starts_with("TIMEOUT") => Attempt::TimedOut,
        Ok(_) => Attempt::OtherError,
        Err(_) => Attempt::Io,
    }
}

/// Runs the overload workload: spawns the (tightly limited) server,
/// offers `connections` closed loops of transfers, and reports how the
/// excess was shed. See [`OverloadReport`].
///
/// # Panics
///
/// Panics only on harness errors (the server cannot spawn); clients
/// losing their connections is a measured outcome, not a failure.
pub fn run_overload(config: &OverloadConfig) -> OverloadReport {
    let handle = ServerHandle::spawn("127.0.0.1:0", &config.server).expect("spawn server");
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(config.connections + 1));
    let mut clients = Vec::with_capacity(config.connections);
    for c in 0..config.connections {
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let config = config.clone();
        let mut rng = XorShift64::new(config.seed.wrapping_add(c as u64 * 9973));
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).ok();
            let mut busy = 0u64;
            let mut timeouts = 0u64;
            let mut committed = 0u64;
            let mut errors = 0u64;
            let mut offered = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let Some(connected) = client.as_mut() else {
                    client = Client::connect(addr).ok();
                    if client.is_none() {
                        // Accept queue saturated; brief pause, then retry.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    continue;
                };
                let from = rng.next_range(config.keys as u64) as usize;
                let to = rng.next_range(config.keys as u64) as usize;
                if from == to {
                    continue;
                }
                offered += 1;
                match offer_transfer(connected, &key_name(from), &key_name(to)) {
                    Attempt::Committed => committed += 1,
                    Attempt::Busy { connection_dead } => {
                        busy += 1;
                        if connection_dead {
                            client = None;
                        }
                    }
                    Attempt::TimedOut => timeouts += 1,
                    Attempt::OtherError => errors += 1,
                    Attempt::Io => {
                        errors += 1;
                        client = None;
                    }
                }
            }
            [offered, committed, busy, timeouts, errors]
        }));
    }

    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed();

    let mut totals = [0u64; 5];
    for thread in clients {
        let tallies = thread.join().expect("overload client panicked");
        for (total, tally) in totals.iter_mut().zip(tallies) {
            *total += tally;
        }
    }
    let [offered, committed, busy, timeouts, errors] = totals;

    let conserved = handle.sum_keys(b"acct-") == Some(0);
    let engine = handle.stm().name();
    handle.shutdown();

    OverloadReport {
        engine,
        connections: config.connections,
        offered,
        committed,
        busy,
        timeouts,
        errors,
        elapsed,
        goodput: committed as f64 / elapsed.as_secs_f64(),
        shed_rate: if offered == 0 {
            0.0
        } else {
            (busy + timeouts) as f64 / offered as f64
        },
        conserved,
    }
}

fn set_with_retry(addr: std::net::SocketAddr, key: &[u8], value: &[u8]) {
    for _ in 0..100 {
        if let Ok(mut client) = Client::connect(addr) {
            if client.set(key, value).is_ok() {
                return;
            }
        }
    }
    panic!("could not SET through the chaos decorator in 100 attempts");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_commits_and_conserves() {
        let report = run_server(&ServerWorkloadConfig::quick(3));
        assert!(report.committed > 0, "transfers must commit");
        assert!(report.conserved, "balances must sum to zero");
        assert_eq!(report.engine, "lsa");
    }

    #[test]
    fn overload_run_sheds_busy_but_conserves() {
        // 8 closed loops against a 1-transaction admission cap: plenty of
        // attempts must be refused BUSY, some must commit, and shed
        // attempts must leave no partial transfers behind.
        let report = run_overload(&OverloadConfig::tight(8, 1));
        assert!(report.committed > 0, "the admitted trickle must commit");
        assert!(report.busy > 0, "8x load over cap 1 must shed");
        assert!(report.conserved, "shedding must not break conservation");
        assert_eq!(
            report.offered,
            report.committed + report.busy + report.timeouts + report.errors,
            "every attempt resolves exactly once"
        );
    }

    #[test]
    fn waiters_park_beyond_the_pool_width() {
        let mut config = ServerWorkloadConfig::quick(2);
        // 2 workers, 2 transfer connections + 3 parked waiters: more
        // server-side tasks than workers for the whole run.
        config.waiters = 3;
        let report = run_server(&config);
        assert!(
            report.committed > 0,
            "parked waits must not starve the pool"
        );
        assert_eq!(report.waiters_released, 3, "shutdown must not eat waiters");
        assert!(report.conserved);
    }
}
