//! The server workload: concurrent TCP clients hammering `MULTI`…`EXEC`
//! transfers, with a conservation audit — the driver behind the
//! `repro_figures server` RPS figure and the chaos integration tests.
//!
//! Every transfer is one atomic transaction, `MULTI [ADD from -1; ADD to
//! +1] EXEC`, over a zero-initialized key space, so the audit invariant is
//! the bank workload's: the balances must sum to zero no matter how many
//! connections a [`ChaosSocket`](crate::socket::ChaosSocket) tears down
//! mid-protocol. Optional *waiter* connections park in `WAIT` for the
//! whole run, proving the pool multiplexes more server-side tasks than it
//! has workers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use zstm_util::XorShift64;

use crate::client::Client;
use crate::server::{ServerConfig, ServerHandle};

/// Configuration of one server-workload run.
#[derive(Clone, Debug)]
pub struct ServerWorkloadConfig {
    /// The server under load (engine, workers, chaos).
    pub server: ServerConfig,
    /// Concurrent transfer connections.
    pub connections: usize,
    /// Extra connections parked in `WAIT` for the whole run. With
    /// `connections + waiters > server.workers` the pool is provably
    /// multiplexing: parked waits hold no worker.
    pub waiters: usize,
    /// Distinct keys (`acct-0` … `acct-{keys-1}`).
    pub keys: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// PRNG seed (client key choices; chaos has its own seed).
    pub seed: u64,
}

impl ServerWorkloadConfig {
    /// A short LSA run sized for tests and smoke benches.
    pub fn quick(connections: usize) -> Self {
        Self {
            server: ServerConfig::new("lsa"),
            connections,
            waiters: 0,
            keys: 32,
            duration: Duration::from_millis(150),
            seed: 0x5eed,
        }
    }
}

/// Result of one server-workload run.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Name of the engine that served.
    pub engine: &'static str,
    /// Transfer connections used.
    pub connections: usize,
    /// Pool workers that executed the transactions.
    pub workers: usize,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
    /// Committed `EXEC` transfer transactions (full request/reply round
    /// trips, so this is end-to-end server throughput).
    pub committed: u64,
    /// Connections the chaos decorator tore down (each one reconnected).
    pub reconnects: u64,
    /// Waiter connections that parked and were released.
    pub waiters_released: u64,
    /// Committed transfers per second — the RPS figure's y-axis.
    pub rps: f64,
    /// `true` iff the final audit summed every balance to zero.
    pub conserved: bool,
}

fn key_name(i: usize) -> Vec<u8> {
    format!("acct-{i}").into_bytes()
}

/// Runs the workload: spawns a server, drives it over real sockets,
/// audits conservation, shuts it down.
///
/// # Panics
///
/// Panics if the server cannot spawn, a fault-free connection cannot be
/// established, or the final audit round trip fails — harness errors, not
/// measured outcomes (chaos-torn connections are counted, not fatal).
pub fn run_server(config: &ServerWorkloadConfig) -> ServerReport {
    let handle = ServerHandle::spawn("127.0.0.1:0", &config.server).expect("spawn server");
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(config.connections + 1));
    let reconnects = Arc::new(AtomicU64::new(0));

    // Waiters park first so the whole measured window runs with more
    // server-side tasks than pool workers.
    let release_key = b"release".to_vec();
    let mut waiter_threads = Vec::with_capacity(config.waiters);
    for _ in 0..config.waiters {
        let mut client = Client::connect(addr).expect("waiter connect");
        waiter_threads.push(std::thread::spawn(move || {
            client.wait(b"release", b"go").is_ok()
        }));
    }

    let mut transfer_threads = Vec::with_capacity(config.connections);
    for c in 0..config.connections {
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let reconnects = Arc::clone(&reconnects);
        let config = config.clone();
        let mut rng = XorShift64::new(config.seed.wrapping_add(c as u64 * 6271));
        transfer_threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).ok();
            let mut committed = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let Some(connected) = client.as_mut() else {
                    // Chaos killed the link; reconnect and carry on.
                    reconnects.fetch_add(1, Ordering::Relaxed);
                    client = Client::connect(addr).ok();
                    continue;
                };
                let from = rng.next_range(config.keys as u64) as usize;
                let to = rng.next_range(config.keys as u64) as usize;
                if from == to {
                    continue;
                }
                let transfer = [
                    vec![b"ADD".to_vec(), key_name(from), b"-1".to_vec()],
                    vec![b"ADD".to_vec(), key_name(to), b"1".to_vec()],
                ];
                match connected.multi_exec(&transfer) {
                    Ok(_) => committed += 1,
                    Err(_) => client = None,
                }
            }
            committed
        }));
    }

    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed();

    let committed: u64 = transfer_threads
        .into_iter()
        .map(|t| t.join().expect("transfer client panicked"))
        .sum();

    // Out-of-band audit, straight against the engine: under hostile
    // chaos a multi-key client round trip has no realistic chance of
    // surviving, and the invariant is about the *store*, not the link.
    let conserved = handle.sum_keys(b"acct-") == Some(0);

    // Release the waiters, then shut down.
    let released = if config.waiters > 0 {
        set_with_retry(addr, &release_key, b"go");
        waiter_threads
            .into_iter()
            .map(|t| u64::from(t.join().expect("waiter panicked")))
            .sum()
    } else {
        0
    };

    let engine = handle.stm().name();
    handle.shutdown();

    let secs = elapsed.as_secs_f64();
    ServerReport {
        engine,
        connections: config.connections,
        workers: config.server.workers,
        elapsed,
        committed,
        reconnects: reconnects.load(Ordering::Relaxed),
        waiters_released: released,
        rps: committed as f64 / secs,
        conserved,
    }
}

fn set_with_retry(addr: std::net::SocketAddr, key: &[u8], value: &[u8]) {
    for _ in 0..100 {
        if let Ok(mut client) = Client::connect(addr) {
            if client.set(key, value).is_ok() {
                return;
            }
        }
    }
    panic!("could not SET through the chaos decorator in 100 attempts");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_commits_and_conserves() {
        let report = run_server(&ServerWorkloadConfig::quick(3));
        assert!(report.committed > 0, "transfers must commit");
        assert!(report.conserved, "balances must sum to zero");
        assert_eq!(report.engine, "lsa");
    }

    #[test]
    fn waiters_park_beyond_the_pool_width() {
        let mut config = ServerWorkloadConfig::quick(2);
        // 2 workers, 2 transfer connections + 3 parked waiters: more
        // server-side tasks than workers for the whole run.
        config.waiters = 3;
        let report = run_server(&config);
        assert!(
            report.committed > 0,
            "parked waits must not starve the pool"
        );
        assert_eq!(report.waiters_released, 3, "shutdown must not eat waiters");
        assert!(report.conserved);
    }
}
