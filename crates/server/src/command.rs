//! Command parsing and the compilation of commands into one atomic
//! transaction body.
//!
//! A connection's data commands — alone or queued under `MULTI` — are
//! compiled into a *plan*: the keys are resolved against the key
//! directory **before** the transaction starts (creating variables for
//! write-ish commands, see PROTOCOL.md § keys), and the plan then runs as
//! a single [`DynTx`] closure. The closure is re-runnable (transaction
//! bodies execute once per attempt), so it rebuilds its reply vector from
//! scratch on every attempt.

use std::sync::Arc;

use zstm_api::{DynStm, DynTx, DynVar};
use zstm_core::Abort;
use zstm_util::sync::Mutex;

use crate::frame::Reply;

/// Maximum queued commands per `MULTI` body.
pub const MAX_MULTI: usize = 1 << 10;

/// `EXEC` bodies touching more keys than this run as
/// [`TxKind::Long`](zstm_core::TxKind::Long) — the paper's long-
/// transaction shape (Compute-Total-style multi-key work), which Z-STM
/// executes in zones and LSA without read-set revalidation.
pub const LONG_TX_THRESHOLD: usize = 4;

/// One data command, owned (so `MULTI` can queue it after its frame's
/// buffer is gone).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `GET key` — read; nil if the key does not exist.
    Get(Vec<u8>),
    /// `SET key value` — create-or-overwrite.
    Set(Vec<u8>, Vec<u8>),
    /// `CAS key expected new` — write `new` iff the current value equals
    /// `expected`; replies `:1` (swapped) or `:0` (mismatch).
    Cas(Vec<u8>, Vec<u8>, Vec<u8>),
    /// `ADD key delta` — interpret the value as a little-endian `i64`
    /// (missing or empty = 0), add `delta`, write back; replies the new
    /// value.
    Add(Vec<u8>, i64),
}

impl Command {
    /// The key this command touches.
    pub fn key(&self) -> &[u8] {
        match self {
            Command::Get(k) | Command::Set(k, _) | Command::Cas(k, _, _) | Command::Add(k, _) => k,
        }
    }

    /// Whether the command may write (and therefore auto-creates its
    /// key).
    pub fn creates_key(&self) -> bool {
        !matches!(self, Command::Get(_))
    }

    /// Parses a data command from request arguments; `Err` carries the
    /// protocol error reply. Non-data commands (`PING`, `MULTI`, ...)
    /// return `Ok(None)`.
    pub fn parse(args: &[&[u8]]) -> Result<Option<Command>, Reply> {
        let arity = |n: usize| -> Result<(), Reply> {
            if args.len() == n + 1 {
                Ok(())
            } else {
                Err(Reply::error(&format!(
                    "ERR wrong number of arguments ({} given)",
                    args.len() - 1
                )))
            }
        };
        match args[0] {
            b"GET" => {
                arity(1)?;
                Ok(Some(Command::Get(args[1].to_vec())))
            }
            b"SET" => {
                arity(2)?;
                Ok(Some(Command::Set(args[1].to_vec(), args[2].to_vec())))
            }
            b"CAS" => {
                arity(3)?;
                Ok(Some(Command::Cas(
                    args[1].to_vec(),
                    args[2].to_vec(),
                    args[3].to_vec(),
                )))
            }
            b"ADD" => {
                arity(2)?;
                let delta = std::str::from_utf8(args[2])
                    .ok()
                    .and_then(|s| s.parse::<i64>().ok())
                    .ok_or_else(|| Reply::error("ERR delta is not an ASCII i64"))?;
                Ok(Some(Command::Add(args[1].to_vec(), delta)))
            }
            _ => Ok(None),
        }
    }
}

/// Decodes a stored value as the `ADD` integer representation: empty is
/// zero, eight little-endian bytes are the value, anything else is a type
/// error.
pub fn decode_i64(bytes: &[u8]) -> Option<i64> {
    match bytes.len() {
        0 => Some(0),
        8 => Some(i64::from_le_bytes(bytes.try_into().expect("len checked"))),
        _ => None,
    }
}

/// Encodes the `ADD` integer representation (the inverse of
/// [`decode_i64`]'s eight-byte arm).
pub fn encode_i64(value: i64) -> Vec<u8> {
    value.to_le_bytes().to_vec()
}

/// One command with its key resolved: `None` means the key did not exist
/// and the command never creates it (a `GET` on a missing key).
pub struct Planned {
    /// The command to run.
    pub command: Command,
    /// The resolved variable, if the key exists (or was just created).
    pub var: Option<DynVar>,
}

/// Compiles a plan into a re-runnable transaction body writing its
/// replies (one per command, in order) into `out`.
///
/// The body clears `out` at the start of every attempt, so an aborted
/// attempt's partial replies never leak into the committed result.
pub fn compile(
    plan: Vec<Planned>,
    out: Arc<Mutex<Vec<Reply>>>,
) -> impl FnMut(&mut dyn DynTx) -> Result<(), Abort> + Send + 'static {
    move |tx| {
        let mut replies = Vec::with_capacity(plan.len());
        for planned in &plan {
            let reply = match (&planned.command, &planned.var) {
                (Command::Get(_), None) => Reply::Nil,
                (Command::Get(_), Some(var)) => Reply::Value(tx.read_bytes(var)?),
                (Command::Set(_, value), Some(var)) => {
                    tx.write_bytes(var, value.clone())?;
                    Reply::status("OK")
                }
                (Command::Cas(_, expected, new), Some(var)) => {
                    if tx.read_bytes(var)? == *expected {
                        tx.write_bytes(var, new.clone())?;
                        Reply::Int(1)
                    } else {
                        Reply::Int(0)
                    }
                }
                (Command::Add(_, delta), Some(var)) => match decode_i64(&tx.read_bytes(var)?) {
                    Some(current) => {
                        let new = current.wrapping_add(*delta);
                        tx.write_bytes(var, encode_i64(new))?;
                        Reply::Int(new)
                    }
                    None => Reply::error("ERR value is not an integer"),
                },
                // Write-ish commands always resolve a var (they create
                // missing keys), so these arms are unreachable by
                // construction in `resolve`.
                (_, None) => Reply::error("ERR internal: unresolved key"),
            };
            replies.push(reply);
        }
        *out.lock() = replies;
        Ok(())
    }
}

/// Resolves every command's key against the directory, creating variables
/// for commands that may write (PROTOCOL.md § keys: keys spring into
/// existence holding the empty value).
pub fn resolve(
    stm: &Arc<dyn DynStm>,
    directory: &Mutex<std::collections::HashMap<Vec<u8>, DynVar>>,
    commands: Vec<Command>,
) -> Vec<Planned> {
    let mut directory = directory.lock();
    commands
        .into_iter()
        .map(|command| {
            let var = if command.creates_key() {
                Some(
                    directory
                        .entry(command.key().to_vec())
                        .or_insert_with(|| stm.new_bytes(Vec::new()))
                        .clone(),
                )
            } else {
                directory.get(command.key()).cloned()
            };
            Planned { command, var }
        })
        .collect()
}
