//! The `zstm-server` binary: serve the wire protocol (PROTOCOL.md) from
//! a runtime-selected engine.
//!
//! ```text
//! zstm-server [--addr HOST:PORT] [--engine NAME] [--certified]
//!             [--workers N] [--chaos SEED] [--chaos-delay-ms N]
//!             [--max-conns N] [--max-inflight N] [--idle-timeout-ms N]
//!             [--write-timeout-ms N] [--request-deadline-ms N]
//!             [--retry-budget N]
//! ```
//!
//! The limit flags map one-to-one onto
//! [`Limits`](zstm_server::server::Limits); unset means unlimited.
//! `--retry-budget` also enables exponential sleep backoff (1ms base,
//! 50ms cap) between a transaction's attempts.
//!
//! Prints `listening on <addr> (engine=<name>, workers=<n>)` once bound —
//! scripted clients (and the CI end-to-end job) parse the address from
//! that line — then serves until killed.

use std::time::Duration;

use zstm_server::registry::ENGINE_NAMES;
use zstm_server::server::{ServerConfig, ServerHandle};
use zstm_server::socket::ChaosConfig;

fn main() {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut config = ServerConfig::new("lsa");
    let mut chaos: Option<ChaosConfig> = None;
    let mut delay_ms = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--engine" => config.engine = value("--engine"),
            "--certified" => config.certified = true,
            "--workers" => config.workers = value("--workers").parse().expect("--workers: usize"),
            "--chaos" => {
                chaos = Some(ChaosConfig::hostile(
                    value("--chaos").parse().expect("--chaos: u64 seed"),
                ))
            }
            "--chaos-delay-ms" => {
                delay_ms = value("--chaos-delay-ms")
                    .parse()
                    .expect("--chaos-delay-ms: u64")
            }
            "--max-conns" => {
                config.limits.max_connections =
                    value("--max-conns").parse().expect("--max-conns: usize")
            }
            "--max-inflight" => {
                config.limits.max_inflight_tx = value("--max-inflight")
                    .parse()
                    .expect("--max-inflight: usize")
            }
            "--idle-timeout-ms" => {
                config.limits.read_timeout = Some(Duration::from_millis(
                    value("--idle-timeout-ms")
                        .parse()
                        .expect("--idle-timeout-ms: u64"),
                ))
            }
            "--write-timeout-ms" => {
                config.limits.write_timeout = Some(Duration::from_millis(
                    value("--write-timeout-ms")
                        .parse()
                        .expect("--write-timeout-ms: u64"),
                ))
            }
            "--request-deadline-ms" => {
                config.limits.request_deadline = Some(Duration::from_millis(
                    value("--request-deadline-ms")
                        .parse()
                        .expect("--request-deadline-ms: u64"),
                ))
            }
            "--retry-budget" => {
                config.limits.retry_budget = zstm_core::RetryPolicy::default()
                    .with_max_attempts(
                        value("--retry-budget")
                            .parse()
                            .expect("--retry-budget: u64"),
                    )
                    .with_exponential_sleep(Duration::from_millis(1), Duration::from_millis(50))
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: zstm-server [--addr HOST:PORT] [--engine {}] [--certified] \
                     [--workers N] [--chaos SEED] [--chaos-delay-ms N] [--max-conns N] \
                     [--max-inflight N] [--idle-timeout-ms N] [--write-timeout-ms N] \
                     [--request-deadline-ms N] [--retry-budget N]",
                    ENGINE_NAMES.join("|")
                );
                std::process::exit(2);
            }
        }
    }
    if delay_ms > 0 {
        let mut c = chaos.unwrap_or_else(|| ChaosConfig::quiet(0));
        c.read_delay = Duration::from_millis(delay_ms);
        chaos = Some(c);
    }
    if let Some(chaos) = chaos {
        config = config.with_chaos(chaos);
    }

    let handle = match ServerHandle::spawn(&addr, &config) {
        Ok(handle) => handle,
        Err(error) => {
            eprintln!("cannot serve on {addr}: {error}");
            std::process::exit(1);
        }
    };
    println!(
        "listening on {} (engine={}, workers={})",
        handle.addr(),
        handle.stm().name(),
        config.workers
    );
    // No signal handling offline: serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
