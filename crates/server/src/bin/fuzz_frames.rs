//! Byte-level frame-codec fuzzer (CI `fuzz-smoke` entry point).
//!
//! Round-trips generated frames, mutates them, and feeds garbage to both
//! parsers (see [`zstm_server::fuzz`]); writes any property violation as
//! a hex-dump counterexample and exits non-zero.
//!
//! ```text
//! fuzz_frames [--seconds N] [--iterations N] [--seed N] [--out DIR]
//! ```

use std::path::PathBuf;
use std::time::Duration;

use zstm_server::fuzz::{fuzz_frames, FuzzOptions};

fn main() {
    let mut options = FuzzOptions::default();
    let mut out_dir = PathBuf::from("target/fuzz-frames");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--seconds" => {
                options.time_budget =
                    Duration::from_secs(value("--seconds").parse().expect("--seconds: u64"))
            }
            "--iterations" => {
                options.max_iterations = value("--iterations").parse().expect("--iterations: usize")
            }
            "--seed" => options.seed = value("--seed").parse().expect("--seed: u64"),
            "--out" => out_dir = PathBuf::from(value("--out")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: fuzz_frames [--seconds N] [--iterations N] [--seed N] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }

    println!(
        "fuzzing frames: seed={:#x} budget={:?} max_iterations={}",
        options.seed,
        options.time_budget,
        if options.max_iterations == usize::MAX {
            "unbounded".to_string()
        } else {
            options.max_iterations.to_string()
        }
    );
    let report = fuzz_frames(&options);
    println!(
        "ran {} iterations: {} complete parses, {} rejections",
        report.iterations, report.complete, report.rejected
    );

    if report.counterexamples.is_empty() {
        println!("no violations found");
        return;
    }

    std::fs::create_dir_all(&out_dir).expect("create --out directory");
    for (i, cex) in report.counterexamples.iter().enumerate() {
        let file = out_dir.join(format!("frame_{i}.txt"));
        let body = format!(
            "property: {}\ninput (hex): {}\n",
            cex.property, cex.input_hex
        );
        std::fs::write(&file, body).expect("write counterexample");
        eprintln!(
            "VIOLATION: {} (input written to {})",
            cex.property,
            file.display()
        );
    }
    std::process::exit(1);
}
