//! STM as a server: a TCP wire protocol over the erased [`DynStm`]
//! facade.
//!
//! **`PROTOCOL.md` at the repository root is the normative wire
//! specification**; this crate implements it. The shape in one paragraph:
//! clients speak length-prefixed frames carrying argument-vector requests
//! (`GET`/`SET`/`CAS`/`ADD`, `MULTI`…`EXEC` for multi-key atomic
//! transactions, `WAIT` for blocking reads) and receive tagged replies.
//! Every data command — and every `EXEC` body as a whole — executes as
//! **one transaction** on a runtime-selected engine (any of the five
//! STMs, optionally wrapped in the SSI certifier), so the isolation the
//! client observes is exactly the isolation the engine provides.
//!
//! The moving parts:
//!
//! * [`frame`] — the zero-copy codec (also the byte-fuzz target);
//! * [`socket`] — the [`Socket`](socket::Socket) transport trait and the
//!   [`ChaosSocket`](socket::ChaosSocket) fault injector;
//! * [`registry`] — engine-name → [`DynStm`] selection;
//! * [`command`] — request → transaction-body compilation;
//! * [`server`] — accept loop, connection state machine, executor-pool
//!   transaction scheduling, clean shutdown;
//! * [`client`] — the blocking scripted client;
//! * [`workload`] — the RPS measurement harness behind
//!   `repro_figures server`.
//!
//! ```
//! use zstm_server::client::Client;
//! use zstm_server::server::{ServerConfig, ServerHandle};
//!
//! let server = ServerHandle::spawn("127.0.0.1:0", &ServerConfig::new("z")).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! client.set(b"alpha", b"1").unwrap();
//! // A MULTI body is one atomic transaction — both ADDs or neither.
//! let replies = client
//!     .multi_exec(&[
//!         vec![b"ADD".to_vec(), b"a".to_vec(), b"-5".to_vec()],
//!         vec![b"ADD".to_vec(), b"b".to_vec(), b"5".to_vec()],
//!     ])
//!     .unwrap();
//! assert_eq!(replies.len(), 2);
//! server.shutdown();
//! ```
//!
//! [`DynStm`]: zstm_api::DynStm

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod command;
pub mod frame;
pub mod fuzz;
pub mod registry;
pub mod server;
pub mod socket;
pub mod workload;
