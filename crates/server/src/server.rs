//! The server: accept loop, per-connection protocol state machine, and
//! the transaction-execution path over the shared executor pool.
//!
//! Architecture (see ARCHITECTURE.md § network front end):
//!
//! * an **acceptor** thread owns the `TcpListener`;
//! * each connection gets a **reader thread** (std sockets have no
//!   reactor; DESIGN.md records this as a deliberate deviation from a
//!   `tokio` deployment) that parses frames and writes replies;
//! * every transaction — one data command, an `EXEC` body, a blocking
//!   `WAIT` — is spawned as a **future on the shared
//!   [`ThreadPool`]** via
//!   [`DynStm::atomically_async_dyn`], so the pool is the admission
//!   throttle: at most `workers` transactions execute at once, the rest
//!   queue, and a `WAIT` parked in retry holds **no** worker — thousands
//!   of connections can block on keys while two workers serve everyone
//!   else.
//!
//! Shutdown drains in one pass: a stop flag every `WAIT` body re-checks,
//! one [`DynStm::notify_retries`] to re-run parked bodies, then the pool
//! is taken down and the sockets shut.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use zstm_api::{DynStm, DynVar};
use zstm_core::TxKind;
use zstm_util::exec::ThreadPool;
use zstm_util::sync::Mutex;

use crate::command::{compile, resolve, Command, LONG_TX_THRESHOLD, MAX_MULTI};
use crate::frame::{parse_request, Parsed, Reply, Request};
use crate::registry::build_engine;
use crate::socket::{ChaosConfig, ChaosSocket, Socket};

/// Server configuration: which engine serves, how many pool workers
/// execute transactions, and optional fault injection.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Engine name (see [`crate::registry::ENGINE_NAMES`]).
    pub engine: String,
    /// Wrap the engine in the SSI certifier.
    pub certified: bool,
    /// Executor pool workers — the admission-control width: the maximum
    /// number of concurrently *executing* transactions.
    pub workers: usize,
    /// Inject faults into every accepted connection.
    pub chaos: Option<ChaosConfig>,
}

impl ServerConfig {
    /// LSA over two workers, no faults.
    pub fn new(engine: &str) -> Self {
        Self {
            engine: engine.to_string(),
            certified: false,
            workers: 2,
            chaos: None,
        }
    }

    /// Sets the pool-worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Wraps every accepted connection in a [`ChaosSocket`].
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Selects the certified variant of the engine.
    pub fn with_certified(mut self, certified: bool) -> Self {
        self.certified = certified;
        self
    }
}

/// State shared by the acceptor, every connection thread, and the handle.
struct Shared {
    stm: Arc<dyn DynStm>,
    /// `None` once shutdown has taken the pool down; connections then
    /// refuse transactions and close.
    pool: Mutex<Option<ThreadPool>>,
    directory: Mutex<HashMap<Vec<u8>, DynVar>>,
    stopping: AtomicBool,
    /// Live-connection raw handles, kept so shutdown can unblock readers.
    conns: Mutex<Vec<TcpStream>>,
    conn_seq: AtomicU64,
}

/// Why a connection stopped being served (internal control flow).
enum Close {
    /// Peer went away or a protocol error was already reported.
    Silent,
    /// Send this reply, then close.
    After(Reply),
}

/// Per-connection protocol state.
struct ConnState {
    /// `Some(queue)` while inside a `MULTI` block.
    multi: Option<Vec<Command>>,
}

/// A running server bound to a local address.
///
/// Dropping the handle shuts the server down (idempotent with an explicit
/// [`shutdown`](ServerHandle::shutdown)).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// Builds the engine and starts accepting on `addr` (use
    /// `127.0.0.1:0` for an ephemeral test port).
    ///
    /// # Errors
    ///
    /// Fails if the engine name is unknown or the listener cannot bind.
    pub fn spawn(addr: &str, config: &ServerConfig) -> io::Result<ServerHandle> {
        // Workers lease engine contexts while polling transaction
        // futures; +2 slack covers the handle's own maintenance work
        // (nothing else runs transactions).
        let stm = build_engine(&config.engine, config.workers + 2, config.certified).ok_or_else(
            || {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown engine '{}'", config.engine),
                )
            },
        )?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stm,
            pool: Mutex::new(Some(ThreadPool::new(config.workers))),
            directory: Mutex::new(HashMap::new()),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            conn_seq: AtomicU64::new(0),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            let chaos = config.chaos.clone();
            std::thread::Builder::new()
                .name("zstm-server-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conn_threads, chaos))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            conn_threads,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine serving this handle (for out-of-band audits in tests).
    pub fn stm(&self) -> Arc<dyn DynStm> {
        Arc::clone(&self.shared.stm)
    }

    /// Atomically sums every key starting with `prefix` under `ADD`'s
    /// integer representation (§3/§4.4 of PROTOCOL.md), in one long
    /// transaction straight against the engine — the out-of-band
    /// conservation audit for chaos runs, where no client connection can
    /// be trusted to survive a 32-key round trip. `None` if any matching
    /// value is not an integer.
    pub fn sum_keys(&self, prefix: &[u8]) -> Option<i64> {
        let vars: Vec<DynVar> = {
            let directory = self.shared.directory.lock();
            directory
                .iter()
                .filter(|(key, _)| key.starts_with(prefix))
                .map(|(_, var)| var.clone())
                .collect()
        };
        let stm = Arc::clone(&self.shared.stm);
        zstm_util::exec::block_on(stm.atomically_async(TxKind::Long, move |tx| {
            let mut sum = 0i64;
            for var in &vars {
                match crate::command::decode_i64(&tx.read_bytes(var)?) {
                    Some(value) => sum += value,
                    None => return Ok(None),
                }
            }
            Ok(Some(sum))
        }))
    }

    /// Stops accepting, wakes parked `WAIT`s, drains in-flight
    /// transactions, closes every connection and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Parked WAIT bodies re-run, observe the stop flag and resolve.
        self.shared.stm.notify_retries();
        // Taking the pool down drains queued transactions and joins the
        // workers; nothing can stay parked after the notify above.
        drop(self.shared.pool.lock().take());
        // Unblock the acceptor (it re-checks the flag per accept).
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Unblock connection readers, then join them.
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for thread in self.conn_threads.lock().drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_threads: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    chaos: Option<ChaosConfig>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.stopping.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        stream.set_nodelay(true).ok();
        if let Ok(raw) = stream.try_clone() {
            shared.conns.lock().push(raw);
        }
        let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        let socket: Box<dyn Socket> = match &chaos {
            Some(config) => Box::new(ChaosSocket::new(stream, config.clone(), id)),
            None => Box::new(stream),
        };
        let shared = Arc::clone(shared);
        let thread = std::thread::Builder::new()
            .name(format!("zstm-server-conn-{id}"))
            .spawn(move || serve_connection(&shared, socket))
            .expect("spawn connection thread");
        conn_threads.lock().push(thread);
    }
}

/// Reads frames off `socket`, dispatches them, writes replies — the whole
/// life of one connection.
fn serve_connection(shared: &Arc<Shared>, mut socket: Box<dyn Socket>) {
    let mut state = ConnState { multi: None };
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Drain every complete frame already buffered (pipelining).
        loop {
            let (outcome, consumed) = match parse_request(&buf) {
                Ok(Parsed::Complete(request, consumed)) => {
                    (dispatch(shared, &mut state, &request), consumed)
                }
                Ok(Parsed::Incomplete) => break,
                Err(error) => {
                    // Framing errors are unrecoverable: report and drop.
                    let reply = Reply::error(&format!("ERR protocol: {error}"));
                    let _ = socket.write_all(&reply.encode_frame());
                    break 'conn;
                }
            };
            buf.drain(..consumed);
            match outcome {
                Ok(reply) => {
                    if socket.write_all(&reply.encode_frame()).is_err() {
                        break 'conn;
                    }
                }
                Err(Close::After(reply)) => {
                    let _ = socket.write_all(&reply.encode_frame());
                    break 'conn;
                }
                Err(Close::Silent) => break 'conn,
            }
        }
        match socket.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    socket.shutdown();
    // A connection that dies inside MULTI simply drops its queue here —
    // nothing was executed, so nothing needs rolling back (the property
    // the chaos tests pin down).
}

/// Handles one request; `Ok` is the reply, `Err` closes the connection.
fn dispatch(
    shared: &Arc<Shared>,
    state: &mut ConnState,
    request: &Request<'_>,
) -> Result<Reply, Close> {
    let name = request.args[0];
    // Control commands first.
    match name {
        b"PING" => return Ok(Reply::status("PONG")),
        b"ENGINE" => return Ok(Reply::Value(shared.stm.name().as_bytes().to_vec())),
        b"STATS" => {
            let stats = shared.stm.take_stats();
            return Ok(Reply::Value(
                format!(
                    "commits={} aborts={} certification_aborts={} waker_parks={}",
                    stats.total_commits(),
                    stats.total_aborts(),
                    stats.certification_aborts(),
                    stats.waker_parks(),
                )
                .into_bytes(),
            ));
        }
        b"QUIT" => return Err(Close::After(Reply::status("OK"))),
        b"MULTI" => {
            if state.multi.is_some() {
                return Ok(Reply::error("ERR MULTI inside MULTI"));
            }
            state.multi = Some(Vec::new());
            return Ok(Reply::status("OK"));
        }
        b"DISCARD" => {
            return Ok(if state.multi.take().is_some() {
                Reply::status("OK")
            } else {
                Reply::error("ERR DISCARD without MULTI")
            });
        }
        b"EXEC" => {
            let Some(queue) = state.multi.take() else {
                return Ok(Reply::error("ERR EXEC without MULTI"));
            };
            let kind = if queue.len() > LONG_TX_THRESHOLD {
                TxKind::Long
            } else {
                TxKind::Short
            };
            let plan = resolve(&shared.stm, &shared.directory, queue);
            let replies = run_transaction(shared, kind, plan)?;
            return Ok(Reply::Multi(replies));
        }
        b"WAIT" => {
            if state.multi.is_some() {
                return Ok(Reply::error("ERR WAIT inside MULTI"));
            }
            if request.args.len() != 3 {
                return Ok(Reply::error("ERR wrong number of arguments"));
            }
            return run_wait(shared, request.args[1], request.args[2]);
        }
        _ => {}
    }
    // Data commands.
    let command = match Command::parse(&request.args) {
        Ok(Some(command)) => command,
        Ok(None) => {
            return Ok(Reply::error(&format!(
                "ERR unknown command '{}'",
                String::from_utf8_lossy(name)
            )))
        }
        Err(reply) => return Ok(reply),
    };
    if let Some(queue) = state.multi.as_mut() {
        if queue.len() >= MAX_MULTI {
            state.multi = None;
            return Ok(Reply::error("ERR MULTI body too large"));
        }
        queue.push(command);
        return Ok(Reply::status("QUEUED"));
    }
    let plan = resolve(&shared.stm, &shared.directory, vec![command]);
    let mut replies = run_transaction(shared, TxKind::Short, plan)?;
    Ok(replies.pop().expect("one command, one reply"))
}

/// Runs a compiled plan as one atomic transaction on the shared pool and
/// waits for its replies.
fn run_transaction(
    shared: &Arc<Shared>,
    kind: TxKind,
    plan: Vec<crate::command::Planned>,
) -> Result<Vec<Reply>, Close> {
    let out = Arc::new(Mutex::new(Vec::new()));
    let body = compile(plan, Arc::clone(&out));
    let future = shared.stm.atomically_async_dyn(kind, Box::new(body));
    join_on_pool(shared, future)?;
    let replies = std::mem::take(&mut *out.lock());
    Ok(replies)
}

/// `WAIT key expected`: parks (via the retry/notifier protocol, as a
/// suspended future) until the key holds `expected`; a server shutdown
/// resolves the wait with an error instead of leaving the peer hanging.
fn run_wait(shared: &Arc<Shared>, key: &[u8], expected: &[u8]) -> Result<Reply, Close> {
    let plan = resolve(
        &shared.stm,
        &shared.directory,
        vec![Command::Get(key.to_vec())],
    );
    // WAIT creates the key (it must exist to park on); re-resolve as a
    // creating command.
    let var = match plan.into_iter().next().and_then(|p| p.var) {
        Some(var) => var,
        None => {
            let mut directory = shared.directory.lock();
            directory
                .entry(key.to_vec())
                .or_insert_with(|| shared.stm.new_bytes(Vec::new()))
                .clone()
        }
    };
    let expected = expected.to_vec();
    let stopping = Arc::new(AtomicBool::new(false));
    let observed_stop = Arc::clone(&stopping);
    let shared_flag = Arc::clone(shared);
    let body = move |tx: &mut dyn zstm_api::DynTx| -> Result<(), zstm_core::Abort> {
        // Re-checked on every attempt: shutdown's notify_retries re-runs
        // parked bodies, which then commit empty instead of re-parking.
        if shared_flag.stopping.load(Ordering::SeqCst) {
            observed_stop.store(true, Ordering::SeqCst);
            return Ok(());
        }
        if tx.read_bytes(&var)? == expected {
            Ok(())
        } else {
            Err(tx.retry())
        }
    };
    let future = shared
        .stm
        .atomically_async_dyn(TxKind::Short, Box::new(body));
    join_on_pool(shared, future)?;
    if stopping.load(Ordering::SeqCst) {
        Err(Close::After(Reply::error("ERR server shutting down")))
    } else {
        Ok(Reply::status("OK"))
    }
}

/// Spawns `future` on the shared pool and blocks this connection thread
/// until it resolves. The *worker* is released whenever the transaction
/// suspends; only this connection's reader waits.
fn join_on_pool(
    shared: &Arc<Shared>,
    future: std::pin::Pin<Box<dyn std::future::Future<Output = ()> + Send + 'static>>,
) -> Result<(), Close> {
    let handle = {
        let pool = shared.pool.lock();
        let Some(pool) = pool.as_ref() else {
            return Err(Close::After(Reply::error("ERR server shutting down")));
        };
        pool.spawn(future)
    };
    // join() re-throws if the pool was dropped mid-flight (shutdown) or
    // the body panicked; either way this connection is done.
    catch_unwind(AssertUnwindSafe(|| handle.join())).map_err(|_| Close::Silent)
}
