//! The server: accept loop, per-connection protocol state machine, and
//! the transaction-execution path over the shared executor pool.
//!
//! Architecture (see ARCHITECTURE.md § network front end):
//!
//! * an **acceptor** thread owns the `TcpListener`;
//! * each connection gets a **reader thread** (std sockets have no
//!   reactor; DESIGN.md records this as a deliberate deviation from a
//!   `tokio` deployment) that parses frames and writes replies;
//! * every transaction — one data command, an `EXEC` body, a blocking
//!   `WAIT` — is spawned as a **future on the shared
//!   [`ThreadPool`]** via
//!   [`DynStm::atomically_async_dyn`], so the pool is the admission
//!   throttle: at most `workers` transactions execute at once, the rest
//!   queue, and a `WAIT` parked in retry holds **no** worker — thousands
//!   of connections can block on keys while two workers serve everyone
//!   else.
//!
//! Shutdown drains in one pass: a stop flag every `WAIT` body re-checks,
//! one [`DynStm::notify_retries`] to re-run parked bodies, then the pool
//! is taken down and the sockets shut.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use zstm_api::{DynFuture, DynStm, DynVar};
use zstm_core::{RetryExhausted, RetryPolicy, TxKind};
use zstm_util::exec::ThreadPool;
use zstm_util::sync::Mutex;

use crate::command::{compile, resolve, Command, LONG_TX_THRESHOLD, MAX_MULTI};
use crate::frame::{parse_request, Parsed, Reply, Request};
use crate::registry::build_engine;
use crate::socket::{ChaosConfig, ChaosSocket, Socket};

/// Overload-protection knobs (see PROTOCOL.md § overload and
/// ARCHITECTURE.md § overload protection). The default is **no limits** —
/// every field wide open, preserving the PR 7 behavior — so every bound
/// is an explicit deployment decision.
///
/// The layers compose: `max_connections` sheds at accept time (a one-frame
/// `BUSY` goodbye), `max_inflight_tx` bounds the pending-work gauge
/// (queued plus executing plus parked transactions) and answers `BUSY`
/// past it, `read_timeout`/`write_timeout` bound each connection's I/O,
/// `request_deadline` bounds one transaction's wall-clock execution, and
/// `retry_budget` bounds its conflict retries.
#[derive(Clone, Debug)]
pub struct Limits {
    /// Maximum concurrently served connections; an accept past the cap is
    /// answered with a `BUSY` error frame and closed immediately.
    pub max_connections: usize,
    /// Maximum in-flight transactions (queued on the pool, executing, or
    /// parked in `WAIT`); past it, data commands and `EXEC` reply `BUSY`
    /// instead of queueing unboundedly.
    pub max_inflight_tx: usize,
    /// Per-connection idle/read timeout: a peer that sends nothing for
    /// this long is treated as dead and its connection closed (silently —
    /// a timed-out peer is not guaranteed to hear a goodbye).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout: the slow-consumer guard. A reply
    /// write blocked longer than this fails, closing the connection.
    pub write_timeout: Option<Duration>,
    /// Wall-clock deadline for one transaction's execution (a data
    /// command or an `EXEC` body — not `WAIT`, whose bound is its own
    /// deadline argument); past it the request is abandoned (nothing
    /// committed) and answered `TIMEOUT`.
    pub request_deadline: Option<Duration>,
    /// Retry budget for data commands and `EXEC`: a transaction whose
    /// attempts exhaust this policy is answered `BUSY` with its last
    /// abort reason instead of retrying forever. `WAIT` keeps the
    /// unbounded policy (its bound is the deadline argument).
    pub retry_budget: RetryPolicy,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_connections: usize::MAX,
            max_inflight_tx: usize::MAX,
            read_timeout: None,
            write_timeout: None,
            request_deadline: None,
            retry_budget: RetryPolicy::unbounded(),
        }
    }
}

/// Server configuration: which engine serves, how many pool workers
/// execute transactions, optional fault injection, and overload limits.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Engine name (see [`crate::registry::ENGINE_NAMES`]).
    pub engine: String,
    /// Wrap the engine in the SSI certifier.
    pub certified: bool,
    /// Executor pool workers — the admission-control width: the maximum
    /// number of concurrently *executing* transactions.
    pub workers: usize,
    /// Inject faults into every accepted connection.
    pub chaos: Option<ChaosConfig>,
    /// Overload protection (defaults to no limits).
    pub limits: Limits,
}

impl ServerConfig {
    /// LSA over two workers, no faults, no limits.
    pub fn new(engine: &str) -> Self {
        Self {
            engine: engine.to_string(),
            certified: false,
            workers: 2,
            chaos: None,
            limits: Limits::default(),
        }
    }

    /// Sets the pool-worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Wraps every accepted connection in a [`ChaosSocket`].
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Selects the certified variant of the engine.
    pub fn with_certified(mut self, certified: bool) -> Self {
        self.certified = certified;
        self
    }

    /// Sets the overload-protection limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }
}

/// Server-level overload counters, surfaced through `STATS`.
#[derive(Default)]
struct OverloadCounters {
    /// Connections shed at accept time (`max_connections`).
    conns_shed: AtomicU64,
    /// Transactions refused with `BUSY` at admission (`max_inflight_tx`).
    busy_rejections: AtomicU64,
    /// Requests and `WAIT`s that hit a deadline (`TIMEOUT` replies).
    timeouts: AtomicU64,
}

/// State shared by the acceptor, every connection thread, and the handle.
struct Shared {
    stm: Arc<dyn DynStm>,
    /// `None` once shutdown has taken the pool down; connections then
    /// refuse transactions and close.
    pool: Mutex<Option<ThreadPool>>,
    directory: Mutex<HashMap<Vec<u8>, DynVar>>,
    stopping: AtomicBool,
    /// Live-connection raw handles, kept so shutdown can unblock readers.
    conns: Mutex<Vec<TcpStream>>,
    conn_seq: AtomicU64,
    limits: Limits,
    /// The pending-work gauge: transactions admitted and not yet resolved
    /// (queued, executing, or parked). Bounded by
    /// [`Limits::max_inflight_tx`].
    inflight: AtomicUsize,
    /// Currently served connections (bounded by
    /// [`Limits::max_connections`]).
    live_conns: AtomicUsize,
    overload: OverloadCounters,
}

/// An admitted slot in the pending-work gauge; releases it on drop, so a
/// panicking or erroring path can never leak in-flight budget.
struct InflightGuard<'a>(&'a Shared);

impl<'a> InflightGuard<'a> {
    /// Claims a slot, or `None` when the gauge is at the cap. CAS loop:
    /// the gauge never overshoots, so a burst of admissions cannot
    /// collude past the limit.
    fn try_admit(shared: &'a Shared) -> Option<Self> {
        let mut current = shared.inflight.load(Ordering::Relaxed);
        loop {
            if current >= shared.limits.max_inflight_tx {
                return None;
            }
            match shared.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Self(shared)),
                Err(seen) => current = seen,
            }
        }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Why a connection stopped being served (internal control flow).
enum Close {
    /// Peer went away or a protocol error was already reported.
    Silent,
    /// Send this reply, then close.
    After(Reply),
}

/// Per-connection protocol state.
struct ConnState {
    /// `Some(queue)` while inside a `MULTI` block.
    multi: Option<Vec<Command>>,
}

/// A running server bound to a local address.
///
/// Dropping the handle shuts the server down (idempotent with an explicit
/// [`shutdown`](ServerHandle::shutdown)).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// Builds the engine and starts accepting on `addr` (use
    /// `127.0.0.1:0` for an ephemeral test port).
    ///
    /// # Errors
    ///
    /// Fails if the engine name is unknown or the listener cannot bind.
    pub fn spawn(addr: &str, config: &ServerConfig) -> io::Result<ServerHandle> {
        // Workers lease engine contexts while polling transaction
        // futures; +2 slack covers the handle's own maintenance work
        // (nothing else runs transactions).
        let stm = build_engine(&config.engine, config.workers + 2, config.certified).ok_or_else(
            || {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown engine '{}'", config.engine),
                )
            },
        )?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stm,
            pool: Mutex::new(Some(ThreadPool::new(config.workers))),
            directory: Mutex::new(HashMap::new()),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            conn_seq: AtomicU64::new(0),
            limits: config.limits.clone(),
            inflight: AtomicUsize::new(0),
            live_conns: AtomicUsize::new(0),
            overload: OverloadCounters::default(),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            let chaos = config.chaos.clone();
            std::thread::Builder::new()
                .name("zstm-server-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conn_threads, chaos))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            conn_threads,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine serving this handle (for out-of-band audits in tests).
    pub fn stm(&self) -> Arc<dyn DynStm> {
        Arc::clone(&self.shared.stm)
    }

    /// Atomically sums every key starting with `prefix` under `ADD`'s
    /// integer representation (§3/§4.4 of PROTOCOL.md), in one long
    /// transaction straight against the engine — the out-of-band
    /// conservation audit for chaos runs, where no client connection can
    /// be trusted to survive a 32-key round trip. `None` if any matching
    /// value is not an integer.
    pub fn sum_keys(&self, prefix: &[u8]) -> Option<i64> {
        let vars: Vec<DynVar> = {
            let directory = self.shared.directory.lock();
            directory
                .iter()
                .filter(|(key, _)| key.starts_with(prefix))
                .map(|(_, var)| var.clone())
                .collect()
        };
        let stm = Arc::clone(&self.shared.stm);
        zstm_util::exec::block_on(stm.atomically_async(TxKind::Long, move |tx| {
            let mut sum = 0i64;
            for var in &vars {
                match crate::command::decode_i64(&tx.read_bytes(var)?) {
                    Some(value) => sum += value,
                    None => return Ok(None),
                }
            }
            Ok(Some(sum))
        }))
    }

    /// Stops accepting, wakes parked `WAIT`s, drains in-flight
    /// transactions, closes every connection and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Parked WAIT bodies re-run, observe the stop flag and resolve.
        self.shared.stm.notify_retries();
        // Taking the pool down drains queued transactions and joins the
        // workers; nothing can stay parked after the notify above.
        drop(self.shared.pool.lock().take());
        // Unblock the acceptor (it re-checks the flag per accept).
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Unblock connection readers, then join them.
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for thread in self.conn_threads.lock().drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Decrements the live-connection gauge when a connection finishes, no
/// matter how its thread exits.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.live_conns.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Longest pause between accept attempts after persistent accept errors
/// (EMFILE and friends); transient blips retry immediately.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(100);

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_threads: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    chaos: Option<ChaosConfig>,
) {
    let mut backoff = Duration::from_millis(1);
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_millis(1);
                stream
            }
            Err(error) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                match error.kind() {
                    // Per-connection blips: the *next* connection is fine,
                    // retry immediately.
                    io::ErrorKind::Interrupted
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::WouldBlock => {}
                    // Resource exhaustion (EMFILE/ENFILE/ENOMEM...): the
                    // next accept will fail the same way until something
                    // frees up. Back off so the loop does not spin a core
                    // while starved, then try again — exhaustion is load,
                    // not shutdown.
                    _ => {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(ACCEPT_BACKOFF_CAP);
                    }
                }
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        // Connection-cap shedding: a peer past the cap gets one BUSY
        // frame and an immediate close, never a thread or a conns entry.
        // The gauge increments only on admission and decrements via
        // ConnGuard when the serving thread exits.
        let admitted = {
            let mut current = shared.live_conns.load(Ordering::Relaxed);
            loop {
                if current >= shared.limits.max_connections {
                    break false;
                }
                match shared.live_conns.compare_exchange_weak(
                    current,
                    current + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break true,
                    Err(seen) => current = seen,
                }
            }
        };
        if !admitted {
            shared.overload.conns_shed.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = std::io::Write::write_all(
                &mut stream,
                &Reply::error("BUSY max connections reached").encode_frame(),
            );
            continue;
        }
        let guard = ConnGuard(Arc::clone(shared));
        stream.set_nodelay(true).ok();
        if let Ok(raw) = stream.try_clone() {
            shared.conns.lock().push(raw);
        }
        let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        let socket: Box<dyn Socket> = match &chaos {
            Some(config) => Box::new(ChaosSocket::new(stream, config.clone(), id)),
            None => Box::new(stream),
        };
        let shared = Arc::clone(shared);
        let thread = std::thread::Builder::new()
            .name(format!("zstm-server-conn-{id}"))
            .spawn(move || {
                let _guard = guard;
                serve_connection(&shared, socket);
            })
            .expect("spawn connection thread");
        conn_threads.lock().push(thread);
    }
}

/// Reads frames off `socket`, dispatches them, writes replies — the whole
/// life of one connection.
fn serve_connection(shared: &Arc<Shared>, mut socket: Box<dyn Socket>) {
    // Deadlines first: a connection that cannot be bounded is not served.
    // A timed-out read lands in the `Err(_) => break` arm below — the
    // idle-timeout close is silent by design (PROTOCOL.md § overload).
    if socket.set_read_timeout(shared.limits.read_timeout).is_err()
        || socket
            .set_write_timeout(shared.limits.write_timeout)
            .is_err()
    {
        socket.shutdown();
        return;
    }
    let mut state = ConnState { multi: None };
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Drain every complete frame already buffered (pipelining).
        loop {
            let (outcome, consumed) = match parse_request(&buf) {
                Ok(Parsed::Complete(request, consumed)) => {
                    (dispatch(shared, &mut state, &request), consumed)
                }
                Ok(Parsed::Incomplete) => break,
                Err(error) => {
                    // Framing errors are unrecoverable: report and drop.
                    let reply = Reply::error(&format!("ERR protocol: {error}"));
                    let _ = socket.write_all(&reply.encode_frame());
                    break 'conn;
                }
            };
            buf.drain(..consumed);
            match outcome {
                Ok(reply) => {
                    if socket.write_all(&reply.encode_frame()).is_err() {
                        break 'conn;
                    }
                }
                Err(Close::After(reply)) => {
                    let _ = socket.write_all(&reply.encode_frame());
                    break 'conn;
                }
                Err(Close::Silent) => break 'conn,
            }
        }
        match socket.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    socket.shutdown();
    // A connection that dies inside MULTI simply drops its queue here —
    // nothing was executed, so nothing needs rolling back (the property
    // the chaos tests pin down).
}

/// Handles one request; `Ok` is the reply, `Err` closes the connection.
fn dispatch(
    shared: &Arc<Shared>,
    state: &mut ConnState,
    request: &Request<'_>,
) -> Result<Reply, Close> {
    let name = request.args[0];
    // Control commands first.
    match name {
        b"PING" => return Ok(Reply::status("PONG")),
        b"ENGINE" => return Ok(Reply::Value(shared.stm.name().as_bytes().to_vec())),
        b"STATS" => {
            let stats = shared.stm.take_stats();
            // Aborts are split by cause, not lumped: a parked `WAIT` that
            // rolls back to block is bookkeeping (`blocking_retries`),
            // not contention (`conflict_aborts`) — lumping them made
            // WAIT-heavy servers look conflict-bound.
            return Ok(Reply::Value(
                format!(
                    "commits={} conflict_aborts={} blocking_retries={} \
                     certification_aborts={} waker_parks={} \
                     retries_exhausted={} conns_shed={} busy={} timeouts={} inflight={}",
                    stats.total_commits(),
                    stats.conflict_aborts(),
                    stats.blocking_retries(),
                    stats.certification_aborts(),
                    stats.waker_parks(),
                    stats.retries_exhausted(),
                    shared.overload.conns_shed.load(Ordering::Relaxed),
                    shared.overload.busy_rejections.load(Ordering::Relaxed),
                    shared.overload.timeouts.load(Ordering::Relaxed),
                    shared.inflight.load(Ordering::Relaxed),
                )
                .into_bytes(),
            ));
        }
        b"QUIT" => return Err(Close::After(Reply::status("OK"))),
        b"MULTI" => {
            if state.multi.is_some() {
                return Ok(Reply::error("ERR MULTI inside MULTI"));
            }
            state.multi = Some(Vec::new());
            return Ok(Reply::status("OK"));
        }
        b"DISCARD" => {
            return Ok(if state.multi.take().is_some() {
                Reply::status("OK")
            } else {
                Reply::error("ERR DISCARD without MULTI")
            });
        }
        b"EXEC" => {
            let Some(queue) = state.multi.take() else {
                return Ok(Reply::error("ERR EXEC without MULTI"));
            };
            let kind = if queue.len() > LONG_TX_THRESHOLD {
                TxKind::Long
            } else {
                TxKind::Short
            };
            let plan = resolve(&shared.stm, &shared.directory, queue);
            return Ok(match run_transaction(shared, kind, plan)? {
                Ok(replies) => Reply::Multi(replies),
                // Overload: the whole transaction is refused with ONE
                // error frame (no Multi — nothing ran).
                Err(overload) => overload,
            });
        }
        b"WAIT" => {
            if state.multi.is_some() {
                return Ok(Reply::error("ERR WAIT inside MULTI"));
            }
            let deadline = match request.args.len() {
                3 => None,
                4 => match std::str::from_utf8(request.args[3])
                    .ok()
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    Some(ms) => Some(Duration::from_millis(ms)),
                    None => return Ok(Reply::error("ERR WAIT deadline is not a decimal u64")),
                },
                _ => return Ok(Reply::error("ERR wrong number of arguments")),
            };
            return run_wait(shared, request.args[1], request.args[2], deadline);
        }
        _ => {}
    }
    // Data commands.
    let command = match Command::parse(&request.args) {
        Ok(Some(command)) => command,
        Ok(None) => {
            return Ok(Reply::error(&format!(
                "ERR unknown command '{}'",
                String::from_utf8_lossy(name)
            )))
        }
        Err(reply) => return Ok(reply),
    };
    if let Some(queue) = state.multi.as_mut() {
        if queue.len() >= MAX_MULTI {
            state.multi = None;
            return Ok(Reply::error("ERR MULTI body too large"));
        }
        queue.push(command);
        return Ok(Reply::status("QUEUED"));
    }
    let plan = resolve(&shared.stm, &shared.directory, vec![command]);
    match run_transaction(shared, TxKind::Short, plan)? {
        Ok(mut replies) => Ok(replies.pop().expect("one command, one reply")),
        Err(overload) => Ok(overload),
    }
}

/// How an admitted transaction's future ended (written by the pool-side
/// wrapper, read by the connection thread after the join).
enum TxEnd {
    /// Committed; replies (if any) are in the compile sink.
    Committed,
    /// The retry budget ran out — nothing committed.
    Exhausted(RetryExhausted),
    /// The execution deadline passed first — the future was dropped
    /// mid-retry-loop (attempts are atomic; nothing committed).
    TimedOut,
}

/// Wraps a budgeted transaction future with the optional execution
/// deadline and an outcome slot, producing the `Output = ()` future the
/// pool runs plus the slot to read after joining.
#[allow(clippy::type_complexity)]
fn with_deadline(
    future: zstm_api::DynTryFuture,
    deadline: Option<Duration>,
) -> (DynFuture, Arc<Mutex<Option<TxEnd>>>) {
    let slot: Arc<Mutex<Option<TxEnd>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&slot);
    let wrapped: DynFuture = match deadline {
        Some(deadline) => Box::pin(async move {
            let end = match zstm_util::exec::timeout(deadline, future).await {
                Ok(Ok(())) => TxEnd::Committed,
                Ok(Err(exhausted)) => TxEnd::Exhausted(exhausted),
                Err(_) => TxEnd::TimedOut,
            };
            *sink.lock() = Some(end);
        }),
        None => Box::pin(async move {
            let end = match future.await {
                Ok(()) => TxEnd::Committed,
                Err(exhausted) => TxEnd::Exhausted(exhausted),
            };
            *sink.lock() = Some(end);
        }),
    };
    (wrapped, slot)
}

/// Runs a compiled plan as one atomic transaction on the shared pool and
/// waits for its replies.
///
/// The overload layers apply here: admission against the in-flight cap
/// (`Err` reply: `BUSY`), the configured retry budget (`BUSY` with the
/// last abort reason), and the execution deadline (`TIMEOUT`). The inner
/// `Ok`/`Err` distinguishes a served transaction from an overload reply —
/// an overloaded `EXEC` answers one error frame, not a `Multi`.
fn run_transaction(
    shared: &Arc<Shared>,
    kind: TxKind,
    plan: Vec<crate::command::Planned>,
) -> Result<Result<Vec<Reply>, Reply>, Close> {
    let Some(_slot) = InflightGuard::try_admit(shared) else {
        shared
            .overload
            .busy_rejections
            .fetch_add(1, Ordering::Relaxed);
        return Ok(Err(Reply::error("BUSY too many in-flight transactions")));
    };
    let out = Arc::new(Mutex::new(Vec::new()));
    let body = compile(plan, Arc::clone(&out));
    let future =
        shared
            .stm
            .try_atomically_async_dyn(kind, shared.limits.retry_budget, Box::new(body));
    let (wrapped, ended) = with_deadline(future, shared.limits.request_deadline);
    join_on_pool(shared, wrapped)?;
    let end = ended.lock().take().expect("joined future stored its end");
    match end {
        TxEnd::Committed => Ok(Ok(std::mem::take(&mut *out.lock()))),
        TxEnd::Exhausted(exhausted) => Ok(Err(Reply::error(&format!(
            "BUSY retry budget exhausted after {} attempts (last abort: {})",
            exhausted.attempts(),
            exhausted.last_reason(),
        )))),
        TxEnd::TimedOut => {
            shared.overload.timeouts.fetch_add(1, Ordering::Relaxed);
            Ok(Err(Reply::error("TIMEOUT request deadline exceeded")))
        }
    }
}

/// `WAIT key expected [deadline-ms]`: parks (via the retry/notifier
/// protocol, as a suspended future) until the key holds `expected`; a
/// server shutdown resolves the wait with an error instead of leaving the
/// peer hanging, and an expired deadline resolves it with a `TIMEOUT`
/// reply (the connection stays open — a timed-out wait is an answer, not
/// a failure).
fn run_wait(
    shared: &Arc<Shared>,
    key: &[u8],
    expected: &[u8],
    deadline: Option<Duration>,
) -> Result<Reply, Close> {
    let plan = resolve(
        &shared.stm,
        &shared.directory,
        vec![Command::Get(key.to_vec())],
    );
    // WAIT creates the key (it must exist to park on); re-resolve as a
    // creating command.
    let var = match plan.into_iter().next().and_then(|p| p.var) {
        Some(var) => var,
        None => {
            let mut directory = shared.directory.lock();
            directory
                .entry(key.to_vec())
                .or_insert_with(|| shared.stm.new_bytes(Vec::new()))
                .clone()
        }
    };
    // A parked WAIT is pending work: it holds an in-flight slot until it
    // resolves, so the gauge bounds waiters too (`max_connections` is the
    // coarser bound on how many peers can try).
    let Some(_slot) = InflightGuard::try_admit(shared) else {
        shared
            .overload
            .busy_rejections
            .fetch_add(1, Ordering::Relaxed);
        return Ok(Reply::error("BUSY too many in-flight transactions"));
    };
    let expected = expected.to_vec();
    let stopping = Arc::new(AtomicBool::new(false));
    let observed_stop = Arc::clone(&stopping);
    let shared_flag = Arc::clone(shared);
    let body = move |tx: &mut dyn zstm_api::DynTx| -> Result<(), zstm_core::Abort> {
        // Re-checked on every attempt: shutdown's notify_retries re-runs
        // parked bodies, which then commit empty instead of re-parking.
        if shared_flag.stopping.load(Ordering::SeqCst) {
            observed_stop.store(true, Ordering::SeqCst);
            return Ok(());
        }
        if tx.read_bytes(&var)? == expected {
            Ok(())
        } else {
            Err(tx.retry())
        }
    };
    // Unbounded retries — a WAIT's bound is its deadline, not a budget.
    let future = shared.stm.try_atomically_async_dyn(
        TxKind::Short,
        RetryPolicy::unbounded(),
        Box::new(body),
    );
    let (wrapped, ended) = with_deadline(future, deadline);
    join_on_pool(shared, wrapped)?;
    let end = ended.lock().take().expect("joined future stored its end");
    match end {
        TxEnd::TimedOut => {
            shared.overload.timeouts.fetch_add(1, Ordering::Relaxed);
            Ok(Reply::error("TIMEOUT wait deadline exceeded"))
        }
        TxEnd::Exhausted(_) => unreachable!("unbounded retry loop cannot exhaust"),
        TxEnd::Committed if stopping.load(Ordering::SeqCst) => {
            Err(Close::After(Reply::error("ERR server shutting down")))
        }
        TxEnd::Committed => Ok(Reply::status("OK")),
    }
}

/// Spawns `future` on the shared pool and blocks this connection thread
/// until it resolves. The *worker* is released whenever the transaction
/// suspends; only this connection's reader waits.
fn join_on_pool(
    shared: &Arc<Shared>,
    future: std::pin::Pin<Box<dyn std::future::Future<Output = ()> + Send + 'static>>,
) -> Result<(), Close> {
    let handle = {
        let pool = shared.pool.lock();
        let Some(pool) = pool.as_ref() else {
            return Err(Close::After(Reply::error("ERR server shutting down")));
        };
        pool.spawn(future)
    };
    // join() re-throws if the pool was dropped mid-flight (shutdown) or
    // the body panicked; either way this connection is done.
    catch_unwind(AssertUnwindSafe(|| handle.join())).map_err(|_| Close::Silent)
}
