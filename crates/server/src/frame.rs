//! The wire-format codec: length-prefixed frames, argument-vector
//! requests, tagged replies.
//!
//! `PROTOCOL.md` at the repository root is the normative spec; this module
//! is its implementation. The shapes, briefly:
//!
//! * **Frame**: `u32` big-endian payload length, then that many payload
//!   bytes. The length covers the payload only, and is capped at
//!   [`MAX_FRAME`] — a frame header announcing more is a protocol error,
//!   not a huge allocation.
//! * **Request payload**: `u16` big-endian argument count (at least 1),
//!   then per argument a `u32` big-endian length and the raw bytes. The
//!   first argument is the ASCII command name.
//! * **Reply payload**: one tag byte, then tag-specific bytes — `+` status
//!   text, `-` error text, `$` a value's raw bytes, `_` nil (no body),
//!   `:` an ASCII signed decimal integer, `*` a `u32` count of
//!   length-prefixed *inner reply payloads* (the `EXEC` shape).
//!
//! The request parser is zero-copy: [`parse_request`] borrows the
//! argument slices straight out of the connection's read buffer, so the
//! hot path allocates only the small `Vec` of slice headers. Truncated
//! input is *not* an error — framing is explicit, so the parser can
//! always tell "need more bytes" ([`Parsed::Incomplete`]) apart from
//! "this can never become a valid frame" ([`FrameError`]).

use std::fmt;

/// Hard cap on a frame's payload length, request or reply.
///
/// Anything larger is a [`FrameError::TooLarge`] protocol error. The cap
/// is what makes the parser safe to feed from untrusted sockets: the
/// length header is validated before any buffer is grown to fit it.
pub const MAX_FRAME: usize = 1 << 20;

/// Upper bound on arguments per request (`MULTI` bodies are queued
/// commands, not arguments, so real traffic stays tiny).
pub const MAX_ARGS: usize = 1 << 10;

/// Ways a byte stream can fail to be a frame. All are fatal for the
/// connection: framing has no resynchronization points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The frame header announced a payload larger than [`MAX_FRAME`].
    TooLarge(usize),
    /// A request payload declared zero arguments.
    NoArgs,
    /// A request declared more than [`MAX_ARGS`] arguments.
    TooManyArgs(usize),
    /// An argument's declared length runs past the end of the payload.
    ArgOverrun,
    /// The payload has bytes left over after the declared arguments.
    TrailingBytes(usize),
    /// A reply payload was empty or its tag byte is unknown.
    BadReplyTag,
    /// A `:` reply body was not a valid ASCII `i64`.
    BadInteger,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame payload of {n} bytes exceeds MAX_FRAME"),
            FrameError::NoArgs => write!(f, "request declares zero arguments"),
            FrameError::TooManyArgs(n) => write!(f, "request declares {n} arguments"),
            FrameError::ArgOverrun => write!(f, "argument length overruns the payload"),
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the last argument"),
            FrameError::BadReplyTag => write!(f, "empty reply or unknown reply tag"),
            FrameError::BadInteger => write!(f, "integer reply body is not an ASCII i64"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Outcome of a parse attempt over a (possibly still growing) buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Parsed<T> {
    /// A complete item, plus the total number of buffer bytes it consumed
    /// (header included) — the caller drains that prefix and parses again.
    Complete(T, usize),
    /// The buffer holds a valid prefix; read more bytes and retry.
    Incomplete,
}

/// A parsed request: the argument slices, borrowed from the read buffer.
/// `args[0]` is the command name (case-sensitive, ASCII uppercase on the
/// wire).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request<'a> {
    /// Argument byte-strings, in wire order.
    pub args: Vec<&'a [u8]>,
}

/// Parses one request frame from the front of `buf` without copying the
/// argument bytes.
///
/// # Errors
///
/// Returns a [`FrameError`] when the prefix can never become a valid
/// frame (oversized payload, zero or too many arguments, argument lengths
/// that disagree with the payload length). Errors are fatal: the caller
/// must drop the connection.
pub fn parse_request(buf: &[u8]) -> Result<Parsed<Request<'_>>, FrameError> {
    let Some((payload, consumed)) = frame_payload(buf)? else {
        return Ok(Parsed::Incomplete);
    };
    if payload.len() < 2 {
        return Err(FrameError::NoArgs);
    }
    let argc = u16::from_be_bytes([payload[0], payload[1]]) as usize;
    if argc == 0 {
        return Err(FrameError::NoArgs);
    }
    if argc > MAX_ARGS {
        return Err(FrameError::TooManyArgs(argc));
    }
    let mut args = Vec::with_capacity(argc);
    let mut at = 2usize;
    for _ in 0..argc {
        if payload.len() - at < 4 {
            return Err(FrameError::ArgOverrun);
        }
        let len = u32::from_be_bytes([
            payload[at],
            payload[at + 1],
            payload[at + 2],
            payload[at + 3],
        ]) as usize;
        at += 4;
        if payload.len() - at < len {
            return Err(FrameError::ArgOverrun);
        }
        args.push(&payload[at..at + len]);
        at += len;
    }
    if at != payload.len() {
        return Err(FrameError::TrailingBytes(payload.len() - at));
    }
    Ok(Parsed::Complete(Request { args }, consumed))
}

/// Splits a complete frame payload off the front of `buf`, validating the
/// length header. `Ok(None)` means the buffer is a valid-so-far prefix.
fn frame_payload(buf: &[u8]) -> Result<Option<(&[u8], usize)>, FrameError> {
    if buf.len() < 4 {
        // The length itself is still incomplete — but a partial header
        // already promising > MAX_FRAME is knowably hopeless only once
        // all four bytes are in, so wait.
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    if buf.len() - 4 < len {
        return Ok(None);
    }
    Ok(Some((&buf[4..4 + len], 4 + len)))
}

/// Encodes a request frame (the client side of [`parse_request`]).
///
/// # Panics
///
/// Panics if `args` is empty or the encoding would exceed the protocol
/// limits — client-side programming errors, not wire conditions.
pub fn encode_request(args: &[&[u8]]) -> Vec<u8> {
    assert!(!args.is_empty(), "a request needs at least a command name");
    assert!(args.len() <= MAX_ARGS, "too many arguments");
    let payload_len: usize = 2 + args.iter().map(|a| 4 + a.len()).sum::<usize>();
    assert!(payload_len <= MAX_FRAME, "request exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_be_bytes());
    out.extend_from_slice(&(args.len() as u16).to_be_bytes());
    for arg in args {
        out.extend_from_slice(&(arg.len() as u32).to_be_bytes());
        out.extend_from_slice(arg);
    }
    out
}

/// A decoded reply. The server encodes these; the scripted client and the
/// tests decode them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `+` — a status line, e.g. `OK`, `PONG`, `QUEUED`.
    Status(String),
    /// `-` — an error line, e.g. `ERR unknown command`.
    Error(String),
    /// `$` — a value's raw bytes.
    Value(Vec<u8>),
    /// `_` — the key does not exist.
    Nil,
    /// `:` — a signed integer (the `CAS` and `ADD` result shape).
    Int(i64),
    /// `*` — one inner reply per queued command (the `EXEC` shape).
    Multi(Vec<Reply>),
}

impl Reply {
    /// Convenience constructor for `+` replies.
    pub fn status(text: &str) -> Self {
        Reply::Status(text.to_string())
    }

    /// Convenience constructor for `-` replies.
    pub fn error(text: &str) -> Self {
        Reply::Error(text.to_string())
    }

    /// Encodes the reply *payload* (no outer frame header) — the inner
    /// encoding `*` uses for its elements.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Reply::Status(text) => {
                out.push(b'+');
                out.extend_from_slice(text.as_bytes());
            }
            Reply::Error(text) => {
                out.push(b'-');
                out.extend_from_slice(text.as_bytes());
            }
            Reply::Value(bytes) => {
                out.push(b'$');
                out.extend_from_slice(bytes);
            }
            Reply::Nil => out.push(b'_'),
            Reply::Int(value) => {
                out.push(b':');
                out.extend_from_slice(value.to_string().as_bytes());
            }
            Reply::Multi(elements) => {
                out.push(b'*');
                out.extend_from_slice(&(elements.len() as u32).to_be_bytes());
                for element in elements {
                    let payload = element.encode_payload();
                    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                    out.extend_from_slice(&payload);
                }
            }
        }
        out
    }

    /// Encodes the reply as a complete frame (header + payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(4 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a reply payload (the body of a frame, or a `*` element).
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] on an unknown tag, malformed integer or
    /// overrunning `*` element lengths.
    pub fn decode_payload(payload: &[u8]) -> Result<Reply, FrameError> {
        let (&tag, body) = payload.split_first().ok_or(FrameError::BadReplyTag)?;
        match tag {
            b'+' => Ok(Reply::Status(String::from_utf8_lossy(body).into_owned())),
            b'-' => Ok(Reply::Error(String::from_utf8_lossy(body).into_owned())),
            b'$' => Ok(Reply::Value(body.to_vec())),
            b'_' => {
                if body.is_empty() {
                    Ok(Reply::Nil)
                } else {
                    Err(FrameError::TrailingBytes(body.len()))
                }
            }
            b':' => std::str::from_utf8(body)
                .ok()
                .and_then(|s| s.parse::<i64>().ok())
                .map(Reply::Int)
                .ok_or(FrameError::BadInteger),
            b'*' => {
                if body.len() < 4 {
                    return Err(FrameError::ArgOverrun);
                }
                let count = u32::from_be_bytes([body[0], body[1], body[2], body[3]]) as usize;
                if count > MAX_ARGS {
                    return Err(FrameError::TooManyArgs(count));
                }
                let mut elements = Vec::with_capacity(count);
                let mut at = 4usize;
                for _ in 0..count {
                    if body.len() - at < 4 {
                        return Err(FrameError::ArgOverrun);
                    }
                    let len =
                        u32::from_be_bytes([body[at], body[at + 1], body[at + 2], body[at + 3]])
                            as usize;
                    at += 4;
                    if body.len() - at < len {
                        return Err(FrameError::ArgOverrun);
                    }
                    elements.push(Reply::decode_payload(&body[at..at + len])?);
                    at += len;
                }
                if at != body.len() {
                    return Err(FrameError::TrailingBytes(body.len() - at));
                }
                Ok(Reply::Multi(elements))
            }
            _ => Err(FrameError::BadReplyTag),
        }
    }
}

/// Parses one reply frame from the front of `buf` (the client side).
///
/// # Errors
///
/// Returns a [`FrameError`] on an oversized frame or a malformed payload.
pub fn parse_reply(buf: &[u8]) -> Result<Parsed<Reply>, FrameError> {
    let Some((payload, consumed)) = frame_payload(buf)? else {
        return Ok(Parsed::Incomplete);
    };
    Ok(Parsed::Complete(Reply::decode_payload(payload)?, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let wire = encode_request(&[b"SET", b"alpha", b"\x00\x01value"]);
        let Parsed::Complete(request, consumed) = parse_request(&wire).unwrap() else {
            panic!("complete frame must parse");
        };
        assert_eq!(consumed, wire.len());
        assert_eq!(request.args, vec![&b"SET"[..], b"alpha", b"\x00\x01value"]);
    }

    #[test]
    fn every_strict_prefix_is_incomplete() {
        let wire = encode_request(&[b"GET", b"k"]);
        for cut in 0..wire.len() {
            assert_eq!(
                parse_request(&wire[..cut]).unwrap(),
                Parsed::Incomplete,
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn oversized_header_is_rejected_before_buffering() {
        let mut wire = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&[0; 8]);
        assert_eq!(
            parse_request(&wire),
            Err(FrameError::TooLarge(MAX_FRAME + 1))
        );
    }

    #[test]
    fn arg_lengths_must_match_the_payload() {
        // argc = 1, arg length claims 10 bytes but only 3 are present.
        let payload = [0u8, 1, 0, 0, 0, 10, b'a', b'b', b'c'];
        let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&payload);
        assert_eq!(parse_request(&wire), Err(FrameError::ArgOverrun));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut wire = encode_request(&[b"PING"]);
        // Grow the declared payload length by one and append a stray byte.
        let len = u32::from_be_bytes([wire[0], wire[1], wire[2], wire[3]]) + 1;
        wire[..4].copy_from_slice(&len.to_be_bytes());
        wire.push(0xFF);
        assert_eq!(parse_request(&wire), Err(FrameError::TrailingBytes(1)));
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply::status("OK"),
            Reply::error("ERR nope"),
            Reply::Value(vec![0, 1, 2, 255]),
            Reply::Nil,
            Reply::Int(-42),
            Reply::Multi(vec![Reply::Int(7), Reply::Nil, Reply::status("QUEUED")]),
        ];
        for reply in replies {
            let wire = reply.encode_frame();
            let Parsed::Complete(decoded, consumed) = parse_reply(&wire).unwrap() else {
                panic!("complete reply must parse");
            };
            assert_eq!(consumed, wire.len());
            assert_eq!(decoded, reply);
        }
    }

    #[test]
    fn two_pipelined_frames_parse_in_sequence() {
        let mut wire = encode_request(&[b"PING"]);
        let second = encode_request(&[b"GET", b"k"]);
        wire.extend_from_slice(&second);
        let Parsed::Complete(first, consumed) = parse_request(&wire).unwrap() else {
            panic!()
        };
        assert_eq!(first.args[0], b"PING");
        let Parsed::Complete(next, rest) = parse_request(&wire[consumed..]).unwrap() else {
            panic!()
        };
        assert_eq!(next.args[0], b"GET");
        assert_eq!(consumed + rest, wire.len());
    }
}
