//! Overload-protection integration tests: admission control, the
//! connection cap, deadlines, retry budgets and shutdown under pressure
//! — the `Limits` layer of `crates/server/src/server.rs`, exercised over
//! real TCP against the acceptance shapes of PROTOCOL.md §6.

use std::time::{Duration, Instant};

use zstm_server::client::Client;
use zstm_server::frame::Reply;
use zstm_server::registry::ENGINE_NAMES;
use zstm_server::server::{Limits, ServerConfig, ServerHandle};
use zstm_server::workload::{run_overload, OverloadConfig};

/// Generous slack for "the deadline fired, plus processing": CI boxes
/// stall, but a deadline that takes this long is a hang, not a timeout.
const DEADLINE_SLACK: Duration = Duration::from_secs(5);

fn error_text(reply: &Reply) -> &str {
    match reply {
        Reply::Error(text) => text,
        other => panic!("expected an error reply, got {other:?}"),
    }
}

/// The acceptance shape: against a tight server (one worker, one
/// admission slot), 10× the offered load of the single-client baseline
/// must be answered — a healthy share of `BUSY` sheds — while goodput
/// stays within a constant factor of the baseline instead of collapsing
/// with queueing delay. Conservation must hold at both load levels.
#[test]
fn ten_x_offered_load_sheds_busy_and_keeps_goodput() {
    let mut baseline = OverloadConfig::tight(1, 1);
    baseline.duration = Duration::from_millis(150);
    let baseline = run_overload(&baseline);
    assert!(baseline.conserved, "baseline must conserve");
    assert!(baseline.committed > 0, "baseline must commit transfers");

    let mut overloaded = OverloadConfig::tight(10, 1);
    overloaded.duration = Duration::from_millis(150);
    let overloaded = run_overload(&overloaded);
    assert!(overloaded.conserved, "overloaded run must conserve");
    assert!(
        overloaded.busy > 0,
        "10 clients against one admission slot must see BUSY replies \
         (offered {}, committed {})",
        overloaded.offered,
        overloaded.committed
    );
    assert!(
        overloaded.shed_rate > baseline.shed_rate,
        "shed rate must grow with offered load ({} vs baseline {})",
        overloaded.shed_rate,
        baseline.shed_rate
    );
    // "Flat" within a constant factor: shedding keeps the admitted slot
    // productive, so goodput must not collapse the way an unbounded
    // queue's would. The floor is deliberately loose — 10 client threads
    // also fight the server for cores on a small CI box.
    assert!(
        overloaded.goodput >= baseline.goodput * 0.15,
        "goodput collapsed under overload: {:.0}/s at 10 clients vs {:.0}/s at 1",
        overloaded.goodput,
        baseline.goodput
    );
}

/// `WAIT key expected deadline-ms` on a key that never receives the
/// value: every engine answers `TIMEOUT wait deadline exceeded` no
/// earlier than the deadline and within deadline + slack, and the
/// connection stays usable afterwards.
#[test]
fn wait_deadline_times_out_on_every_engine() {
    for engine in ENGINE_NAMES {
        let server = ServerHandle::spawn("127.0.0.1:0", &ServerConfig::new(engine))
            .unwrap_or_else(|e| panic!("spawn {engine}: {e}"));
        let mut client = Client::connect(server.addr()).expect("connect");
        let deadline = Duration::from_millis(80);
        let started = Instant::now();
        let reply = client
            .wait_deadline(b"never-written", b"x", deadline.as_millis() as u64)
            .expect("WAIT with deadline must get a reply");
        let elapsed = started.elapsed();
        assert_eq!(
            error_text(&reply),
            "TIMEOUT wait deadline exceeded",
            "{engine}: reply"
        );
        // Allow a little clock fuzz below the nominal deadline, none of
        // it structural: the timer only fires at-or-after the deadline.
        assert!(
            elapsed >= deadline - Duration::from_millis(10),
            "{engine}: timed out after only {elapsed:?}"
        );
        assert!(
            elapsed <= deadline + DEADLINE_SLACK,
            "{engine}: deadline took {elapsed:?} — that is a hang, not a timeout"
        );
        client
            .ping()
            .unwrap_or_else(|e| panic!("{engine}: connection must stay usable after TIMEOUT: {e}"));
        server.shutdown();
    }
}

/// A `WAIT` whose condition is satisfied before the deadline replies
/// `+OK` like an unbounded one — the deadline is a bound, not a delay.
#[test]
fn wait_deadline_still_wakes_on_matching_commit() {
    let server =
        ServerHandle::spawn("127.0.0.1:0", &ServerConfig::new("lsa")).expect("spawn server");
    let addr = server.addr();
    let waiter = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let started = Instant::now();
        let reply = client
            .wait_deadline(b"door", b"open", 10_000)
            .expect("WAIT reply");
        (reply, started.elapsed())
    });
    std::thread::sleep(Duration::from_millis(40));
    let mut writer = Client::connect(addr).expect("connect writer");
    writer.set(b"door", b"open").expect("matching SET");
    let (reply, elapsed) = waiter.join().expect("waiter thread");
    assert!(
        matches!(&reply, Reply::Status(s) if s == "OK"),
        "a satisfied bounded WAIT replies OK, got {reply:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "the wake must come from the commit, not the 10 s deadline (took {elapsed:?})"
    );
    server.shutdown();
}

/// The connection cap: past `max_connections` a new socket gets one
/// `BUSY max connections reached` goodbye and is closed; when an
/// admitted connection leaves, its slot is reusable.
#[test]
fn connection_cap_sheds_then_recycles_the_slot() {
    let mut config = ServerConfig::new("lsa");
    config.limits.max_connections = 2;
    let server = ServerHandle::spawn("127.0.0.1:0", &config).expect("spawn server");

    let mut first = Client::connect(server.addr()).expect("connect 1");
    let mut second = Client::connect(server.addr()).expect("connect 2");
    first.ping().expect("admitted connection 1 serves");
    second.ping().expect("admitted connection 2 serves");

    // The third connection is shed: the accept loop answers the goodbye
    // frame without reading, so the PING is never looked at.
    let mut shed = Client::connect(server.addr()).expect("TCP connect still succeeds");
    let reply = shed.request(&[b"PING"]).expect("read the goodbye frame");
    assert_eq!(error_text(&reply), "BUSY max connections reached");
    assert!(
        shed.read_reply().is_err(),
        "the shed connection must be closed after its goodbye"
    );

    // Free one slot and the next connection must (eventually — the
    // server notices the close asynchronously) be admitted again.
    drop(first.into_stream());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = Client::connect(server.addr()).expect("reconnect");
        match retry.ping() {
            Ok(()) => break,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("freed connection slot was never recycled: {e}"),
        }
    }
    server.shutdown();
}

/// Admission control feeds the `STATS` counters: with a zero in-flight
/// budget every data command is refused, and the reply line reports the
/// `busy` count and an empty gauge.
#[test]
fn stats_reports_overload_counters() {
    let mut config = ServerConfig::new("lsa");
    config.limits.max_inflight_tx = 0;
    let server = ServerHandle::spawn("127.0.0.1:0", &config).expect("spawn server");
    let mut client = Client::connect(server.addr()).expect("connect");

    let reply = client.request(&[b"ADD", b"k", b"1"]).expect("ADD reply");
    assert_eq!(error_text(&reply), "BUSY too many in-flight transactions");

    let stats = match client.request(&[b"STATS"]).expect("STATS reply") {
        Reply::Value(bytes) => String::from_utf8(bytes).expect("STATS is ASCII"),
        other => panic!("STATS must stay available under admission pressure, got {other:?}"),
    };
    assert!(
        stats.contains("busy=1"),
        "one admission rejection must be counted, got: {stats}"
    );
    assert!(
        stats.contains("inflight=0"),
        "nothing was admitted, got: {stats}"
    );
    assert!(
        stats.contains("conns_shed=0") && stats.contains("timeouts=0"),
        "untouched counters stay zero, got: {stats}"
    );
    server.shutdown();
}

/// A slow consumer — pipelining large-reply requests without ever
/// reading — must be disconnected by the write timeout instead of
/// parking a connection thread on a full send buffer forever, and the
/// server must keep serving everyone else.
#[test]
fn write_timeout_disconnects_a_slow_consumer() {
    let mut config = ServerConfig::new("lsa");
    config.limits.write_timeout = Some(Duration::from_millis(100));
    let server = ServerHandle::spawn("127.0.0.1:0", &config).expect("spawn server");

    let mut slow = Client::connect(server.addr()).expect("connect slow consumer");
    slow.set_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    let big = vec![0x5Au8; 512 * 1024];
    slow.set(b"big", &big).expect("seed the large value");

    // Pipeline GETs without reading: the replies (64 × 512 KiB) vastly
    // exceed the kernel buffers, so the server's writer blocks and the
    // write timeout must cut the connection.
    let started = Instant::now();
    for _ in 0..64 {
        if slow
            .send_raw(&zstm_server::frame::encode_request(&[b"GET", b"big"]))
            .is_err()
        {
            break; // server already closed on us mid-pipeline — fine
        }
    }
    // Be genuinely slow: stay away from the socket long enough for the
    // server's blocked write to hit its 100 ms timeout.
    std::thread::sleep(Duration::from_millis(600));
    // Drain what arrived: the cut must surface as an error/EOF before
    // all 64 replies, in bounded time.
    let mut delivered = 0usize;
    while slow.read_reply().is_ok() {
        delivered += 1;
        assert!(delivered < 64, "all replies arrived — nothing was cut");
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the slow consumer must be cut by the write timeout, not served to completion"
    );

    let mut healthy = Client::connect(server.addr()).expect("connect healthy client");
    healthy
        .ping()
        .expect("the server must outlive its slow consumer");
    server.shutdown();
}

/// Shutdown under pressure, every engine: with parked `WAIT`s holding
/// in-flight slots and connections abandoned mid-`MULTI`, `shutdown()`
/// must still drain in bounded time, resolve every waiter with the
/// shutdown error, and leave the store conserved.
#[test]
fn shutdown_under_pressure_drains_bounded_and_conserves() {
    for engine in ENGINE_NAMES {
        let mut config = ServerConfig::new(engine).with_workers(2);
        config.limits = Limits {
            // Tight enough to matter (parked WAITs occupy most of the
            // gauge), loose enough that the transfer clients still run.
            max_inflight_tx: 12,
            ..Limits::default()
        };
        let server = ServerHandle::spawn("127.0.0.1:0", &config)
            .unwrap_or_else(|e| panic!("spawn {engine}: {e}"));
        let addr = server.addr();

        // Pressure, part 1: eight connections parked in WAIT on a key
        // that never matches.
        let waiters: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("waiter connect");
                    client.wait(b"never", b"comes")
                })
            })
            .collect();

        // Pressure, part 2: real committed transfers, so conservation is
        // non-trivial...
        for c in 0..3 {
            let mut client = Client::connect(addr).expect("transfer connect");
            for i in 0..5 {
                let from = format!("p{}", (c + i) % 4).into_bytes();
                let to = format!("p{}", (c + i + 1) % 4).into_bytes();
                client
                    .multi_exec(&[
                        vec![b"ADD".to_vec(), from, b"-1".to_vec()],
                        vec![b"ADD".to_vec(), to, b"1".to_vec()],
                    ])
                    .expect("transfer");
            }
        }
        // ...part 3: connections abandoned mid-MULTI, each holding half
        // a transfer that must never execute.
        let mut abandoned = Vec::new();
        for _ in 0..4 {
            let mut client = Client::connect(addr).expect("doomed connect");
            client.request(&[b"MULTI"]).expect("MULTI");
            client.request(&[b"ADD", b"p0", b"-100"]).expect("queue");
            abandoned.push(client); // kept open across the shutdown
        }

        std::thread::sleep(Duration::from_millis(50)); // let the WAITs park
        assert_eq!(
            server.sum_keys(b"p").expect("integer balances"),
            0,
            "{engine}: transfers must conserve before shutdown"
        );

        let started = Instant::now();
        server.shutdown();
        let drain = started.elapsed();
        assert!(
            drain < Duration::from_secs(10),
            "{engine}: shutdown under pressure took {drain:?}"
        );
        for waiter in waiters {
            let outcome = waiter.join().expect("waiter thread");
            assert!(
                outcome.is_err(),
                "{engine}: a shutdown-resolved WAIT must error, got {outcome:?}"
            );
        }
        drop(abandoned);
    }
}
