//! Property-based testing of the wire codec: encode/parse round trips
//! under random arguments and replies, pipelining, and random mutation —
//! with a domain-specific shrinker (`prop_shrink_with`, the same
//! convention as `tests/random_schedules.rs` at the workspace root) so a
//! failing argument vector is reported minimized.

use proptest::prelude::*;
use zstm_server::frame::{encode_request, parse_reply, parse_request, Parsed, Reply};

/// Greedy minimizer for a failing argument vector: drop whole arguments
/// (keeping at least one), then halve argument contents, as long as the
/// property still fails.
fn minimize_args(
    args: &Vec<Vec<u8>>,
    fails: &mut dyn FnMut(&Vec<Vec<u8>>) -> bool,
) -> Option<Vec<Vec<u8>>> {
    if !fails(args) {
        return None;
    }
    let mut best = args.clone();
    let mut progress = true;
    while progress {
        progress = false;
        // Drop arguments one at a time.
        for i in 0..best.len() {
            if best.len() <= 1 {
                break;
            }
            let mut candidate = best.clone();
            candidate.remove(i);
            if fails(&candidate) {
                best = candidate;
                progress = true;
                break;
            }
        }
        // Halve argument payloads.
        for i in 0..best.len() {
            if best[i].is_empty() {
                continue;
            }
            let mut candidate = best.clone();
            let half = candidate[i].len() / 2;
            candidate[i].truncate(half);
            if fails(&candidate) {
                best = candidate;
                progress = true;
                break;
            }
        }
    }
    Some(best)
}

fn args_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..8)
        .prop_shrink_with(minimize_args)
}

fn leaf_reply_strategy() -> impl Strategy<Value = Reply> {
    let text = proptest::collection::vec(any::<u8>(), 0..16).prop_map(|v| {
        v.iter()
            .map(|b| char::from(b'a' + b % 26))
            .collect::<String>()
    });
    prop_oneof![
        text.prop_map(Reply::Status),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Reply::Value),
        Just(Reply::Nil),
        any::<i64>().prop_map(Reply::Int),
    ]
}

fn reply_strategy() -> impl Strategy<Value = Reply> {
    prop_oneof![
        3 => leaf_reply_strategy().boxed(),
        1 => proptest::collection::vec(leaf_reply_strategy(), 0..4)
            .prop_map(Reply::Multi)
            .boxed(),
        1 => proptest::collection::vec(
                proptest::collection::vec(leaf_reply_strategy(), 0..3).prop_map(Reply::Multi),
                1..3,
            )
            .prop_map(Reply::Multi)
            .boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_exactly(args in args_strategy()) {
        let borrowed: Vec<&[u8]> = args.iter().map(Vec::as_slice).collect();
        let wire = encode_request(&borrowed);
        match parse_request(&wire) {
            Ok(Parsed::Complete(request, consumed)) => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(request.args, borrowed);
            }
            other => return Err(TestCaseError::fail(format!("parsed as {other:?}"))),
        }
    }

    #[test]
    fn every_strict_prefix_is_incomplete(args in args_strategy(), cut_seed in any::<u64>()) {
        let borrowed: Vec<&[u8]> = args.iter().map(Vec::as_slice).collect();
        let wire = encode_request(&borrowed);
        let cut = (cut_seed % wire.len() as u64) as usize;
        prop_assert_eq!(parse_request(&wire[..cut]), Ok(Parsed::Incomplete));
    }

    #[test]
    fn pipelined_frames_parse_in_sequence(
        first in args_strategy(),
        second in args_strategy(),
    ) {
        let a: Vec<&[u8]> = first.iter().map(Vec::as_slice).collect();
        let b: Vec<&[u8]> = second.iter().map(Vec::as_slice).collect();
        let mut wire = encode_request(&a);
        wire.extend_from_slice(&encode_request(&b));
        let Ok(Parsed::Complete(req_a, used_a)) = parse_request(&wire) else {
            return Err(TestCaseError::fail("first frame must parse"));
        };
        prop_assert_eq!(req_a.args, a);
        let Ok(Parsed::Complete(req_b, used_b)) = parse_request(&wire[used_a..]) else {
            return Err(TestCaseError::fail("second frame must parse"));
        };
        prop_assert_eq!(req_b.args, b);
        prop_assert_eq!(used_a + used_b, wire.len());
    }

    #[test]
    fn replies_round_trip_exactly(reply in reply_strategy()) {
        let wire = reply.encode_frame();
        match parse_reply(&wire) {
            Ok(Parsed::Complete(decoded, consumed)) => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(decoded, reply);
            }
            other => return Err(TestCaseError::fail(format!("parsed as {other:?}"))),
        }
    }

    /// Mutation safety: flipping bytes, truncating, or appending garbage
    /// to a valid frame must produce Complete/Incomplete/Err — never a
    /// panic, never consumption beyond the buffer.
    #[test]
    fn mutated_frames_never_break_the_parser(
        args in args_strategy(),
        flips in proptest::collection::vec((any::<u64>(), any::<u8>()), 0..6),
        trunc_seed in any::<u64>(),
        tail in proptest::collection::vec(any::<u8>(), 0..12),
    ) {
        let borrowed: Vec<&[u8]> = args.iter().map(Vec::as_slice).collect();
        let mut wire = encode_request(&borrowed);
        for (at, bit) in flips {
            let len = wire.len() as u64;
            wire[(at % len) as usize] ^= 1 << (bit % 8);
        }
        if trunc_seed % 3 == 0 {
            wire.truncate((trunc_seed % (wire.len() as u64 + 1)) as usize);
        }
        wire.extend_from_slice(&tail);
        for parse_consumed in [
            parse_request(&wire).ok().map(|p| match p {
                Parsed::Complete(_, n) => Some(n),
                Parsed::Incomplete => None,
            }),
            parse_reply(&wire).ok().map(|p| match p {
                Parsed::Complete(_, n) => Some(n),
                Parsed::Incomplete => None,
            }),
        ] {
            if let Some(Some(consumed)) = parse_consumed {
                prop_assert!(consumed <= wire.len());
                prop_assert!(consumed >= 4);
            }
        }
    }
}
