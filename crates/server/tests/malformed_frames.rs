//! The malformed/truncated-frame corpus: hand-written hostile inputs,
//! each pinned to the exact [`FrameError`] the spec requires, plus the
//! server-side behavior (one best-effort `-ERR protocol:` reply, then
//! the connection closes and the store is untouched).

use std::io::Read;
use std::time::Duration;

use zstm_server::client::Client;
use zstm_server::frame::{parse_reply, parse_request, FrameError, Parsed, MAX_ARGS, MAX_FRAME};
use zstm_server::server::{ServerConfig, ServerHandle};

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
    wire.extend_from_slice(payload);
    wire
}

#[test]
fn corpus_zero_args_is_no_args() {
    assert_eq!(parse_request(&frame(&[0, 0])), Err(FrameError::NoArgs));
}

#[test]
fn corpus_payload_shorter_than_argc_is_no_args() {
    assert_eq!(parse_request(&frame(&[7])), Err(FrameError::NoArgs));
    assert_eq!(parse_request(&frame(&[])), Err(FrameError::NoArgs));
}

#[test]
fn corpus_too_many_args() {
    let argc = (MAX_ARGS + 1) as u16;
    assert_eq!(
        parse_request(&frame(&argc.to_be_bytes())),
        Err(FrameError::TooManyArgs(MAX_ARGS + 1))
    );
}

#[test]
fn corpus_arg_length_overruns_payload() {
    // argc 1, arg claims 100 bytes, only 2 present.
    let mut payload = vec![0, 1, 0, 0, 0, 100];
    payload.extend_from_slice(b"ab");
    assert_eq!(parse_request(&frame(&payload)), Err(FrameError::ArgOverrun));
}

#[test]
fn corpus_arg_header_truncated_inside_length() {
    // argc 2, first arg complete, second arg's length field cut short —
    // the *payload* is complete per its header, so this is an error, not
    // Incomplete.
    let payload = vec![0, 2, 0, 0, 0, 1, b'x', 0, 0];
    assert_eq!(parse_request(&frame(&payload)), Err(FrameError::ArgOverrun));
}

#[test]
fn corpus_trailing_bytes_after_last_arg() {
    let mut payload = vec![0, 1, 0, 0, 0, 1, b'x'];
    payload.extend_from_slice(&[0xde, 0xad]);
    assert_eq!(
        parse_request(&frame(&payload)),
        Err(FrameError::TrailingBytes(2))
    );
}

#[test]
fn corpus_oversized_length_header() {
    let wire = ((MAX_FRAME + 1) as u32).to_be_bytes();
    assert_eq!(
        parse_request(&wire),
        Err(FrameError::TooLarge(MAX_FRAME + 1))
    );
    assert_eq!(parse_reply(&wire), Err(FrameError::TooLarge(MAX_FRAME + 1)));
}

#[test]
fn corpus_max_length_header_exactly_at_cap_is_incomplete_not_error() {
    let wire = (MAX_FRAME as u32).to_be_bytes();
    assert_eq!(parse_request(&wire), Ok(Parsed::Incomplete));
}

#[test]
fn corpus_truncated_header_is_incomplete() {
    for len in 0..4 {
        assert_eq!(parse_request(&[0u8; 4][..len]), Ok(Parsed::Incomplete));
    }
}

#[test]
fn corpus_reply_bad_tag() {
    assert_eq!(parse_reply(&frame(b"?x")), Err(FrameError::BadReplyTag));
    assert_eq!(parse_reply(&frame(b"")), Err(FrameError::BadReplyTag));
}

#[test]
fn corpus_reply_bad_integer() {
    assert_eq!(parse_reply(&frame(b":12a")), Err(FrameError::BadInteger));
    assert_eq!(parse_reply(&frame(b":")), Err(FrameError::BadInteger));
}

#[test]
fn corpus_reply_nil_with_body_is_error() {
    assert_eq!(
        parse_reply(&frame(b"_x")),
        Err(FrameError::TrailingBytes(1))
    );
}

#[test]
fn corpus_reply_multi_count_overrun() {
    // '*' claiming 3 elements with no element data.
    let mut payload = vec![b'*'];
    payload.extend_from_slice(&3u32.to_be_bytes());
    assert_eq!(parse_reply(&frame(&payload)), Err(FrameError::ArgOverrun));
}

/// The server's reaction to a poisoned stream: one `-ERR protocol:`
/// reply, then the connection is closed — and a key written before the
/// poison is still intact for the next (healthy) connection.
#[test]
fn server_closes_poisoned_connection_without_losing_state() {
    let server =
        ServerHandle::spawn("127.0.0.1:0", &ServerConfig::new("tl2")).expect("spawn server");

    let mut victim = Client::connect(server.addr()).expect("connect");
    victim
        .set(b"survivor", b"intact")
        .expect("SET before poison");
    // Zero-argc request: fatal framing error.
    victim.send_raw(&frame(&[0, 0])).expect("send poison");
    match victim.read_reply() {
        Ok(reply) => {
            let err = format!("{reply:?}");
            assert!(
                err.contains("protocol"),
                "expected a protocol error reply, got {err}"
            );
        }
        Err(_) => {
            // Best-effort reply: the server may also just close.
        }
    }
    // Whatever came back, the stream must now be closed.
    victim.set_timeout(Some(Duration::from_secs(5))).ok();
    let mut rest = Vec::new();
    let eof = victim
        .into_stream()
        .read_to_end(&mut rest)
        .map(|_| true)
        .unwrap_or(false);
    assert!(eof, "the server must close a poisoned connection");

    let mut fresh = Client::connect(server.addr()).expect("reconnect");
    assert_eq!(
        fresh.get(b"survivor").expect("GET after poison"),
        Some(b"intact".to_vec()),
        "a framing error on one connection must not disturb the store"
    );
    server.shutdown();
}
