//! Fault-injection integration tests: connections torn down by the
//! [`ChaosSocket`](zstm_server::socket::ChaosSocket) — or dropped by the
//! client on purpose — must never break transaction atomicity.
//!
//! The invariant is the bank workload's: every transfer is `MULTI [ADD
//! from -1; ADD to +1] EXEC`, so the sum over all keys is zero at every
//! committed point, no matter where in the protocol a connection dies.

use std::time::Duration;

use zstm_server::client::Client;
use zstm_server::registry::ENGINE_NAMES;
use zstm_server::server::{ServerConfig, ServerHandle};
use zstm_server::socket::ChaosConfig;
use zstm_server::workload::{run_server, ServerWorkloadConfig};

/// A client that dies holding a `MULTI` queue has executed nothing: the
/// queued half-transfer must not leak into the store. Deterministic (no
/// chaos): the client itself drops the link mid-transaction.
#[test]
fn dropped_connection_mid_multi_rolls_back() {
    for engine in ENGINE_NAMES {
        let server = ServerHandle::spawn("127.0.0.1:0", &ServerConfig::new(engine))
            .unwrap_or_else(|e| panic!("spawn {engine}: {e}"));

        // Seed two balances through a connection that survives.
        let mut setup = Client::connect(server.addr()).expect("connect");
        assert_eq!(setup.add(b"a", 100).expect("seed a"), 100);
        assert_eq!(setup.add(b"b", 100).expect("seed b"), 100);

        // Queue half a transfer, then vanish without EXEC.
        let mut doomed = Client::connect(server.addr()).expect("connect doomed");
        doomed.request(&[b"MULTI"]).expect("MULTI");
        doomed
            .request(&[b"ADD", b"a", b"-100"])
            .expect("queue debit");
        drop(doomed.into_stream());

        // The debit must not have executed: both balances intact.
        assert_eq!(setup.add(b"a", 0).expect("audit a"), 100, "{engine}: a");
        assert_eq!(setup.add(b"b", 0).expect("audit b"), 100, "{engine}: b");
        server.shutdown();
    }
}

/// Under hostile chaos (short reads, 3 % per-op connection drops) every
/// engine — and a certified wrapper — must keep the transfer sum at
/// zero. Connections die mid-frame, mid-`MULTI`, and between `EXEC` and
/// its reply; the audit runs over `MULTI GET`s so it is itself atomic.
#[test]
fn hostile_chaos_conserves_on_every_engine() {
    for engine in ENGINE_NAMES {
        let mut config = ServerWorkloadConfig::quick(3);
        config.server = ServerConfig::new(engine).with_chaos(ChaosConfig::hostile(0xC4A0 + 7));
        config.duration = Duration::from_millis(120);
        let report = run_server(&config);
        assert!(
            report.conserved,
            "{engine}: chaos broke conservation ({} commits, {} reconnects)",
            report.committed, report.reconnects
        );
        assert!(
            report.reconnects > 0,
            "{engine}: hostile chaos should actually tear connections down \
             (got {} commits, 0 reconnects — seed too gentle?)",
            report.committed
        );
    }
}

/// The SSI certifier retries certification aborts server-side; chaos on
/// top must still conserve.
#[test]
fn certified_engine_under_chaos_conserves() {
    let mut config = ServerWorkloadConfig::quick(3);
    config.server = ServerConfig::new("cs")
        .with_certified(true)
        .with_chaos(ChaosConfig::hostile(0xBEEF));
    config.duration = Duration::from_millis(120);
    let report = run_server(&config);
    assert!(report.conserved, "certified-cs chaos run must conserve");
    assert_eq!(report.engine, "certified-cs");
}

/// Write-side faults alone: every server-side reply pays a delay and a
/// 5 % per-write stall. Slower, but still correct — transfers conserve
/// and the suite still tears nothing down (stalls are not drops).
#[test]
fn write_faults_slow_replies_but_conserve() {
    let chaos = ChaosConfig {
        write_delay: Duration::from_micros(200),
        write_stall_permille: 50,
        write_stall: Duration::from_millis(2),
        ..ChaosConfig::quiet(0x57F0)
    };
    let mut config = ServerWorkloadConfig::quick(3);
    config.server = ServerConfig::new("lsa").with_chaos(chaos);
    config.duration = Duration::from_millis(120);
    let report = run_server(&config);
    assert!(
        report.conserved,
        "write-side chaos broke conservation ({} commits)",
        report.committed
    );
    assert!(
        report.committed > 0,
        "write faults slow the link, they must not stop it"
    );
}

/// Short reads alone (no drops): every frame arrives a few bytes at a
/// time and everything still works, at full fidelity.
#[test]
fn byte_dribble_still_serves_correctly() {
    let chaos = ChaosConfig {
        short_read_max: 2,
        ..ChaosConfig::quiet(11)
    };
    let server = ServerHandle::spawn("127.0.0.1:0", &ServerConfig::new("z").with_chaos(chaos))
        .expect("spawn");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.set(b"k", b"v").expect("SET");
    assert_eq!(client.get(b"k").expect("GET"), Some(b"v".to_vec()));
    let replies = client
        .multi_exec(&[
            vec![b"ADD".to_vec(), b"x".to_vec(), b"-7".to_vec()],
            vec![b"ADD".to_vec(), b"y".to_vec(), b"7".to_vec()],
        ])
        .expect("EXEC");
    assert_eq!(replies.len(), 2);
    server.shutdown();
}
