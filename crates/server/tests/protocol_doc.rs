//! PROTOCOL.md conformance: every ` ```wire ` block in the spec is
//! replayed byte-for-byte against a real server.
//!
//! Each block runs on its own freshly spawned `lsa` server and its own
//! connection; a `>>` line group is sent verbatim, and the subsequent
//! `<<` group must come back **exactly** — if the spec's hex and the
//! server's bytes ever diverge, this test fails with both sides printed,
//! and one of them has to change.
//!
//! A fence may carry `key=value` options (` ```wire max-inflight=0 `):
//! the block's server is spawned with the matching
//! [`Limits`](zstm_server::server::Limits), so the spec's overload
//! replies (`BUSY`, `TIMEOUT`) are executable too. A block may open with
//! a bare `<<` group — a frame the server sends unprompted (the
//! accept-shed goodbye).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use zstm_server::server::{ServerConfig, ServerHandle};

/// One request→reply exchange from a wire block. `send` is empty for an
/// unprompted server frame (a block opening with `<<`).
struct Step {
    line: usize,
    send: Vec<u8>,
    expect: Vec<u8>,
}

/// A ` ```wire ` block: its starting line, its fence options and its
/// steps, in order.
struct Block {
    line: usize,
    options: Vec<(String, String)>,
    steps: Vec<Step>,
}

fn decode_hex(line_no: usize, hex: &str) -> Vec<u8> {
    let compact: String = hex.split_whitespace().collect();
    assert!(
        compact.len() % 2 == 0 && !compact.is_empty(),
        "PROTOCOL.md line {line_no}: hex must have an even number of digits: {hex:?}"
    );
    (0..compact.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&compact[i..i + 2], 16)
                .unwrap_or_else(|_| panic!("PROTOCOL.md line {line_no}: bad hex digit in {hex:?}"))
        })
        .collect()
}

fn parse_blocks(doc: &str) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut current: Option<Block> = None;
    for (i, raw) in doc.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if let Some(fence) = line.strip_prefix("```wire") {
            if fence.is_empty() || fence.starts_with(' ') {
                assert!(current.is_none(), "line {line_no}: nested wire block");
                let options = fence
                    .split_whitespace()
                    .map(|pair| {
                        let (key, value) = pair.split_once('=').unwrap_or_else(|| {
                            panic!("line {line_no}: fence option {pair:?} is not key=value")
                        });
                        (key.to_string(), value.to_string())
                    })
                    .collect();
                current = Some(Block {
                    line: line_no,
                    options,
                    steps: Vec::new(),
                });
                continue;
            }
        }
        let Some(block) = current.as_mut() else {
            continue;
        };
        if line == "```" {
            blocks.push(current.take().expect("checked Some"));
            continue;
        }
        if let Some(hex) = line.strip_prefix(">>") {
            block.steps.push(Step {
                line: line_no,
                send: decode_hex(line_no, hex),
                expect: Vec::new(),
            });
        } else if let Some(hex) = line.strip_prefix("<<") {
            if block.steps.is_empty() {
                // An unprompted server frame: the block opens with the
                // reply (nothing is sent first).
                block.steps.push(Step {
                    line: line_no,
                    send: Vec::new(),
                    expect: Vec::new(),
                });
            }
            let step = block.steps.last_mut().expect("pushed above");
            step.expect.extend(decode_hex(line_no, hex));
        } else if !line.is_empty() {
            panic!("line {line_no}: wire blocks hold only >>/<< lines, got {line:?}");
        }
    }
    assert!(current.is_none(), "unterminated wire block");
    blocks
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn every_wire_block_matches_the_server_byte_for_byte() {
    let doc = include_str!("../../../PROTOCOL.md");
    let blocks = parse_blocks(doc);
    assert!(
        blocks.len() >= 6,
        "the spec should keep a healthy number of executable examples, found {}",
        blocks.len()
    );
    for block in blocks {
        let mut config = ServerConfig::new("lsa");
        for (key, value) in &block.options {
            match key.as_str() {
                "max-inflight" => {
                    config.limits.max_inflight_tx = value.parse().unwrap_or_else(|_| {
                        panic!("PROTOCOL.md line {}: max-inflight={value:?}", block.line)
                    })
                }
                "max-conns" => {
                    config.limits.max_connections = value.parse().unwrap_or_else(|_| {
                        panic!("PROTOCOL.md line {}: max-conns={value:?}", block.line)
                    })
                }
                other => panic!(
                    "PROTOCOL.md line {}: unknown fence option {other:?}",
                    block.line
                ),
            }
        }
        let server = ServerHandle::spawn("127.0.0.1:0", &config).expect("spawn server");
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10))).ok();
        for step in &block.steps {
            assert!(
                !step.expect.is_empty(),
                "PROTOCOL.md line {}: >> without a << reply",
                step.line
            );
            conn.write_all(&step.send).expect("send request bytes");
            let mut actual = vec![0u8; step.expect.len()];
            conn.read_exact(&mut actual).unwrap_or_else(|e| {
                panic!(
                    "PROTOCOL.md line {} (block at line {}): reply truncated: {e}",
                    step.line, block.line
                )
            });
            assert_eq!(
                hex(&actual),
                hex(&step.expect),
                "PROTOCOL.md line {} (block at line {}): reply bytes diverge from the spec",
                step.line,
                block.line
            );
        }
        server.shutdown();
    }
}
