//! End-to-end: the acceptance shape from the issue — concurrent TCP
//! clients executing `MULTI`…`EXEC` against each of the five engines,
//! selected at runtime, with more server-side tasks than pool workers.

use std::sync::Arc;
use std::time::Duration;

use zstm_core::TxKind;
use zstm_server::client::Client;
use zstm_server::registry::ENGINE_NAMES;
use zstm_server::server::{ServerConfig, ServerHandle};

/// Every engine, two pool workers, six concurrent client connections
/// (plus a parked waiter — seven tasks over two workers): 20 transfers
/// each, then an atomic audit must sum to zero.
#[test]
fn five_engines_serve_concurrent_multi_exec() {
    for engine in ENGINE_NAMES {
        let server = ServerHandle::spawn("127.0.0.1:0", &ServerConfig::new(engine).with_workers(2))
            .unwrap_or_else(|e| panic!("spawn {engine}: {e}"));
        let addr = server.addr();

        // One connection parks in WAIT for the whole test: it must not
        // occupy a worker, or the six transfer clients would starve.
        let waiter = std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("waiter connect");
            client.wait(b"finish", b"now").is_ok()
        });

        let clients: Vec<_> = (0..6)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for i in 0..20 {
                        let from = format!("k{}", (c + i) % 8).into_bytes();
                        let to = format!("k{}", (c + i + 1) % 8).into_bytes();
                        let replies = client
                            .multi_exec(&[
                                vec![b"ADD".to_vec(), from, b"-1".to_vec()],
                                vec![b"ADD".to_vec(), to, b"1".to_vec()],
                            ])
                            .expect("transfer EXEC");
                        assert_eq!(replies.len(), 2);
                    }
                })
            })
            .collect();
        for client in clients {
            client.join().expect("client thread");
        }

        let mut audit = Client::connect(addr).expect("audit connect");
        let gets: Vec<Vec<Vec<u8>>> = (0..8)
            .map(|i| vec![b"GET".to_vec(), format!("k{i}").into_bytes()])
            .collect();
        let sum: i64 = audit
            .multi_exec(&gets)
            .expect("audit EXEC")
            .into_iter()
            .map(|reply| match reply {
                zstm_server::frame::Reply::Value(bytes) => {
                    zstm_server::command::decode_i64(&bytes).expect("integer value")
                }
                zstm_server::frame::Reply::Nil => 0,
                other => panic!("{engine}: audit got {other:?}"),
            })
            .sum();
        assert_eq!(sum, 0, "{engine}: transfers must conserve");

        audit.set(b"finish", b"now").expect("release waiter");
        assert!(waiter.join().expect("waiter thread"), "{engine}: waiter");
        server.shutdown();
    }
}

/// `WAIT` semantics end-to-end: blocks past a non-matching write, wakes
/// on the matching one.
#[test]
fn wait_wakes_on_matching_commit_only() {
    let server =
        ServerHandle::spawn("127.0.0.1:0", &ServerConfig::new("lsa")).expect("spawn server");
    let addr = server.addr();
    let waiter = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.wait(b"door", b"open").expect("WAIT");
        // The value is guaranteed to be `open` at some commit the wait
        // observed; read it back (another writer could race, but this
        // test has only one).
        client.get(b"door").expect("GET after WAIT")
    });
    let mut writer = Client::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(30));
    writer.set(b"door", b"ajar").expect("non-matching SET");
    std::thread::sleep(Duration::from_millis(30));
    assert!(!waiter.is_finished(), "WAIT must not wake on `ajar`");
    writer.set(b"door", b"open").expect("matching SET");
    assert_eq!(waiter.join().expect("waiter"), Some(b"open".to_vec()));
    server.shutdown();
}

/// Shutdown resolves parked waiters with an error instead of hanging
/// them (and `shutdown()` itself must not deadlock on a parked future).
#[test]
fn shutdown_releases_parked_waiters() {
    let server =
        ServerHandle::spawn("127.0.0.1:0", &ServerConfig::new("tl2")).expect("spawn server");
    let addr = server.addr();
    let waiter = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.wait(b"never", b"comes")
    });
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();
    let outcome = waiter.join().expect("waiter thread");
    assert!(
        outcome.is_err(),
        "a shutdown-resolved WAIT must surface as an error, got {outcome:?}"
    );
}

/// `EXEC` bodies larger than the threshold run as the paper's *long*
/// transaction kind — observable in the engine's statistics.
#[test]
fn large_exec_bodies_run_as_long_transactions() {
    let server = ServerHandle::spawn("127.0.0.1:0", &ServerConfig::new("z")).expect("spawn server");
    let stm: Arc<dyn zstm_api::DynStm> = server.stm();
    let mut client = Client::connect(server.addr()).expect("connect");
    // Drain whatever the spawn path committed.
    let _ = stm.take_stats();

    let body: Vec<Vec<Vec<u8>>> = (0..6)
        .map(|i| vec![b"ADD".to_vec(), format!("k{i}").into_bytes(), b"1".to_vec()])
        .collect();
    client.multi_exec(&body).expect("long EXEC");
    let short_body: Vec<Vec<Vec<u8>>> = body[..2].to_vec();
    client.multi_exec(&short_body).expect("short EXEC");

    // Stats live in thread-cached leases until the pool workers exit;
    // shutting down flushes them, then the harvest sees everything.
    server.shutdown();
    let stats = stm.take_stats();
    assert_eq!(stats.commits(TxKind::Long), 1, "6 commands > threshold");
    assert_eq!(stats.commits(TxKind::Short), 1, "2 commands <= threshold");
}
