//! Adversarial schedule fuzzing with auto-promoted regression tests.
//!
//! This module closes the loop the repository's property tests leave
//! open: it generates adversarial scripted schedules (random ones plus
//! write-skew-shaped ones that specifically exercise the SSI dangerous
//! structure), replays each on **all five engines** both natively and
//! wrapped in [`zstm_certify::CertifiedFactory`], checks every recorded
//! history with the `zstm-history` checkers, shrinks any violation with
//! [`minimize_schedule`](crate::minimize_schedule()), and renders the
//! shrunk schedule as a ready-to-commit Rust regression test for
//! `tests/corpus/` (see `tests/corpus/README.md` for the promotion
//! workflow).
//!
//! ```
//! use zstm_sim::fuzz::{fuzz_schedules, FuzzOptions};
//!
//! let report = fuzz_schedules(&FuzzOptions {
//!     seed: 7,
//!     max_schedules: 4,
//!     ..FuzzOptions::default()
//! });
//! // 4 schedule rounds x 5 engines x {native, certified}.
//! assert_eq!(report.runs, 4 * 5 * 2);
//! assert!(report.counterexamples.is_empty(), "engines are believed sound");
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use zstm_certify::CertifiedFactory;
use zstm_core::{EventSink, StmConfig, TxKind};
use zstm_cs::CsStm;
use zstm_history::{
    check_causal_serializable, check_linearizable, check_serializable, check_z_linearizable,
    History, Recorder,
};
use zstm_lsa::LsaStm;
use zstm_sstm::SStm;
use zstm_tl2::Tl2Stm;
use zstm_util::XorShift64;
use zstm_z::ZStm;

use crate::{minimize_schedule, run_schedule, Op, Outcome, Schedule, TxScript};

/// One of the five paper engines, addressable by value so the fuzzer can
/// iterate over the full matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// LSA-STM (multi-version lazy snapshot; linearizable).
    Lsa,
    /// TL2-style single-version STM (linearizable).
    Tl2,
    /// CS-STM over vector clocks (causally serializable only — the one
    /// engine whose *native* criterion admits write skew).
    Cs,
    /// S-STM with a precedence graph (serializable).
    S,
    /// Z-STM, the paper's contribution (serializable + z-linearizable).
    Z,
}

impl Engine {
    /// Every engine, in a fixed order.
    pub const ALL: [Engine; 5] = [Engine::Lsa, Engine::Tl2, Engine::Cs, Engine::S, Engine::Z];

    /// Human-readable name (matches the factory's `name()`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Lsa => "lsa",
            Engine::Tl2 => "tl2",
            Engine::Cs => "cs",
            Engine::S => "s-stm",
            Engine::Z => "z-stm",
        }
    }

    /// Identifier-safe name for generated test functions and file names.
    pub fn ident(self) -> &'static str {
        match self {
            Engine::Lsa => "lsa",
            Engine::Tl2 => "tl2",
            Engine::Cs => "cs",
            Engine::S => "s_stm",
            Engine::Z => "z_stm",
        }
    }

    /// Whether scripted [`TxKind::Long`] transactions are meaningful for
    /// this engine (mirrors `tests/random_schedules.rs`: only LSA and
    /// Z-STM give long transactions a distinct code path).
    pub fn allows_long(self) -> bool {
        matches!(self, Engine::Lsa | Engine::Z)
    }

    /// Checks `history` against the engine's **native** claimed
    /// criterion from the paper.
    pub fn check_native(self, history: &History) -> Result<(), String> {
        let first = match self {
            Engine::Lsa | Engine::Tl2 => check_linearizable(history),
            Engine::Cs => check_causal_serializable(history),
            Engine::S | Engine::Z => check_serializable(history),
        };
        first.map_err(|v| v.to_string())?;
        if self == Engine::Z {
            check_z_linearizable(history).map_err(|v| v.to_string())?;
        }
        Ok(())
    }
}

/// Replays `schedule` on `engine` — natively or wrapped in the SSI
/// certifier — with a [`Recorder`] attached, and returns the driver
/// outcome together with the recorded history.
pub fn run_recorded(engine: Engine, certified: bool, schedule: &Schedule) -> (Outcome, History) {
    let recorder = Arc::new(Recorder::new());
    let mut config = StmConfig::new(schedule.threads.len().max(2));
    config.event_sink(Arc::clone(&recorder) as Arc<dyn EventSink>);
    let outcome = match (engine, certified) {
        (Engine::Lsa, false) => run_schedule(&Arc::new(LsaStm::new(config)), schedule),
        (Engine::Tl2, false) => run_schedule(&Arc::new(Tl2Stm::new(config)), schedule),
        (Engine::Cs, false) => run_schedule(&Arc::new(CsStm::with_vector_clock(config)), schedule),
        (Engine::S, false) => run_schedule(&Arc::new(SStm::with_vector_clock(config)), schedule),
        (Engine::Z, false) => run_schedule(&Arc::new(ZStm::new(config)), schedule),
        (Engine::Lsa, true) => run_schedule(
            &Arc::new(CertifiedFactory::new(config, LsaStm::new)),
            schedule,
        ),
        (Engine::Tl2, true) => run_schedule(
            &Arc::new(CertifiedFactory::new(config, Tl2Stm::new)),
            schedule,
        ),
        (Engine::Cs, true) => run_schedule(
            &Arc::new(CertifiedFactory::new(config, CsStm::with_vector_clock)),
            schedule,
        ),
        (Engine::S, true) => run_schedule(
            &Arc::new(CertifiedFactory::new(config, SStm::with_vector_clock)),
            schedule,
        ),
        (Engine::Z, true) => run_schedule(
            &Arc::new(CertifiedFactory::new(config, ZStm::new)),
            schedule,
        ),
    };
    (outcome, recorder.history())
}

/// Checks a recorded history: dirty reads are always violations; beyond
/// that, certified runs must be **serializable** (the certifier's
/// guarantee, regardless of engine) while native runs must satisfy the
/// engine's own criterion. Returns a description of the first violation
/// found, or `None` if the history is clean.
pub fn describe_violation(engine: Engine, certified: bool, history: &History) -> Option<String> {
    if let Some((tx, obj, version)) = history.find_dirty_read() {
        return Some(format!(
            "dirty read: {tx:?} observed uncommitted {obj:?} version {version:?}"
        ));
    }
    let checked = if certified {
        check_serializable(history).map_err(|v| v.to_string())
    } else {
        engine.check_native(history)
    };
    checked.err()
}

/// Generates a random schedule with the same shape envelope as the
/// proptest generators in `tests/random_schedules.rs`: 2–4 objects, 2–3
/// threads of 1–3 transactions of 1–4 operations each, long
/// transactions with probability 1/5 when `allow_long`, and a random
/// interleaving prefix (the driver finishes leftover steps round-robin).
pub fn random_schedule(rng: &mut XorShift64, allow_long: bool) -> Schedule {
    let objects = 2 + rng.next_range(3) as usize;
    let nthreads = 2 + rng.next_range(2) as usize;
    let threads = (0..nthreads)
        .map(|_| {
            let ntxs = 1 + rng.next_range(3) as usize;
            (0..ntxs)
                .map(|_| {
                    let kind = if allow_long && rng.next_range(5) == 0 {
                        TxKind::Long
                    } else {
                        TxKind::Short
                    };
                    let nops = 1 + rng.next_range(4) as usize;
                    let ops = (0..nops)
                        .map(|_| {
                            let obj = rng.next_range(objects as u64) as usize;
                            if rng.next_range(2) == 0 {
                                Op::Read(obj)
                            } else {
                                Op::Write(obj)
                            }
                        })
                        .collect();
                    TxScript { kind, ops }
                })
                .collect()
        })
        .collect();
    let len = rng.next_range(40) as usize;
    let interleaving = (0..len)
        .map(|_| rng.next_range(nthreads as u64) as usize)
        .collect();
    Schedule {
        objects,
        threads,
        interleaving,
    }
}

/// Generates a write-skew-shaped schedule: `n` threads over `n`
/// objects, each transaction reading **every** object and then writing
/// its right neighbour `(t + 1) % n`. Each pair of neighbours forms an
/// rw-antidependency in both directions — the Cahill dangerous
/// structure — whenever their footprints overlap in time, which a
/// random full-length interleaving makes likely.
pub fn write_skew_schedule(rng: &mut XorShift64) -> Schedule {
    let nthreads = 2 + rng.next_range(2) as usize;
    let objects = nthreads;
    let threads: Vec<Vec<TxScript>> = (0..nthreads)
        .map(|t| {
            let mut ops: Vec<Op> = (0..objects).map(Op::Read).collect();
            ops.push(Op::Write((t + 1) % objects));
            vec![TxScript {
                kind: TxKind::Short,
                ops,
            }]
        })
        .collect();
    // A shuffled bag with each thread repeated once per step fully
    // determines the interleaving (no round-robin tail left over).
    let mut interleaving = Vec::new();
    for (t, scripts) in threads.iter().enumerate() {
        let steps: usize = scripts.iter().map(|tx| tx.ops.len()).sum();
        interleaving.extend(std::iter::repeat_n(t, steps));
    }
    for i in (1..interleaving.len()).rev() {
        let j = rng.next_range(i as u64 + 1) as usize;
        interleaving.swap(i, j);
    }
    Schedule {
        objects,
        threads,
        interleaving,
    }
}

/// Options for [`fuzz_schedules`].
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Seed for the deterministic schedule generator.
    pub seed: u64,
    /// Maximum number of schedule rounds (each round runs every engine
    /// natively and certified).
    pub max_schedules: usize,
    /// Wall-clock budget; the fuzzer stops starting new rounds once it
    /// is exhausted.
    pub time_budget: Duration,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0x5EED_F022,
            max_schedules: 64,
            time_budget: Duration::from_secs(30),
        }
    }
}

/// A shrunk, reproducible consistency violation found by the fuzzer.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Engine the violation was observed on.
    pub engine: Engine,
    /// Whether the engine was wrapped in the SSI certifier.
    pub certified: bool,
    /// Checker message from the original (pre-shrink) failure.
    pub violation: String,
    /// The minimized schedule that still reproduces the violation.
    pub schedule: Schedule,
    /// Ready-to-commit Rust source for `tests/corpus/` (see
    /// [`regression_test_source`]).
    pub regression_test: String,
}

impl Counterexample {
    /// Identifier-safe name, used for both the test function and the
    /// suggested corpus file name.
    pub fn name(&self) -> String {
        let mode = if self.certified {
            "certified"
        } else {
            "native"
        };
        format!("fuzz_{}_{}", self.engine.ident(), mode)
    }
}

/// Aggregate result of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Schedule rounds generated.
    pub schedules: usize,
    /// Individual engine runs (rounds × engines × {native, certified}).
    pub runs: usize,
    /// Transactions committed across all certified runs.
    pub certified_commits: usize,
    /// Aborts injected by the certifier across all certified runs.
    pub certification_aborts: u64,
    /// Shrunk violations (empty on a healthy tree).
    pub counterexamples: Vec<Counterexample>,
}

/// Runs the adversarial fuzzer: generates schedules (every third round
/// is write-skew-shaped, the rest random), replays each on all five
/// engines natively and under [`CertifiedFactory`], checks every
/// history, and shrinks + promotes any violation via
/// [`minimize_schedule`](crate::minimize_schedule()) and
/// [`regression_test_source`]. Fully deterministic for a given seed
/// (modulo the wall-clock budget).
pub fn fuzz_schedules(options: &FuzzOptions) -> FuzzReport {
    let mut rng = XorShift64::new(options.seed);
    let start = Instant::now();
    let mut report = FuzzReport::default();
    while report.schedules < options.max_schedules && start.elapsed() < options.time_budget {
        let round = report.schedules;
        report.schedules += 1;
        let skewed = round % 3 == 2;
        let base = if skewed {
            Some(write_skew_schedule(&mut rng))
        } else {
            None
        };
        for engine in Engine::ALL {
            let schedule = match &base {
                Some(s) => s.clone(),
                None => random_schedule(&mut rng, engine.allows_long()),
            };
            for certified in [false, true] {
                let (outcome, history) = run_recorded(engine, certified, &schedule);
                report.runs += 1;
                if certified {
                    report.certified_commits += outcome.committed;
                    report.certification_aborts += outcome.stats.certification_aborts();
                }
                if let Some(violation) = describe_violation(engine, certified, &history) {
                    report
                        .counterexamples
                        .push(promote(engine, certified, violation, &schedule));
                }
            }
        }
    }
    report
}

/// Shrinks a violating schedule and renders it as a regression test.
fn promote(
    engine: Engine,
    certified: bool,
    violation: String,
    schedule: &Schedule,
) -> Counterexample {
    let mut fails = |candidate: &Schedule| {
        let (_, history) = run_recorded(engine, certified, candidate);
        describe_violation(engine, certified, &history).is_some()
    };
    let shrunk = minimize_schedule(schedule, &mut fails);
    let mode = if certified { "certified" } else { "native" };
    let name = format!("fuzz_{}_{}", engine.ident(), mode);
    let regression_test = regression_test_source(&name, engine, certified, &violation, &shrunk);
    Counterexample {
        engine,
        certified,
        violation,
        schedule: shrunk,
        regression_test,
    }
}

/// Finds the minimal *divergence witness* for a schedule: the native
/// engine commits a non-serializable history while the certified
/// wrapper keeps the history serializable by injecting at least one
/// certification abort. Returns `None` if `schedule` is not such a
/// witness. This is the promotion path for `tests/corpus/` seeds that
/// document what certification buys on a weaker engine (only CS-STM is
/// natively weaker than serializable, so in practice `engine` is
/// [`Engine::Cs`]).
pub fn shrunk_divergence(engine: Engine, schedule: &Schedule) -> Option<Schedule> {
    let mut diverges = |candidate: &Schedule| {
        let (_, native) = run_recorded(engine, false, candidate);
        if check_serializable(&native).is_ok() {
            return false;
        }
        let (outcome, certified) = run_recorded(engine, true, candidate);
        check_serializable(&certified).is_ok() && outcome.stats.certification_aborts() >= 1
    };
    if !diverges(schedule) {
        return None;
    }
    Some(minimize_schedule(schedule, &mut diverges))
}

fn op_literal(op: &Op) -> String {
    match op {
        Op::Read(i) => format!("Op::Read({i})"),
        Op::Write(i) => format!("Op::Write({i})"),
        Op::ReadRetry(i) => format!("Op::ReadRetry({i})"),
    }
}

/// Renders `schedule` as a Rust expression (used verbatim inside the
/// generated regression tests).
pub fn schedule_literal(schedule: &Schedule) -> String {
    let mut s = String::new();
    s.push_str("Schedule {\n");
    s.push_str(&format!("        objects: {},\n", schedule.objects));
    s.push_str("        threads: vec![\n");
    for thread in &schedule.threads {
        s.push_str("            vec![\n");
        for tx in thread {
            let ops: Vec<String> = tx.ops.iter().map(op_literal).collect();
            s.push_str("                TxScript {\n");
            s.push_str(&format!(
                "                    kind: TxKind::{:?},\n",
                tx.kind
            ));
            s.push_str(&format!(
                "                    ops: vec![{}],\n",
                ops.join(", ")
            ));
            s.push_str("                },\n");
        }
        s.push_str("            ],\n");
    }
    s.push_str("        ],\n");
    let steps: Vec<String> = schedule
        .interleaving
        .iter()
        .map(ToString::to_string)
        .collect();
    s.push_str(&format!(
        "        interleaving: vec![{}],\n",
        steps.join(", ")
    ));
    s.push_str("    }");
    s
}

/// Renders a shrunk counterexample as a complete, ready-to-commit Rust
/// test module for `tests/corpus/`: it replays the schedule on the same
/// engine/wrapper and asserts the criterion that failed when the
/// counterexample was found, so once the underlying bug is fixed the
/// file pins the fix forever.
pub fn regression_test_source(
    name: &str,
    engine: Engine,
    certified: bool,
    violation: &str,
    schedule: &Schedule,
) -> String {
    let factory = match (engine, certified) {
        (Engine::Lsa, false) => "LsaStm::new(config)".to_string(),
        (Engine::Tl2, false) => "Tl2Stm::new(config)".to_string(),
        (Engine::Cs, false) => "CsStm::with_vector_clock(config)".to_string(),
        (Engine::S, false) => "SStm::with_vector_clock(config)".to_string(),
        (Engine::Z, false) => "ZStm::new(config)".to_string(),
        (Engine::Lsa, true) => "CertifiedFactory::new(config, LsaStm::new)".to_string(),
        (Engine::Tl2, true) => "CertifiedFactory::new(config, Tl2Stm::new)".to_string(),
        (Engine::Cs, true) => "CertifiedFactory::new(config, CsStm::with_vector_clock)".to_string(),
        (Engine::S, true) => "CertifiedFactory::new(config, SStm::with_vector_clock)".to_string(),
        (Engine::Z, true) => "CertifiedFactory::new(config, ZStm::new)".to_string(),
    };
    let (checker_imports, checks) = if certified {
        (
            "check_serializable",
            vec![
                "check_serializable(&history).expect(\"certified history must be serializable\");"
                    .to_string(),
            ],
        )
    } else {
        match engine {
            Engine::Lsa | Engine::Tl2 => (
                "check_linearizable",
                vec!["check_linearizable(&history).expect(\"history must be linearizable\");"
                    .to_string()],
            ),
            Engine::Cs => (
                "check_causal_serializable",
                vec![
                    "check_causal_serializable(&history).expect(\"history must be causally serializable\");"
                        .to_string(),
                ],
            ),
            Engine::S => (
                "check_serializable",
                vec!["check_serializable(&history).expect(\"history must be serializable\");"
                    .to_string()],
            ),
            Engine::Z => (
                "check_serializable, check_z_linearizable",
                vec![
                    "check_serializable(&history).expect(\"history must be serializable\");"
                        .to_string(),
                    "check_z_linearizable(&history).expect(\"history must be z-linearizable\");"
                        .to_string(),
                ],
            ),
        }
    };
    let mode = if certified {
        "certified (SSI-wrapped)"
    } else {
        "native"
    };
    let mut s = String::new();
    s.push_str(&format!(
        "//! Auto-promoted fuzz counterexample: {mode} {} violated its\n",
        engine.name()
    ));
    s.push_str("//! criterion on this schedule when the file was generated.\n");
    s.push_str("//!\n");
    for line in violation.lines() {
        s.push_str(&format!("//! Violation: {line}\n"));
    }
    s.push_str("//!\n");
    s.push_str("//! Promotion workflow: see `tests/corpus/README.md`.\n");
    s.push('\n');
    s.push_str("use std::sync::Arc;\n\n");
    s.push_str("use zstm::core::EventSink;\n");
    s.push_str(&format!(
        "use zstm::history::{{{checker_imports}, Recorder}};\n"
    ));
    s.push_str("use zstm::prelude::*;\n");
    s.push_str("use zstm_sim::{run_schedule, Op, Schedule, TxScript};\n\n");
    s.push_str("fn schedule() -> Schedule {\n");
    s.push_str(&format!("    {}\n", schedule_literal(schedule)));
    s.push_str("}\n\n");
    s.push_str("#[test]\n");
    s.push_str(&format!("fn {name}() {{\n"));
    s.push_str("    let schedule = schedule();\n");
    s.push_str("    let recorder = Arc::new(Recorder::new());\n");
    s.push_str("    let mut config = StmConfig::new(schedule.threads.len().max(2));\n");
    s.push_str("    config.event_sink(Arc::clone(&recorder) as Arc<dyn EventSink>);\n");
    s.push_str(&format!("    let stm = Arc::new({factory});\n"));
    s.push_str("    let _ = run_schedule(&stm, &schedule);\n");
    s.push_str("    let history = recorder.history();\n");
    s.push_str("    assert!(history.find_dirty_read().is_none(), \"dirty read\");\n");
    for check in checks {
        s.push_str(&format!("    {check}\n"));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic two-transaction write skew, deliberately bloated with
    /// redundant reads and a fully explicit interleaving so the shrinker
    /// has work to do.
    fn bloated_write_skew() -> Schedule {
        Schedule {
            objects: 2,
            threads: vec![
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Read(1), Op::Write(0)],
                }],
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Read(1), Op::Write(1)],
                }],
            ],
            interleaving: vec![0, 1, 0, 1, 0, 1],
        }
    }

    /// The minimal divergence witness the shrinker reduces
    /// [`bloated_write_skew`] to; `tests/corpus/write_skew_cs.rs` pins
    /// the same schedule.
    fn classic_write_skew_core() -> Schedule {
        Schedule {
            objects: 2,
            threads: vec![
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(1), Op::Write(0)],
                }],
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Write(1)],
                }],
            ],
            interleaving: vec![],
        }
    }

    #[test]
    fn cs_native_admits_write_skew_certified_rejects_it() {
        let schedule = bloated_write_skew();
        let (native_outcome, native_history) = run_recorded(Engine::Cs, false, &schedule);
        assert_eq!(native_outcome.committed, 2, "CS commits both natively");
        assert!(check_serializable(&native_history).is_err(), "write skew");
        assert!(check_causal_serializable(&native_history).is_ok());

        let (cert_outcome, cert_history) = run_recorded(Engine::Cs, true, &schedule);
        assert!(check_serializable(&cert_history).is_ok());
        assert_eq!(cert_outcome.stats.certification_aborts(), 1);
    }

    #[test]
    fn minimize_is_idempotent_and_output_still_fails() {
        let schedule = bloated_write_skew();
        let mut fails = |candidate: &Schedule| {
            let (_, history) = run_recorded(Engine::Cs, false, candidate);
            check_serializable(&history).is_err()
        };
        assert!(fails(&schedule), "seed must fail the predicate");
        let once = minimize_schedule(&schedule, &mut fails);
        assert!(fails(&once), "shrunk schedule must still fail");
        let twice = minimize_schedule(&once, &mut fails);
        assert_eq!(once, twice, "minimize_schedule must be idempotent");
        assert!(
            once.total_steps() <= schedule.total_steps(),
            "shrinking must not grow the schedule"
        );
    }

    #[test]
    fn write_skew_divergence_shrinks_to_classic_core() {
        let shrunk =
            shrunk_divergence(Engine::Cs, &bloated_write_skew()).expect("divergence witness");
        assert_eq!(shrunk, classic_write_skew_core());
    }

    #[test]
    fn benign_schedule_is_not_a_divergence_witness() {
        // Disjoint key sets: serializable natively, nothing to diverge on.
        let schedule = Schedule {
            objects: 2,
            threads: vec![
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Write(0)],
                }],
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(1), Op::Write(1)],
                }],
            ],
            interleaving: vec![0, 1, 0, 1],
        };
        assert!(shrunk_divergence(Engine::Cs, &schedule).is_none());
    }

    #[test]
    fn regression_source_replays_standalone() {
        // The emitted source must at least contain the schedule literal,
        // the right factory and the right checker.
        let schedule = classic_write_skew_core();
        let source =
            regression_test_source("fuzz_cs_native", Engine::Cs, false, "write skew", &schedule);
        assert!(source.contains("fn fuzz_cs_native()"));
        assert!(source.contains("CsStm::with_vector_clock(config)"));
        assert!(source.contains("check_causal_serializable"));
        assert!(source.contains("Op::Read(1), Op::Write(0)"));
        let certified =
            regression_test_source("fuzz_cs_certified", Engine::Cs, true, "cycle", &schedule);
        assert!(certified.contains("CertifiedFactory::new(config, CsStm::with_vector_clock)"));
        assert!(certified.contains("check_serializable"));
    }

    #[test]
    fn fuzz_smoke_finds_no_violations_and_exercises_certifier() {
        let report = fuzz_schedules(&FuzzOptions {
            seed: 1,
            max_schedules: 9,
            time_budget: Duration::from_secs(60),
        });
        assert_eq!(report.schedules, 9);
        assert_eq!(report.runs, 9 * Engine::ALL.len() * 2);
        assert!(
            report.counterexamples.is_empty(),
            "unexpected violations: {:?}",
            report
                .counterexamples
                .iter()
                .map(|c| (c.engine, c.certified, c.violation.clone()))
                .collect::<Vec<_>>()
        );
        assert!(report.certified_commits > 0, "certified runs must commit");
    }
}
