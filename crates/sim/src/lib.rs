//! Deterministic schedule driver for the `zstm` STMs.
//!
//! A [`Schedule`] scripts, per logical thread, a sequence of transactions
//! (each a list of reads and writes over a shared object pool) plus a
//! global *interleaving*: the exact order in which threads take steps.
//! [`run_schedule`] replays the schedule against any STM implementing
//! [`zstm_core::TmFactory`] one step at a time, so racy
//! interleavings become reproducible test cases.
//!
//! Combined with [`zstm_history`]'s checkers this turns into a
//! property-based consistency test: generate random schedules, run them,
//! and assert the STM's claimed criterion on the recorded history
//! (see `tests/random_schedules.rs` at the workspace root). When a random
//! schedule fails, [`minimize_schedule`] delta-debugs it down to a locally
//! minimal reproducer before it is reported.
//!
//! [`Op::ReadRetry`] scripts the API layer's blocking guard ("retry while
//! this object is zero") so retry semantics can be pinned under exact
//! interleavings; the driver records such attempts in
//! [`Outcome::retried`] and the merged [`Outcome::stats`].
//!
//! Each logical thread runs on its own OS thread but only advances when
//! the driver hands it a step token over a rendezvous channel, so the
//! interleaving is exactly the scripted one (up to the STM's own internal
//! waiting).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use zstm_core::{StmConfig, TxKind};
//! use zstm_sim::{run_schedule, Op, Schedule, TxScript};
//! use zstm_lsa::LsaStm;
//!
//! let schedule = Schedule {
//!     objects: 2,
//!     threads: vec![
//!         vec![TxScript {
//!             kind: TxKind::Short,
//!             ops: vec![Op::Read(0), Op::Write(1)],
//!         }],
//!         vec![TxScript {
//!             kind: TxKind::Short,
//!             ops: vec![Op::Read(1), Op::Write(0)],
//!         }],
//!     ],
//!     // Interleave the two transactions step by step.
//!     interleaving: vec![0, 1, 0, 1, 0, 1],
//! };
//! let stm = Arc::new(LsaStm::new(StmConfig::new(2)));
//! let outcome = run_schedule(&stm, &schedule);
//! assert_eq!(outcome.attempted, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;

use std::sync::Arc;

use std::sync::mpsc::{sync_channel as bounded, Receiver, SyncSender as Sender};
use zstm_core::{AbortReason, TmFactory, TmThread, TmTx, TxKind, TxStats};

/// One scripted transactional operation over the shared object pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read object `i`.
    Read(usize),
    /// Write object `i` (the driver supplies a unique value).
    Write(usize),
    /// Read object `i` and, if its value is zero, end the transaction
    /// with a blocking retry ([`AbortReason::Retry`]) — the scripted
    /// equivalent of the API layer's `tx.retry()` guard ("wait until this
    /// object has been written"). The driver rolls the transaction back
    /// with the retry reason at its next step and counts it in
    /// [`Outcome::retried`]; it does **not** re-run the script (the point
    /// of the sim is to observe exactly the scripted attempt).
    ReadRetry(usize),
}

/// One scripted transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxScript {
    /// Short or long.
    pub kind: TxKind,
    /// Operations in program order; the transaction commits after the
    /// last one.
    pub ops: Vec<Op>,
}

/// A complete scripted execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Size of the shared object pool (objects are `i64` variables).
    pub objects: usize,
    /// Per logical thread: the transactions it runs, in order.
    pub threads: Vec<Vec<TxScript>>,
    /// Which thread takes the next step. A *step* is one operation or the
    /// commit that follows a transaction's last operation. Extra entries
    /// for finished threads are skipped; if the interleaving ends early,
    /// remaining work is driven round-robin.
    pub interleaving: Vec<usize>,
}

impl Schedule {
    /// Total number of steps the schedule needs (ops + one commit per
    /// transaction).
    pub fn total_steps(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .map(|tx| tx.ops.len() + 1)
            .sum()
    }

    /// Steps required by thread `t`.
    pub fn steps_of(&self, t: usize) -> usize {
        self.threads[t].iter().map(|tx| tx.ops.len() + 1).sum()
    }
}

/// Enumerates **every** interleaving of the given per-thread step counts
/// (all multiset permutations), enabling exhaustive systematic concurrency
/// testing of small schedules.
///
/// The count is `(Σ steps)! / Π steps!` — keep the schedules tiny (e.g.
/// two transactions of ≤3 operations give at most a few hundred
/// interleavings).
///
/// # Examples
///
/// ```
/// use zstm_sim::enumerate_interleavings;
///
/// let all = enumerate_interleavings(&[2, 1]);
/// assert_eq!(all, vec![
///     vec![0, 0, 1],
///     vec![0, 1, 0],
///     vec![1, 0, 0],
/// ]);
/// ```
pub fn enumerate_interleavings(steps: &[usize]) -> Vec<Vec<usize>> {
    fn go(remaining: &mut [usize], current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(current.clone());
            return;
        }
        for thread in 0..remaining.len() {
            if remaining[thread] > 0 {
                remaining[thread] -= 1;
                current.push(thread);
                go(remaining, current, out);
                current.pop();
                remaining[thread] += 1;
            }
        }
    }
    let mut remaining = steps.to_vec();
    let mut out = Vec::new();
    go(&mut remaining, &mut Vec::new(), &mut out);
    out
}

/// What happened when a schedule ran.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Transactions attempted (each script is attempted exactly once — the
    /// driver does not retry aborted transactions, so the recorded history
    /// matches the script).
    pub attempted: usize,
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions that aborted (at an operation or at commit).
    pub aborted: usize,
    /// The subset of `aborted` that ended in a blocking retry
    /// ([`Op::ReadRetry`] observing zero).
    pub retried: usize,
    /// Values read, per thread, in program order (committed and aborted
    /// transactions both contribute; useful for result checking).
    pub reads: Vec<Vec<i64>>,
    /// Per-thread statistics merged across every logical thread, so tests
    /// can assert the abort-reason breakdown (e.g. retries counted under
    /// [`AbortReason::Retry`]).
    pub stats: TxStats,
}

enum WorkerMsg {
    /// Perform one step; reply on the embedded channel when done.
    Step(Sender<()>),
    /// No more steps; shut down.
    Done,
}

/// Replays `schedule` against `stm`, driving the scripted interleaving
/// step by step.
///
/// The STM must be configured for at least `schedule.threads.len()`
/// logical threads. Aborted transactions are *not* retried: the point is
/// to observe exactly the scripted attempt.
///
/// # Panics
///
/// Panics if a worker thread panics or an interleaving entry names a
/// nonexistent thread.
pub fn run_schedule<F: TmFactory>(stm: &Arc<F>, schedule: &Schedule) -> Outcome {
    let objects: Arc<Vec<F::Var<i64>>> = Arc::new(
        (0..schedule.objects.max(1))
            .map(|_| stm.new_var(0i64))
            .collect(),
    );

    let mut senders: Vec<Sender<WorkerMsg>> = Vec::new();
    let mut steps_left: Vec<usize> = Vec::new();
    let mut handles = Vec::new();

    for scripts in schedule.threads.iter().cloned() {
        let (tx_msg, rx_msg): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = bounded(1);
        senders.push(tx_msg);
        steps_left.push(scripts.iter().map(|s| s.ops.len() + 1).sum());
        let mut thread = stm.register_thread();
        let objects = Arc::clone(&objects);
        handles.push(std::thread::spawn(move || {
            let mut reads: Vec<i64> = Vec::new();
            let mut attempted = 0usize;
            let mut committed = 0usize;
            let mut aborted = 0usize;
            let mut retried = 0usize;
            let mut value_counter = 1_000 * (thread.thread_id().slot() as i64 + 1);

            'scripts: for script in scripts {
                attempted += 1;
                let mut tx = Some(thread.begin(script.kind));
                // `Some(reason)` once the attempt is doomed; the reason is
                // used for the rollback so statistics attribute it
                // correctly (a `ReadRetry` that saw zero dooms with
                // `Retry`).
                let mut doomed: Option<AbortReason> = None;
                for op in &script.ops {
                    // Wait for our step token.
                    match recv_step(&rx_msg) {
                        None => break 'scripts,
                        Some(ack) => {
                            if let Some(tx) = tx.as_mut() {
                                match op {
                                    Op::Read(i) => match tx.read(&objects[i % objects.len()]) {
                                        Ok(v) => reads.push(v),
                                        Err(abort) => doomed = Some(abort.reason()),
                                    },
                                    Op::Write(i) => {
                                        value_counter += 1;
                                        if let Err(abort) =
                                            tx.write(&objects[i % objects.len()], value_counter)
                                        {
                                            doomed = Some(abort.reason());
                                        }
                                    }
                                    Op::ReadRetry(i) => {
                                        match tx.read(&objects[i % objects.len()]) {
                                            Ok(v) => {
                                                reads.push(v);
                                                if v == 0 {
                                                    doomed = Some(AbortReason::Retry);
                                                }
                                            }
                                            Err(abort) => doomed = Some(abort.reason()),
                                        }
                                    }
                                }
                            }
                            let _ = ack.send(());
                            if doomed.is_some() {
                                break;
                            }
                        }
                    }
                }
                // The commit (or rollback) step. Tokens for unexecuted ops
                // of a doomed transaction still arrive and are drained as
                // no-ops by the outer loop below.
                match recv_step(&rx_msg) {
                    None => break 'scripts,
                    Some(ack) => {
                        let tx = tx.take().expect("transaction present");
                        if let Some(reason) = doomed {
                            tx.rollback(reason);
                            aborted += 1;
                            if reason == AbortReason::Retry {
                                retried += 1;
                            }
                        } else {
                            match tx.commit() {
                                Ok(()) => committed += 1,
                                Err(_) => aborted += 1,
                            }
                        }
                        let _ = ack.send(());
                    }
                }
            }
            // Drain any leftover tokens.
            while let Some(ack) = recv_step(&rx_msg) {
                let _ = ack.send(());
            }
            (
                attempted,
                committed,
                aborted,
                retried,
                reads,
                thread.take_stats(),
            )
        }));
    }

    fn recv_step(rx: &Receiver<WorkerMsg>) -> Option<Sender<()>> {
        match rx.recv() {
            Ok(WorkerMsg::Step(ack)) => Some(ack),
            Ok(WorkerMsg::Done) | Err(_) => None,
        }
    }

    // Drive the interleaving. A doomed transaction still consumes its
    // scripted steps (as no-ops), keeping the schedule aligned.
    fn drive(senders: &[Sender<WorkerMsg>], steps_left: &mut [usize], thread: usize) {
        if thread < senders.len() && steps_left[thread] > 0 {
            let (ack_tx, ack_rx) = bounded(0);
            if senders[thread].send(WorkerMsg::Step(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
                steps_left[thread] -= 1;
            }
        }
    }
    for &thread in &schedule.interleaving {
        drive(
            &senders,
            &mut steps_left,
            thread % schedule.threads.len().max(1),
        );
    }
    // Finish any remaining work round-robin so every script completes.
    loop {
        let mut progressed = false;
        for thread in 0..steps_left.len() {
            if steps_left[thread] > 0 {
                drive(&senders, &mut steps_left, thread);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    for sender in &senders {
        let _ = sender.send(WorkerMsg::Done);
    }

    let mut outcome = Outcome::default();
    for handle in handles {
        let (attempted, committed, aborted, retried, reads, stats) =
            handle.join().expect("schedule worker panicked");
        outcome.attempted += attempted;
        outcome.committed += committed;
        outcome.aborted += aborted;
        outcome.retried += retried;
        outcome.reads.push(reads);
        outcome.stats.merge(&stats);
    }
    outcome
}

/// Shrinks a failing [`Schedule`] by delta debugging.
///
/// `fails` must return `true` for any schedule that still reproduces the
/// failure (typically: run it and check the violated property). Starting
/// from `schedule` — which should itself fail — the minimizer greedily
/// tries to
///
/// 1. remove whole transactions,
/// 2. remove single operations inside the remaining transactions, and
/// 3. remove interleaving entries (ddmin-style chunks, then singles;
///    always safe because [`run_schedule`] drives leftover work
///    round-robin),
///
/// re-testing after every candidate edit and keeping it only if the
/// failure persists, until no single edit makes progress. The result is a
/// locally minimal reproducer: dropping any one transaction, operation or
/// interleaving entry makes the failure disappear.
///
/// The number of logical threads is preserved (emptied threads keep an
/// empty script vector) so the schedule stays valid for the same
/// `StmConfig`.
///
/// # Examples
///
/// ```
/// use zstm_core::TxKind;
/// use zstm_sim::{minimize_schedule, Op, Schedule, TxScript};
///
/// let bloated = Schedule {
///     objects: 2,
///     threads: vec![vec![
///         TxScript { kind: TxKind::Short, ops: vec![Op::Read(0), Op::Read(1)] },
///         TxScript { kind: TxKind::Short, ops: vec![Op::Write(1)] },
///     ]],
///     interleaving: vec![0; 5],
/// };
/// // "Fails" whenever any write op is present — the minimal reproducer is
/// // a single one-op transaction.
/// let minimal = minimize_schedule(&bloated, &mut |s| {
///     s.threads.iter().flatten().any(|tx| {
///         tx.ops.iter().any(|op| matches!(op, Op::Write(_)))
///     })
/// });
/// let ops: usize = minimal.threads.iter().flatten().map(|tx| tx.ops.len()).sum();
/// assert_eq!(ops, 1);
/// assert!(minimal.interleaving.is_empty());
/// ```
pub fn minimize_schedule(
    schedule: &Schedule,
    fails: &mut dyn FnMut(&Schedule) -> bool,
) -> Schedule {
    let mut best = schedule.clone();
    if !fails(&best) {
        return best;
    }
    loop {
        let mut improved = false;

        // Pass 1: drop whole transactions.
        'txs: loop {
            for t in 0..best.threads.len() {
                for i in 0..best.threads[t].len() {
                    let mut candidate = best.clone();
                    candidate.threads[t].remove(i);
                    if fails(&candidate) {
                        best = candidate;
                        improved = true;
                        continue 'txs;
                    }
                }
            }
            break;
        }

        // Pass 2: drop single operations.
        'ops: loop {
            for t in 0..best.threads.len() {
                for i in 0..best.threads[t].len() {
                    for o in 0..best.threads[t][i].ops.len() {
                        let mut candidate = best.clone();
                        candidate.threads[t][i].ops.remove(o);
                        if fails(&candidate) {
                            best = candidate;
                            improved = true;
                            continue 'ops;
                        }
                    }
                }
            }
            break;
        }

        // Pass 3: ddmin over the interleaving — chunks halving down to
        // single entries.
        let mut chunk = best.interleaving.len().div_ceil(2).max(1);
        while chunk >= 1 {
            let mut start = 0;
            while start < best.interleaving.len() {
                let end = (start + chunk).min(best.interleaving.len());
                let mut candidate = best.clone();
                candidate.interleaving.drain(start..end);
                if fails(&candidate) {
                    best = candidate;
                    improved = true;
                    // Re-test the same offset against the shrunk list.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstm_core::StmConfig;
    use zstm_lsa::LsaStm;
    use zstm_z::ZStm;

    fn rmw(kind: TxKind, obj: usize) -> TxScript {
        TxScript {
            kind,
            ops: vec![Op::Read(obj), Op::Write(obj)],
        }
    }

    #[test]
    fn serial_schedule_commits_everything() {
        let schedule = Schedule {
            objects: 2,
            threads: vec![
                vec![rmw(TxKind::Short, 0), rmw(TxKind::Short, 1)],
                vec![rmw(TxKind::Short, 0)],
            ],
            // Thread 0 completes both transactions, then thread 1 runs.
            interleaving: vec![0, 0, 0, 0, 0, 0, 1, 1, 1],
        };
        let stm = Arc::new(LsaStm::new(StmConfig::new(2)));
        let outcome = run_schedule(&stm, &schedule);
        assert_eq!(outcome.attempted, 3);
        assert_eq!(outcome.committed, 3);
        assert_eq!(outcome.aborted, 0);
    }

    #[test]
    fn interleaved_rmw_conflict_aborts_exactly_one() {
        // Two read-modify-writes of the same object, fully interleaved:
        // reads first, then writes — at most one can commit under any of
        // our STMs (single writer + validation).
        let schedule = Schedule {
            objects: 1,
            threads: vec![
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Write(0)],
                }],
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Write(0)],
                }],
            ],
            interleaving: vec![0, 1, 0, 1, 0, 1],
        };
        let stm = Arc::new(LsaStm::new(StmConfig::new(2)));
        let outcome = run_schedule(&stm, &schedule);
        assert_eq!(outcome.attempted, 2);
        assert_eq!(outcome.committed, 1, "lost update must be prevented");
        assert_eq!(outcome.aborted, 1);
    }

    #[test]
    fn long_and_short_zone_interaction_on_z() {
        // A long transaction scans both objects while a short updates one
        // in its zone — the exact Figure 4 T5 pattern.
        let schedule = Schedule {
            objects: 2,
            threads: vec![
                vec![TxScript {
                    kind: TxKind::Long,
                    ops: vec![Op::Read(0), Op::Read(1)],
                }],
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Write(0)],
                }],
            ],
            // L reads 0; S reads+writes 0 (joining the zone) and commits;
            // L reads 1 and commits.
            interleaving: vec![0, 1, 1, 1, 0, 0],
        };
        let stm = Arc::new(ZStm::new(StmConfig::new(2)));
        let outcome = run_schedule(&stm, &schedule);
        assert_eq!(outcome.committed, 2, "both must commit under Z-STM");
    }

    #[test]
    fn short_interleaving_is_padded_round_robin() {
        let schedule = Schedule {
            objects: 1,
            threads: vec![vec![rmw(TxKind::Short, 0)]],
            interleaving: vec![], // entirely driven by the round-robin tail
        };
        let stm = Arc::new(LsaStm::new(StmConfig::new(1)));
        let outcome = run_schedule(&stm, &schedule);
        assert_eq!(outcome.committed, 1);
    }

    #[test]
    fn read_retry_blocks_on_zero_and_passes_on_written() {
        // Thread 1 guards on object 0 (retry while zero); thread 0 writes
        // it. Writer-commits-first: the guard sees the value and commits.
        let write_then_guard = Schedule {
            objects: 1,
            threads: vec![
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Write(0)],
                }],
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::ReadRetry(0)],
                }],
            ],
            interleaving: vec![0, 0, 1, 1],
        };
        let stm = Arc::new(LsaStm::new(StmConfig::new(2)));
        let outcome = run_schedule(&stm, &write_then_guard);
        assert_eq!(outcome.committed, 2);
        assert_eq!(outcome.retried, 0);
        assert_eq!(outcome.stats.blocking_retries(), 0);

        // Guard-first: the guard reads zero and ends in a blocking retry,
        // attributed to AbortReason::Retry in the statistics.
        let guard_then_write = Schedule {
            objects: 1,
            threads: vec![
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Write(0)],
                }],
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::ReadRetry(0)],
                }],
            ],
            interleaving: vec![1, 1, 0, 0],
        };
        let stm = Arc::new(LsaStm::new(StmConfig::new(2)));
        let outcome = run_schedule(&stm, &guard_then_write);
        assert_eq!(outcome.committed, 1, "only the writer commits");
        assert_eq!(outcome.retried, 1);
        assert_eq!(outcome.aborted, 1);
        assert_eq!(outcome.stats.blocking_retries(), 1);
        assert_eq!(outcome.stats.conflict_aborts(), 0);
    }

    #[test]
    fn minimizer_prunes_to_a_local_minimum() {
        // A bloated schedule; the "failure" is: some transaction still
        // performs a ReadRetry on object 0 *and* thread 0 still has a
        // write. The minimum is one ReadRetry op and one Write op.
        let bloated = Schedule {
            objects: 3,
            threads: vec![
                vec![
                    TxScript {
                        kind: TxKind::Short,
                        ops: vec![Op::Write(0), Op::Write(1), Op::Read(2)],
                    },
                    TxScript {
                        kind: TxKind::Short,
                        ops: vec![Op::Read(1)],
                    },
                ],
                vec![TxScript {
                    kind: TxKind::Long,
                    ops: vec![Op::Read(2), Op::ReadRetry(0), Op::Read(1)],
                }],
            ],
            interleaving: vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
        };
        let fails = |s: &Schedule| {
            let has_guard = s
                .threads
                .iter()
                .flatten()
                .any(|tx| tx.ops.contains(&Op::ReadRetry(0)));
            let has_write = s.threads.first().is_some_and(|txs| {
                txs.iter()
                    .any(|tx| tx.ops.iter().any(|op| matches!(op, Op::Write(_))))
            });
            has_guard && has_write
        };
        let minimal = minimize_schedule(&bloated, &mut { fails });
        assert!(fails(&minimal), "minimizer must preserve the failure");
        let total_ops: usize = minimal
            .threads
            .iter()
            .flatten()
            .map(|tx| tx.ops.len())
            .sum();
        assert_eq!(total_ops, 2, "one write + one guard survive: {minimal:?}");
        assert!(minimal.interleaving.is_empty());
        assert_eq!(minimal.threads.len(), 2, "thread count is preserved");
    }

    #[test]
    fn minimizer_returns_passing_schedules_untouched() {
        let schedule = Schedule {
            objects: 1,
            threads: vec![vec![rmw(TxKind::Short, 0)]],
            interleaving: vec![0, 0, 0],
        };
        let minimal = minimize_schedule(&schedule, &mut |_| false);
        assert_eq!(minimal.interleaving, schedule.interleaving);
        assert_eq!(minimal.threads.len(), 1);
    }

    #[test]
    fn minimizer_shrinks_a_real_conflict_reproducer() {
        // Property under test: "at most one of two interleaved RMWs on the
        // same object commits". Pad the failing schedule with unrelated
        // reads and extra interleaving, then shrink against a real STM
        // run.
        let bloated = Schedule {
            objects: 2,
            threads: vec![
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(1), Op::Read(0), Op::Write(0)],
                }],
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Write(0), Op::Read(1)],
                }],
            ],
            interleaving: vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
        };
        let mut fails = |s: &Schedule| {
            let stm = Arc::new(LsaStm::new(StmConfig::new(2)));
            run_schedule(&stm, s).aborted >= 1
        };
        assert!(fails(&bloated), "the bloated schedule reproduces");
        let minimal = minimize_schedule(&bloated, &mut fails);
        let total_ops: usize = minimal
            .threads
            .iter()
            .flatten()
            .map(|tx| tx.ops.len())
            .sum();
        assert!(
            total_ops <= 3,
            "conflict needs at most read+write vs write: {minimal:?}"
        );
    }

    #[test]
    fn enumerator_counts_multiset_permutations() {
        // (2+2)! / (2! 2!) = 6
        assert_eq!(enumerate_interleavings(&[2, 2]).len(), 6);
        // (3+2)! / (3! 2!) = 10
        assert_eq!(enumerate_interleavings(&[3, 2]).len(), 10);
        // Each interleaving uses exactly the right step counts.
        for inter in enumerate_interleavings(&[2, 3]) {
            assert_eq!(inter.iter().filter(|&&t| t == 0).count(), 2);
            assert_eq!(inter.iter().filter(|&&t| t == 1).count(), 3);
        }
    }

    #[test]
    fn reads_are_collected_per_thread() {
        let schedule = Schedule {
            objects: 1,
            threads: vec![vec![TxScript {
                kind: TxKind::Short,
                ops: vec![Op::Read(0), Op::Read(0)],
            }]],
            interleaving: vec![0, 0, 0],
        };
        let stm = Arc::new(LsaStm::new(StmConfig::new(1)));
        let outcome = run_schedule(&stm, &schedule);
        assert_eq!(outcome.reads.len(), 1);
        assert_eq!(outcome.reads[0], vec![0, 0]);
    }
}
