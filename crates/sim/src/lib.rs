//! Deterministic schedule driver for the `zstm` STMs.
//!
//! A [`Schedule`] scripts, per logical thread, a sequence of transactions
//! (each a list of reads and writes over a shared object pool) plus a
//! global *interleaving*: the exact order in which threads take steps.
//! [`run_schedule`] replays the schedule against any STM implementing
//! [`zstm_core::TmFactory`] one step at a time, so racy
//! interleavings become reproducible test cases.
//!
//! Combined with [`zstm_history`]'s checkers this turns into a
//! property-based consistency test: generate random schedules, run them,
//! and assert the STM's claimed criterion on the recorded history
//! (see `tests/random_schedules.rs` at the workspace root).
//!
//! Each logical thread runs on its own OS thread but only advances when
//! the driver hands it a step token over a rendezvous channel, so the
//! interleaving is exactly the scripted one (up to the STM's own internal
//! waiting).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use zstm_core::{StmConfig, TxKind};
//! use zstm_sim::{run_schedule, Op, Schedule, TxScript};
//! use zstm_lsa::LsaStm;
//!
//! let schedule = Schedule {
//!     objects: 2,
//!     threads: vec![
//!         vec![TxScript {
//!             kind: TxKind::Short,
//!             ops: vec![Op::Read(0), Op::Write(1)],
//!         }],
//!         vec![TxScript {
//!             kind: TxKind::Short,
//!             ops: vec![Op::Read(1), Op::Write(0)],
//!         }],
//!     ],
//!     // Interleave the two transactions step by step.
//!     interleaving: vec![0, 1, 0, 1, 0, 1],
//! };
//! let stm = Arc::new(LsaStm::new(StmConfig::new(2)));
//! let outcome = run_schedule(&stm, &schedule);
//! assert_eq!(outcome.attempted, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use std::sync::mpsc::{sync_channel as bounded, Receiver, SyncSender as Sender};
use zstm_core::{TmFactory, TmThread, TmTx, TxKind};

/// One scripted transactional operation over the shared object pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read object `i`.
    Read(usize),
    /// Write object `i` (the driver supplies a unique value).
    Write(usize),
}

/// One scripted transaction.
#[derive(Clone, Debug)]
pub struct TxScript {
    /// Short or long.
    pub kind: TxKind,
    /// Operations in program order; the transaction commits after the
    /// last one.
    pub ops: Vec<Op>,
}

/// A complete scripted execution.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Size of the shared object pool (objects are `i64` variables).
    pub objects: usize,
    /// Per logical thread: the transactions it runs, in order.
    pub threads: Vec<Vec<TxScript>>,
    /// Which thread takes the next step. A *step* is one operation or the
    /// commit that follows a transaction's last operation. Extra entries
    /// for finished threads are skipped; if the interleaving ends early,
    /// remaining work is driven round-robin.
    pub interleaving: Vec<usize>,
}

impl Schedule {
    /// Total number of steps the schedule needs (ops + one commit per
    /// transaction).
    pub fn total_steps(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .map(|tx| tx.ops.len() + 1)
            .sum()
    }

    /// Steps required by thread `t`.
    pub fn steps_of(&self, t: usize) -> usize {
        self.threads[t].iter().map(|tx| tx.ops.len() + 1).sum()
    }
}

/// Enumerates **every** interleaving of the given per-thread step counts
/// (all multiset permutations), enabling exhaustive systematic concurrency
/// testing of small schedules.
///
/// The count is `(Σ steps)! / Π steps!` — keep the schedules tiny (e.g.
/// two transactions of ≤3 operations give at most a few hundred
/// interleavings).
///
/// # Examples
///
/// ```
/// use zstm_sim::enumerate_interleavings;
///
/// let all = enumerate_interleavings(&[2, 1]);
/// assert_eq!(all, vec![
///     vec![0, 0, 1],
///     vec![0, 1, 0],
///     vec![1, 0, 0],
/// ]);
/// ```
pub fn enumerate_interleavings(steps: &[usize]) -> Vec<Vec<usize>> {
    fn go(remaining: &mut [usize], current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(current.clone());
            return;
        }
        for thread in 0..remaining.len() {
            if remaining[thread] > 0 {
                remaining[thread] -= 1;
                current.push(thread);
                go(remaining, current, out);
                current.pop();
                remaining[thread] += 1;
            }
        }
    }
    let mut remaining = steps.to_vec();
    let mut out = Vec::new();
    go(&mut remaining, &mut Vec::new(), &mut out);
    out
}

/// What happened when a schedule ran.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Transactions attempted (each script is attempted exactly once — the
    /// driver does not retry aborted transactions, so the recorded history
    /// matches the script).
    pub attempted: usize,
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions that aborted (at an operation or at commit).
    pub aborted: usize,
    /// Values read, per thread, in program order (committed and aborted
    /// transactions both contribute; useful for result checking).
    pub reads: Vec<Vec<i64>>,
}

enum WorkerMsg {
    /// Perform one step; reply on the embedded channel when done.
    Step(Sender<()>),
    /// No more steps; shut down.
    Done,
}

/// Replays `schedule` against `stm`, driving the scripted interleaving
/// step by step.
///
/// The STM must be configured for at least `schedule.threads.len()`
/// logical threads. Aborted transactions are *not* retried: the point is
/// to observe exactly the scripted attempt.
///
/// # Panics
///
/// Panics if a worker thread panics or an interleaving entry names a
/// nonexistent thread.
pub fn run_schedule<F: TmFactory>(stm: &Arc<F>, schedule: &Schedule) -> Outcome {
    let objects: Arc<Vec<F::Var<i64>>> = Arc::new(
        (0..schedule.objects.max(1))
            .map(|_| stm.new_var(0i64))
            .collect(),
    );

    let mut senders: Vec<Sender<WorkerMsg>> = Vec::new();
    let mut steps_left: Vec<usize> = Vec::new();
    let mut handles = Vec::new();

    for scripts in schedule.threads.iter().cloned() {
        let (tx_msg, rx_msg): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = bounded(1);
        senders.push(tx_msg);
        steps_left.push(scripts.iter().map(|s| s.ops.len() + 1).sum());
        let mut thread = stm.register_thread();
        let objects = Arc::clone(&objects);
        handles.push(std::thread::spawn(move || {
            let mut reads: Vec<i64> = Vec::new();
            let mut attempted = 0usize;
            let mut committed = 0usize;
            let mut aborted = 0usize;
            let mut value_counter = 1_000 * (thread.thread_id().slot() as i64 + 1);

            for script in scripts {
                attempted += 1;
                let mut tx = Some(thread.begin(script.kind));
                let mut doomed = false;
                for op in &script.ops {
                    // Wait for our step token.
                    match recv_step(&rx_msg) {
                        None => return (attempted, committed, aborted, reads),
                        Some(ack) => {
                            if let Some(tx) = tx.as_mut() {
                                match op {
                                    Op::Read(i) => match tx.read(&objects[i % objects.len()]) {
                                        Ok(v) => reads.push(v),
                                        Err(_) => doomed = true,
                                    },
                                    Op::Write(i) => {
                                        value_counter += 1;
                                        if tx
                                            .write(&objects[i % objects.len()], value_counter)
                                            .is_err()
                                        {
                                            doomed = true;
                                        }
                                    }
                                }
                            }
                            let _ = ack.send(());
                            if doomed {
                                break;
                            }
                        }
                    }
                }
                // Consume remaining op tokens if we bailed early, then the
                // commit token.
                let consumed = if doomed {
                    // Tokens for the unexecuted ops still arrive; drain
                    // them as no-ops.
                    true
                } else {
                    false
                };
                let _ = consumed;
                match recv_step(&rx_msg) {
                    None => return (attempted, committed, aborted, reads),
                    Some(ack) => {
                        let tx = tx.take().expect("transaction present");
                        if doomed {
                            tx.rollback(zstm_core::AbortReason::Explicit);
                            aborted += 1;
                        } else {
                            match tx.commit() {
                                Ok(()) => committed += 1,
                                Err(_) => aborted += 1,
                            }
                        }
                        let _ = ack.send(());
                    }
                }
            }
            // Drain any leftover tokens.
            while let Some(ack) = recv_step(&rx_msg) {
                let _ = ack.send(());
            }
            (attempted, committed, aborted, reads)
        }));
    }

    fn recv_step(rx: &Receiver<WorkerMsg>) -> Option<Sender<()>> {
        match rx.recv() {
            Ok(WorkerMsg::Step(ack)) => Some(ack),
            Ok(WorkerMsg::Done) | Err(_) => None,
        }
    }

    // Drive the interleaving. A doomed transaction still consumes its
    // scripted steps (as no-ops), keeping the schedule aligned.
    fn drive(senders: &[Sender<WorkerMsg>], steps_left: &mut [usize], thread: usize) {
        if thread < senders.len() && steps_left[thread] > 0 {
            let (ack_tx, ack_rx) = bounded(0);
            if senders[thread].send(WorkerMsg::Step(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
                steps_left[thread] -= 1;
            }
        }
    }
    for &thread in &schedule.interleaving {
        drive(
            &senders,
            &mut steps_left,
            thread % schedule.threads.len().max(1),
        );
    }
    // Finish any remaining work round-robin so every script completes.
    loop {
        let mut progressed = false;
        for thread in 0..steps_left.len() {
            if steps_left[thread] > 0 {
                drive(&senders, &mut steps_left, thread);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    for sender in &senders {
        let _ = sender.send(WorkerMsg::Done);
    }

    let mut outcome = Outcome::default();
    for handle in handles {
        let (attempted, committed, aborted, reads) =
            handle.join().expect("schedule worker panicked");
        outcome.attempted += attempted;
        outcome.committed += committed;
        outcome.aborted += aborted;
        outcome.reads.push(reads);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstm_core::StmConfig;
    use zstm_lsa::LsaStm;
    use zstm_z::ZStm;

    fn rmw(kind: TxKind, obj: usize) -> TxScript {
        TxScript {
            kind,
            ops: vec![Op::Read(obj), Op::Write(obj)],
        }
    }

    #[test]
    fn serial_schedule_commits_everything() {
        let schedule = Schedule {
            objects: 2,
            threads: vec![
                vec![rmw(TxKind::Short, 0), rmw(TxKind::Short, 1)],
                vec![rmw(TxKind::Short, 0)],
            ],
            // Thread 0 completes both transactions, then thread 1 runs.
            interleaving: vec![0, 0, 0, 0, 0, 0, 1, 1, 1],
        };
        let stm = Arc::new(LsaStm::new(StmConfig::new(2)));
        let outcome = run_schedule(&stm, &schedule);
        assert_eq!(outcome.attempted, 3);
        assert_eq!(outcome.committed, 3);
        assert_eq!(outcome.aborted, 0);
    }

    #[test]
    fn interleaved_rmw_conflict_aborts_exactly_one() {
        // Two read-modify-writes of the same object, fully interleaved:
        // reads first, then writes — at most one can commit under any of
        // our STMs (single writer + validation).
        let schedule = Schedule {
            objects: 1,
            threads: vec![
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Write(0)],
                }],
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Write(0)],
                }],
            ],
            interleaving: vec![0, 1, 0, 1, 0, 1],
        };
        let stm = Arc::new(LsaStm::new(StmConfig::new(2)));
        let outcome = run_schedule(&stm, &schedule);
        assert_eq!(outcome.attempted, 2);
        assert_eq!(outcome.committed, 1, "lost update must be prevented");
        assert_eq!(outcome.aborted, 1);
    }

    #[test]
    fn long_and_short_zone_interaction_on_z() {
        // A long transaction scans both objects while a short updates one
        // in its zone — the exact Figure 4 T5 pattern.
        let schedule = Schedule {
            objects: 2,
            threads: vec![
                vec![TxScript {
                    kind: TxKind::Long,
                    ops: vec![Op::Read(0), Op::Read(1)],
                }],
                vec![TxScript {
                    kind: TxKind::Short,
                    ops: vec![Op::Read(0), Op::Write(0)],
                }],
            ],
            // L reads 0; S reads+writes 0 (joining the zone) and commits;
            // L reads 1 and commits.
            interleaving: vec![0, 1, 1, 1, 0, 0],
        };
        let stm = Arc::new(ZStm::new(StmConfig::new(2)));
        let outcome = run_schedule(&stm, &schedule);
        assert_eq!(outcome.committed, 2, "both must commit under Z-STM");
    }

    #[test]
    fn short_interleaving_is_padded_round_robin() {
        let schedule = Schedule {
            objects: 1,
            threads: vec![vec![rmw(TxKind::Short, 0)]],
            interleaving: vec![], // entirely driven by the round-robin tail
        };
        let stm = Arc::new(LsaStm::new(StmConfig::new(1)));
        let outcome = run_schedule(&stm, &schedule);
        assert_eq!(outcome.committed, 1);
    }

    #[test]
    fn enumerator_counts_multiset_permutations() {
        // (2+2)! / (2! 2!) = 6
        assert_eq!(enumerate_interleavings(&[2, 2]).len(), 6);
        // (3+2)! / (3! 2!) = 10
        assert_eq!(enumerate_interleavings(&[3, 2]).len(), 10);
        // Each interleaving uses exactly the right step counts.
        for inter in enumerate_interleavings(&[2, 3]) {
            assert_eq!(inter.iter().filter(|&&t| t == 0).count(), 2);
            assert_eq!(inter.iter().filter(|&&t| t == 1).count(), 3);
        }
    }

    #[test]
    fn reads_are_collected_per_thread() {
        let schedule = Schedule {
            objects: 1,
            threads: vec![vec![TxScript {
                kind: TxKind::Short,
                ops: vec![Op::Read(0), Op::Read(0)],
            }]],
            interleaving: vec![0, 0, 0],
        };
        let stm = Arc::new(LsaStm::new(StmConfig::new(1)));
        let outcome = run_schedule(&stm, &schedule);
        assert_eq!(outcome.reads.len(), 1);
        assert_eq!(outcome.reads[0], vec![0, 0]);
    }
}
