//! Adversarial schedule fuzzer (CI `fuzz-smoke` entry point).
//!
//! Generates random and write-skew-shaped schedules, replays each on all
//! five engines natively and under the SSI certifier, checks every
//! recorded history, shrinks violations, and writes each shrunk
//! counterexample as a ready-to-commit regression test. Exits non-zero
//! if any violation was found.
//!
//! ```text
//! fuzz_schedules [--seconds N] [--schedules N] [--seed N] [--out DIR]
//! ```

use std::path::PathBuf;
use std::time::Duration;

use zstm_sim::fuzz::{fuzz_schedules, FuzzOptions};

fn main() {
    let mut options = FuzzOptions {
        seed: 0xF022_5EED,
        max_schedules: usize::MAX,
        time_budget: Duration::from_secs(30),
    };
    let mut out_dir = PathBuf::from("target/fuzz");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--seconds" => {
                options.time_budget =
                    Duration::from_secs(value("--seconds").parse().expect("--seconds: u64"))
            }
            "--schedules" => {
                options.max_schedules = value("--schedules").parse().expect("--schedules: usize")
            }
            "--seed" => options.seed = value("--seed").parse().expect("--seed: u64"),
            "--out" => out_dir = PathBuf::from(value("--out")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: fuzz_schedules [--seconds N] [--schedules N] [--seed N] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }

    println!(
        "fuzzing: seed={:#x} budget={:?} max_schedules={}",
        options.seed,
        options.time_budget,
        if options.max_schedules == usize::MAX {
            "unbounded".to_string()
        } else {
            options.max_schedules.to_string()
        }
    );
    let report = fuzz_schedules(&options);
    println!(
        "ran {} schedules ({} engine runs); certified: {} commits, {} certification aborts",
        report.schedules, report.runs, report.certified_commits, report.certification_aborts
    );

    if report.counterexamples.is_empty() {
        println!("no violations found");
        return;
    }

    std::fs::create_dir_all(&out_dir).expect("create --out directory");
    for (i, cex) in report.counterexamples.iter().enumerate() {
        let file = out_dir.join(format!("{}_{i}.rs", cex.name()));
        std::fs::write(&file, &cex.regression_test).expect("write counterexample");
        eprintln!(
            "VIOLATION [{} {}]: {}",
            cex.engine.name(),
            if cex.certified { "certified" } else { "native" },
            cex.violation
        );
        eprintln!("  shrunk schedule: {:?}", cex.schedule);
        eprintln!("  regression test written to {}", file.display());
    }
    eprintln!(
        "to promote: copy the generated file into tests/corpus/ and add a \
         `#[path = \"corpus/<name>.rs\"] mod <name>;` line to tests/corpus.rs \
         (see tests/corpus/README.md)"
    );
    std::process::exit(1);
}
