//! Focused repro harness for the audit-tear hunt (kept as a regression
//! stress test).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use zstm_core::{atomically, EventSink, RetryPolicy, StmConfig, TmFactory, TmTx, TxEvent, TxKind};
use zstm_util::sync::Mutex;
use zstm_z::{ZStm, ZVar};

struct VecSink {
    seq: AtomicU64,
    events: Mutex<Vec<(u64, TxEvent)>>,
}

impl EventSink for VecSink {
    fn enabled(&self) -> bool {
        true
    }
    fn record(&self, event: TxEvent) {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel);
        self.events.lock().push((seq, event));
    }
}

#[test]
fn audit_never_tears() {
    for round in 0..30 {
        run_round(round);
    }
}

fn run_round(round: u64) {
    let sink = Arc::new(VecSink {
        seq: AtomicU64::new(0),
        events: Mutex::new(Vec::new()),
    });
    let mut config = StmConfig::new(3);
    config.event_sink(sink.clone());
    let stm: Arc<ZStm> = Arc::new(ZStm::new(config));
    let n = 8usize;
    let accounts: Arc<Vec<ZVar<i64>>> = Arc::new((0..n).map(|_| stm.new_var(100i64)).collect());
    let ids: Vec<_> = accounts.iter().map(|a| a.id()).collect();
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2u64)
        .map(|t| {
            let stm = Arc::clone(&stm);
            let accounts = Arc::clone(&accounts);
            let stop = Arc::clone(&stop);
            let mut thread = stm.register_thread();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let from = ((i * 7 + t + round) % n as u64) as usize;
                    let to = ((i * 13 + t * 5 + 1) % n as u64) as usize;
                    if from != to {
                        let _ = atomically(
                            &mut thread,
                            TxKind::Short,
                            &RetryPolicy::default().with_max_attempts(100),
                            |tx| {
                                let a = tx.read(&accounts[from])?;
                                let b = tx.read(&accounts[to])?;
                                tx.write(&accounts[from], a - 1)?;
                                tx.write(&accounts[to], b + 1)
                            },
                        );
                    }
                    i += 1;
                }
            })
        })
        .collect();

    let mut auditor = stm.register_thread();
    for audit_no in 0..200 {
        let reads = atomically(&mut auditor, TxKind::Long, &RetryPolicy::default(), |tx| {
            let mut reads = Vec::with_capacity(n);
            for account in accounts.iter() {
                reads.push((account.id(), tx.read(account)?));
            }
            Ok(reads)
        })
        .expect("audit commits");
        let total: i64 = reads.iter().map(|(_, v)| v).sum();
        if total != (n as i64) * 100 {
            stop.store(true, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(200));
            eprintln!("=== TEAR round {round} audit {audit_no}: total {total} ===");
            eprintln!("audit reads: {reads:?}");
            for (i, account) in accounts.iter().enumerate() {
                eprintln!(
                    "account {i} id={:?} zc={} versions={:?}",
                    ids[i],
                    account.zc(),
                    account
                        .versions_for_test()
                        .iter()
                        .map(|v| (v.seq, v.ct, v.value))
                        .collect::<Vec<_>>()
                );
            }
            let events = sink.events.lock();
            let tail_start = events.len().saturating_sub(400);
            for (seq, ev) in &events[tail_start..] {
                eprintln!(
                    "[{seq}] {:?} {:?} {:?} {:?}",
                    ev.thread, ev.kind, ev.tx, ev.event
                );
            }
            panic!("torn audit: {total}");
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker");
    }
}
