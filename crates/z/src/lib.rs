//! Z-STM — the z-linearizable STM of the paper's Section 5 (Algorithms 2
//! and 3), the paper's primary contribution.
//!
//! **z-linearizability** weakens linearizability just enough to let long
//! transactions through: (1) the set of long transactions is linearizable,
//! (2) the short transactions between two long transactions — a *time
//! zone* — are linearizable, (3) the set of all transactions is
//! serializable, and (4) the serialization order observes each thread's own
//! execution order.
//!
//! The implementation combines:
//!
//! * **Long transactions** — ordered by an optimistic timestamp-ordering
//!   scheme (the paper's reference \[11\]): each long transaction draws a
//!   unique *zone number* `T.zc` from the global zone counter `ZC`
//!   (Algorithm 2 line 3). Opening an object stamps the object's zone
//!   counter `o.zc` with `T.zc` (monotonically); a long transaction finding
//!   `o.zc` already above its own number has been *passed* and aborts
//!   (lines 6/20). Commit is a single check-and-flip: the transaction
//!   commits iff its zone number still exceeds the global commit counter
//!   `CT`, which it then raises (lines 24–26). Long transactions keep **no
//!   read set and no write set bookkeeping for validation** — the paper's
//!   headline efficiency claim.
//! * **Short transactions** — plain LSA (same engine as
//!   [`zstm_lsa::LsaStm`]) extended with the zone rules of Algorithm 3: the
//!   first object opened determines the transaction's zone (lines 6–15,
//!   with the thread-order rule via the per-thread `LZC`), and opening an
//!   object from a *different, still-active* zone is a conflict that delays
//!   or aborts the transaction (lines 16–22) — this is what prevents a
//!   short transaction from "crossing the path" of an active long
//!   transaction.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use zstm_core::{atomically, RetryPolicy, StmConfig, TmFactory, TmThread, TmTx, TxKind};
//! use zstm_z::ZStm;
//!
//! # fn main() -> Result<(), zstm_core::RetryExhausted> {
//! let stm = Arc::new(ZStm::new(StmConfig::new(2)));
//! let accounts: Vec<_> = (0..4).map(|_| stm.new_var(100i64)).collect();
//! let mut thread = stm.register_thread();
//! // A long transaction computing the total balance:
//! let total = atomically(&mut thread, TxKind::Long, &RetryPolicy::default(), |tx| {
//!     let mut sum = 0;
//!     for account in &accounts {
//!         sum += tx.read(account)?;
//!     }
//!     Ok(sum)
//! })?;
//! assert_eq!(total, 400);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use zstm_clock::{ScalarClock, TimeBase};
use zstm_core::{
    Abort, AbortReason, ContentionManager, ObjId, StmConfig, ThreadId, TmFactory, TmThread, TmTx,
    TxEvent, TxEventKind, TxId, TxKind, TxShared, TxStats, TxValue, VersionSeq,
};
use zstm_lsa::engine::{DynObject, HistoryGap, VarCore};
use zstm_util::{Backoff, CachePadded};

/// Rounds a short transaction waits on a cross-zone conflict before
/// aborting (the "CM delays/aborts T" of Algorithm 3 line 18).
const ZONE_PATIENCE: u64 = 8;

/// A transactional variable managed by [`ZStm`]. Cheap to clone.
pub struct ZVar<T: TxValue> {
    core: Arc<VarCore<T>>,
}

impl<T: TxValue> ZVar<T> {
    /// The object's id in recorded histories.
    pub fn id(&self) -> ObjId {
        self.core.id()
    }

    /// The object's current zone counter `o.zc` (diagnostics).
    pub fn zc(&self) -> u64 {
        self.core.zc()
    }

    /// Snapshot of the retained committed versions (tests, diagnostics).
    #[doc(hidden)]
    pub fn versions_for_test(&self) -> Vec<zstm_lsa::engine::Version<T>> {
        self.core.versions_snapshot()
    }
}

impl<T: TxValue> Clone for ZVar<T> {
    fn clone(&self) -> Self {
        Self {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: TxValue> std::fmt::Debug for ZVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZVar").field("core", &self.core).finish()
    }
}

/// The z-linearizable STM (Section 5). See the crate docs.
pub struct ZStm<B: TimeBase = ScalarClock> {
    config: StmConfig,
    clock: B,
    cm: Arc<dyn ContentionManager>,
    /// `ZC`: the global zone counter long transactions draw from.
    zone_counter: CachePadded<AtomicU64>,
    /// `CT`: zone number of the last committed long transaction.
    commit_counter: CachePadded<AtomicU64>,
    registered: AtomicUsize,
}

impl ZStm<ScalarClock> {
    /// Creates a Z-STM whose short transactions use the classic
    /// shared-counter time base.
    pub fn new(config: StmConfig) -> Self {
        Self::with_clock(config, ScalarClock::new())
    }
}

impl<B: TimeBase> ZStm<B> {
    /// Creates a Z-STM over an explicit time base for short transactions
    /// (Section 5.2 recommends real-time stamps to parallelize the time
    /// base).
    pub fn with_clock(config: StmConfig, clock: B) -> Self {
        let cm = config.cm_policy().build();
        Self {
            config,
            clock,
            cm,
            zone_counter: CachePadded::new(AtomicU64::new(0)),
            commit_counter: CachePadded::new(AtomicU64::new(0)),
            registered: AtomicUsize::new(0),
        }
    }

    /// The configuration this STM was built with.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// Current value of the commit counter `CT` (diagnostics).
    pub fn ct(&self) -> u64 {
        self.commit_counter.load(Ordering::Acquire)
    }

    /// Current value of the zone counter `ZC` (diagnostics).
    pub fn zc(&self) -> u64 {
        self.zone_counter.load(Ordering::Acquire)
    }

    /// `true` if any long transaction may still be active, i.e. the active
    /// interval `AI = (CT, ZC]` is non-empty.
    pub fn has_active_zone(&self) -> bool {
        self.ct() < self.zc()
    }
}

impl<B: TimeBase> TmFactory for ZStm<B> {
    type Var<T: TxValue> = ZVar<T>;
    type Thread = ZThread<B>;

    fn new_var<T: TxValue>(&self, init: T) -> ZVar<T> {
        ZVar {
            core: Arc::new(VarCore::with_fast_paths(
                init,
                self.config.max_versions_per_object(),
                Arc::clone(self.config.sink()),
                self.config.fast_reads_enabled(),
            )),
        }
    }

    fn register_thread(self: &Arc<Self>) -> ZThread<B> {
        let slot = self.registered.fetch_add(1, Ordering::Relaxed);
        assert!(
            slot < self.config.threads(),
            "more threads registered than configured ({})",
            self.config.threads()
        );
        ZThread {
            stm: Arc::clone(self),
            id: ThreadId::new(slot),
            stats: TxStats::new(),
            lzc: 0,
            pending_karma: 0,
        }
    }

    fn max_threads(&self) -> Option<usize> {
        Some(self.config.threads())
    }

    fn name(&self) -> &'static str {
        "z-stm"
    }
}

/// Per-logical-thread context of [`ZStm`].
pub struct ZThread<B: TimeBase = ScalarClock> {
    stm: Arc<ZStm<B>>,
    id: ThreadId,
    stats: TxStats,
    /// `LZC_p`: the last zone this thread committed in (Section 5.4's
    /// thread-order rule).
    lzc: u64,
    pending_karma: u64,
}

impl<B: TimeBase> ZThread<B> {
    /// The thread's `LZC` value (diagnostics, tests).
    pub fn lzc(&self) -> u64 {
        self.lzc
    }
}

impl<B: TimeBase> TmThread for ZThread<B> {
    type Factory = ZStm<B>;
    type Tx<'a> = ZTx<'a, B>;

    fn begin(&mut self, kind: TxKind) -> ZTx<'_, B> {
        let karma = std::mem::take(&mut self.pending_karma);
        let shared = Arc::new(TxShared::start(self.id, kind, karma));
        let stm = Arc::clone(&self.stm);
        if stm.config.sink().enabled() {
            stm.config
                .sink()
                .record(TxEvent::new(shared.id(), self.id, kind, TxEventKind::Begin));
        }
        let zc = if kind.is_long() {
            // Algorithm 2 line 3: T.zc ← ZC++ (pre-incremented so zone 0
            // means "no zone yet" for short transactions).
            stm.zone_counter.fetch_add(1, Ordering::AcqRel) + 1
        } else {
            0
        };
        let slack = stm.clock.snapshot_slack();
        let ub = stm.clock.now(self.id.slot()).saturating_sub(slack);
        ZTx {
            thread: self,
            shared,
            zc,
            zone_set: kind.is_long(),
            ub,
            reads: Vec::new(),
            writes: Vec::new(),
            long_opened: HashMap::new(),
        }
    }

    fn thread_id(&self) -> ThreadId {
        self.id
    }

    fn stats(&self) -> &TxStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> Option<&mut TxStats> {
        Some(&mut self.stats)
    }

    fn take_stats(&mut self) -> TxStats {
        std::mem::take(&mut self.stats)
    }
}

struct ReadEntry {
    obj: Arc<dyn DynObject>,
    seq: VersionSeq,
}

/// An active Z-STM transaction (long or short; the kind fixed at
/// [`TmThread::begin`] selects between Algorithm 2 and Algorithm 3).
pub struct ZTx<'a, B: TimeBase = ScalarClock> {
    thread: &'a mut ZThread<B>,
    shared: Arc<TxShared>,
    /// `T.zc`: zone number (long: reserved at start; short: adopted at the
    /// first open).
    zc: u64,
    /// Whether `zc` has been set. The paper uses `T.zc = 0` as the "not
    /// yet" sentinel (Algorithm 3 line 2), but zone 0 — the epoch before
    /// any long transaction — is also a legitimate zone value, so a short
    /// transaction that adopted zone 0 would re-run the first-open branch
    /// on every open and silently skip the cross-zone conflict check. An
    /// explicit flag closes that hole.
    zone_set: bool,
    /// LSA snapshot time (short transactions only).
    ub: u64,
    /// LSA read set (short transactions only; long transactions keep none).
    reads: Vec<ReadEntry>,
    writes: Vec<Arc<dyn DynObject>>,
    /// Long transactions: objects opened so far with the version sequence
    /// fixed at first open. Not a read set — it is never validated at
    /// commit; it only serves repeated opens consistently and detects
    /// post-stamp interlopers on read-then-write patterns (the paper
    /// assumes open-once).
    long_opened: HashMap<ObjId, VersionSeq>,
}

impl<B: TimeBase> ZTx<'_, B> {
    fn stm(&self) -> &ZStm<B> {
        &self.thread.stm
    }

    /// The transaction's zone number (tests, diagnostics).
    pub fn zone(&self) -> u64 {
        self.zc
    }

    fn record(&self, event: TxEventKind) {
        let sink = self.stm().config.sink();
        if sink.enabled() {
            sink.record(TxEvent::new(
                self.shared.id(),
                self.shared.thread(),
                self.shared.kind(),
                event,
            ));
        }
    }

    fn check_alive(&self) -> Result<(), Abort> {
        if self.shared.is_active() {
            Ok(())
        } else {
            Err(Abort::new(AbortReason::Killed))
        }
    }

    fn abort_with(&mut self, reason: AbortReason) -> Abort {
        self.shared.abort();
        Abort::new(reason)
    }

    fn finish_abort(self, reason: AbortReason) {
        self.shared.abort();
        for obj in &self.writes {
            obj.release_dyn(&self.shared);
        }
        self.thread.pending_karma = self.shared.karma();
        self.thread.stats.record_abort(self.shared.kind(), reason);
        self.record(TxEventKind::Abort { reason });
    }

    /// Algorithm 3 lines 6–22: zone admission for short transactions.
    /// Returns the object zone counter value the admission was based on so
    /// the caller can detect a concurrent stamp (see [`ZTx::write`]).
    fn open_short_zone<T: TxValue>(&mut self, core: &VarCore<T>) -> Result<u64, Abort> {
        let stm = Arc::clone(&self.thread.stm);
        if !self.zone_set {
            // Opening the first object: it determines our zone (lines 6–15).
            let o_zc = core.zc();
            let lzc = self.thread.lzc;
            if o_zc < lzc {
                // The object is from an older zone than the one this
                // thread last committed in.
                if lzc > stm.commit_counter.load(Ordering::Acquire) {
                    // That zone is still active: moving "backwards" would
                    // violate the thread-order rule (property 4).
                    return Err(self.abort_with(AbortReason::ZoneCross));
                }
                self.zc = stm.commit_counter.load(Ordering::Acquire);
            } else {
                self.zc = o_zc;
            }
            self.zone_set = true;
            return Ok(o_zc);
        }
        let mut backoff = Backoff::new();
        let mut rounds = 0u64;
        loop {
            let o_zc = core.zc();
            if self.zc == o_zc {
                return Ok(o_zc);
            }
            let ct = stm.commit_counter.load(Ordering::Acquire);
            if self.zc <= ct && o_zc <= ct {
                // Both zones are in the past: safe to proceed at CT.
                self.zc = ct;
                return Ok(o_zc);
            }
            // One of the zones belongs to a potentially active long
            // transaction: delay briefly (it may commit), then abort.
            rounds += 1;
            if rounds > ZONE_PATIENCE {
                return Err(self.abort_with(AbortReason::ZoneCross));
            }
            backoff.spin();
        }
    }

    /// LSA snapshot extension (short transactions).
    fn extend_snapshot(&mut self) -> u64 {
        let slack = self.stm().clock.snapshot_slack();
        let mut new_ub = self
            .stm()
            .clock
            .now(self.thread.id.slot())
            .saturating_sub(slack)
            .max(self.ub);
        for entry in &self.reads {
            match entry.obj.successor_ct_dyn(&self.shared, entry.seq) {
                Ok(None) => {}
                Ok(Some(succ_ct)) => new_ub = new_ub.min(succ_ct.saturating_sub(1)),
                Err(HistoryGap::Pruned) => new_ub = new_ub.min(self.ub),
            }
        }
        self.ub = new_ub.max(self.ub);
        self.ub
    }

    fn commit_long(self) -> Result<(), Abort> {
        let stm = Arc::clone(&self.thread.stm);
        // Enter the commit protocol first: the LSA engine's validation
        // relies on the invariant that a commit stamp is only drawn by
        // transactions in the `Committing` state (an `Active` writer is
        // guaranteed to install with a *later* stamp than any concurrent
        // validator's).
        if !self.shared.begin_commit() {
            self.finish_abort(AbortReason::Killed);
            return Err(Abort::new(AbortReason::Killed));
        }
        // Commit time for the versions this transaction installs (the LSA
        // substrate of short transactions validates against these).
        let ct_stamp = stm.clock.commit_stamp(self.thread.id.slot());
        self.shared.set_commit_ct(ct_stamp);
        // Algorithm 2 line 24: commit only if T.zc > CT; line 26: CT ← T.zc.
        let prev_ct = stm.commit_counter.fetch_max(self.zc, Ordering::AcqRel);
        if prev_ct >= self.zc {
            self.finish_abort(AbortReason::ZoneCommitRace);
            return Err(Abort::new(AbortReason::ZoneCommitRace));
        }
        // Line 25: the flip that publishes the transaction's updates.
        self.shared.finish_commit();
        for obj in &self.writes {
            obj.promote_dyn(&self.shared);
        }
        // Line 27: LZC_p ← T.zc.
        self.thread.lzc = self.zc;
        self.thread.pending_karma = 0;
        self.thread.stats.record_commit(TxKind::Long);
        self.record(TxEventKind::Commit {
            zone: Some(self.zc),
        });
        Ok(())
    }

    fn commit_short(self) -> Result<(), Abort> {
        // Algorithm 3 lines 25–29: CommitLSA decides; LZC is updated on
        // success. The LSA commit logic mirrors zstm-lsa.
        if self.writes.is_empty() {
            if !self.shared.try_commit_directly() {
                self.finish_abort(AbortReason::Killed);
                return Err(Abort::new(AbortReason::Killed));
            }
            if self.zone_set {
                self.thread.lzc = self.thread.lzc.max(self.zc);
            }
            self.thread.pending_karma = 0;
            self.thread.stats.record_commit(TxKind::Short);
            self.record(TxEventKind::Commit {
                zone: Some(self.zc),
            });
            return Ok(());
        }
        if !self.shared.begin_commit() {
            self.finish_abort(AbortReason::Killed);
            return Err(Abort::new(AbortReason::Killed));
        }
        let ct = self.stm().clock.commit_stamp(self.thread.id.slot());
        self.shared.set_commit_ct(ct);
        let valid = self
            .reads
            .iter()
            .all(|entry| entry.obj.validate_read_dyn(&self.shared, entry.seq, ct));
        if !valid {
            self.finish_abort(AbortReason::ReadValidation);
            return Err(Abort::new(AbortReason::ReadValidation));
        }
        self.shared.finish_commit();
        for obj in &self.writes {
            obj.promote_dyn(&self.shared);
        }
        if self.zone_set {
            self.thread.lzc = self.thread.lzc.max(self.zc);
        }
        self.thread.pending_karma = 0;
        self.thread.stats.record_commit(TxKind::Short);
        self.record(TxEventKind::Commit {
            zone: Some(self.zc),
        });
        Ok(())
    }
}

impl<B: TimeBase> TmTx for ZTx<'_, B> {
    type Factory = ZStm<B>;

    fn read<T: TxValue>(&mut self, var: &ZVar<T>) -> Result<T, Abort> {
        self.check_alive()?;
        self.thread.stats.record_read();
        self.shared.add_karma(1);

        if self.shared.kind().is_long() {
            // Algorithm 2, Open in read mode: atomically stamp the zone,
            // arbitrate any pending writer and read the version current at
            // stamp time. No read set is kept; repeated opens of the same
            // object are served from the first open's version (the paper
            // assumes each object is opened exactly once).
            let cm = Arc::clone(&self.stm().cm);
            let obj_id = var.core.id();
            // Read-your-own-write: if we already hold the reservation,
            // the open below serves our tentative value at `base + 1`.
            // The repeated-open check must keep comparing *base* —
            // `long_opened` records the committed version each open sits
            // on, and our own pending write is not a post-stamp intruder.
            let own_reservation = var.core.reserved_by(&self.shared);
            let hit = var
                .core
                .open_long_read(&self.shared, self.zc, cm.as_ref())?;
            let opened_seq = if own_reservation {
                hit.seq - 1
            } else {
                hit.seq
            };
            match self.long_opened.get(&obj_id).copied() {
                Some(seq) if opened_seq != seq => {
                    // A post-stamp transaction slid a version in between:
                    // our earlier open no longer matches.
                    return Err(self.abort_with(AbortReason::SnapshotUnavailable));
                }
                Some(_) => {}
                None => {
                    self.long_opened.insert(obj_id, opened_seq);
                }
            }
            self.record(TxEventKind::Read {
                obj: obj_id,
                version: hit.seq,
            });
            return Ok(hit.value);
        }

        // Algorithm 3: zone admission, then OpenLSA. (Reads need no
        // post-admission re-check: committed versions are immutable and
        // update transactions are revalidated at commit time; only writes
        // can escape a long transaction's pinned snapshot.)
        self.open_short_zone(&var.core)?;
        // Long transactions use visible writes and no read set: a short
        // reader must not slip "behind" an active long writer (it would
        // read the pre-long version and serialize before the long
        // transaction, breaking the zone order if it also updates objects
        // the long transaction read). Wait the long writer out first.
        {
            let cm = Arc::clone(&self.stm().cm);
            var.core.arbitrate_long_writer(&self.shared, cm.as_ref())?;
        }
        let mut hit = var.core.read_at(Some(&self.shared), self.ub);
        if hit.as_ref().is_none_or(|h| !h.is_latest) {
            let ub = self.extend_snapshot();
            let fresh = var.core.read_at(Some(&self.shared), ub);
            if fresh.is_some() {
                hit = fresh;
            }
        }
        let hit = hit.ok_or_else(|| self.abort_with(AbortReason::SnapshotUnavailable))?;
        self.reads.push(ReadEntry {
            obj: Arc::clone(&var.core) as Arc<dyn DynObject>,
            seq: hit.seq,
        });
        self.record(TxEventKind::Read {
            obj: var.core.id(),
            version: hit.seq,
        });
        Ok(hit.value)
    }

    fn write<T: TxValue>(&mut self, var: &ZVar<T>, value: T) -> Result<(), Abort> {
        self.check_alive()?;
        self.thread.stats.record_write();
        self.shared.add_karma(1);
        if self.shared.kind().is_long() {
            // Algorithm 2, Open in write mode: atomic stamp + reservation.
            let cm = Arc::clone(&self.stm().cm);
            let obj_id = var.core.id();
            let newly_reserved = !var.core.reserved_by(&self.shared);
            let base_seq = var
                .core
                .reserve_long(&self.shared, self.zc, value, cm.as_ref())?;
            match self.long_opened.get(&obj_id).copied() {
                Some(read_seq) if read_seq != base_seq => {
                    // Read-then-write: a post-stamp transaction committed a
                    // version between our read and this write.
                    return Err(self.abort_with(AbortReason::WriteConflict));
                }
                Some(_) => {}
                None => {
                    self.long_opened.insert(obj_id, base_seq);
                }
            }
            if newly_reserved {
                self.writes
                    .push(Arc::clone(&var.core) as Arc<dyn DynObject>);
            }
            return Ok(());
        }
        let admitted_zc = self.open_short_zone(&var.core)?;
        let newly_reserved = !var.core.reserved_by(&self.shared);
        var.core
            .reserve(&self.shared, value, self.stm().cm.as_ref())?;
        if newly_reserved {
            self.writes
                .push(Arc::clone(&var.core) as Arc<dyn DynObject>);
        }
        // The paper's Openshort runs the zone check and the LSA open as one
        // atomic step. The admission check above and the reservation are
        // separate here, so a long transaction may have stamped (and read)
        // the object in the window — in which case this write would escape
        // the long transaction's snapshot. Re-check and abort if so; a
        // stamp arriving after the reservation is handled by the long
        // transaction's open-time arbitration instead.
        if var.core.zc() != admitted_zc {
            return Err(self.abort_with(AbortReason::ZoneCross));
        }
        Ok(())
    }

    fn commit(self) -> Result<(), Abort> {
        if self.shared.kind().is_long() {
            self.commit_long()
        } else {
            self.commit_short()
        }
    }

    fn rollback(self, reason: AbortReason) {
        self.finish_abort(reason);
    }

    fn id(&self) -> TxId {
        self.shared.id()
    }

    fn kind(&self) -> TxKind {
        self.shared.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstm_core::{atomically, RetryPolicy};

    fn stm(threads: usize) -> Arc<ZStm> {
        Arc::new(ZStm::new(StmConfig::new(threads)))
    }

    #[test]
    fn short_tx_read_and_increment() {
        let stm = stm(1);
        let var = stm.new_var(0i64);
        let mut thread = stm.register_thread();
        for _ in 0..5 {
            atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
                let v = tx.read(&var)?;
                tx.write(&var, v + 1)
            })
            .expect("commit");
        }
        let v = atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.read(&var)
        })
        .expect("commit");
        assert_eq!(v, 5);
    }

    #[test]
    fn long_tx_reads_its_own_write() {
        // Regression: the repeated-open check used to compare the
        // tentative read's `base + 1` against the recorded base and
        // abort `SnapshotUnavailable` deterministically — an unbounded
        // long transaction mixing reads and writes on one object (any
        // TMap read-modify-write seed) then retried forever.
        let stm = stm(1);
        let var = stm.new_var(1i64);
        let mut thread = stm.register_thread();
        let seen = atomically(&mut thread, TxKind::Long, &RetryPolicy::default(), |tx| {
            let v = tx.read(&var)?;
            tx.write(&var, v + 10)?;
            let tentative = tx.read(&var)?;
            tx.write(&var, tentative * 2)?;
            tx.read(&var)
        })
        .expect("read-your-own-write long transaction commits");
        assert_eq!(seen, 22);
        let committed = atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.read(&var)
        })
        .expect("commit");
        assert_eq!(committed, 22);
    }

    #[test]
    fn long_tx_reserves_zone_and_raises_ct() {
        let stm = stm(1);
        let var = stm.new_var(7i64);
        let mut thread = stm.register_thread();
        assert_eq!(stm.zc(), 0);
        atomically(&mut thread, TxKind::Long, &RetryPolicy::default(), |tx| {
            tx.read(&var)
        })
        .expect("long commit");
        assert_eq!(stm.zc(), 1);
        assert_eq!(stm.ct(), 1);
        assert_eq!(thread.lzc(), 1);
        assert_eq!(var.zc(), 1);
    }

    #[test]
    fn long_update_transaction_installs_versions() {
        let stm = stm(1);
        let var = stm.new_var(0i64);
        let mut thread = stm.register_thread();
        atomically(&mut thread, TxKind::Long, &RetryPolicy::default(), |tx| {
            let v = tx.read(&var)?;
            tx.write(&var, v + 10)
        })
        .expect("long update commits");
        let v = atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.read(&var)
        })
        .expect("commit");
        assert_eq!(v, 10);
    }

    #[test]
    fn passed_long_transaction_aborts() {
        let stm = stm(2);
        let o1 = stm.new_var(0i64);
        let o2 = stm.new_var(0i64);
        let mut p0 = stm.register_thread();
        let mut p1 = stm.register_thread();

        // L1 draws zone 1, L2 draws zone 2. L2 stamps o2 first; when L1
        // reaches o2 it has been passed and must abort (Algorithm 2 line 20).
        let mut l1 = p0.begin(TxKind::Long);
        let mut l2 = p1.begin(TxKind::Long);
        assert_eq!(l1.zone(), 1);
        assert_eq!(l2.zone(), 2);
        l1.read(&o1).expect("L1 stamps o1");
        l2.read(&o2).expect("L2 stamps o2");
        l2.read(&o1).expect("L2 passes L1 on o1");
        let err = l1.read(&o2).expect_err("L1 was passed");
        assert_eq!(err.reason(), AbortReason::ZonePassed);
        l1.rollback(err.reason());
        l2.commit().expect("L2 commits");
    }

    #[test]
    fn long_transactions_commit_in_zone_order() {
        let stm = stm(2);
        let o1 = stm.new_var(0i64);
        let o2 = stm.new_var(0i64);
        let mut p0 = stm.register_thread();
        let mut p1 = stm.register_thread();

        // Disjoint long transactions: L1 (zone 1), L2 (zone 2). L2 commits
        // first, raising CT to 2; L1's commit check T.zc > CT fails.
        let mut l1 = p0.begin(TxKind::Long);
        let mut l2 = p1.begin(TxKind::Long);
        l1.read(&o1).expect("L1");
        l2.read(&o2).expect("L2");
        l2.commit().expect("L2 commits, CT = 2");
        let err = l1.commit().expect_err("L1 violates timestamp order");
        assert_eq!(err.reason(), AbortReason::ZoneCommitRace);
    }

    #[test]
    fn short_transaction_adopts_zone_of_first_object() {
        let stm = stm(2);
        let o1 = stm.new_var(0i64);
        let o2 = stm.new_var(0i64);
        let mut p0 = stm.register_thread();
        let mut p1 = stm.register_thread();

        let mut long = p0.begin(TxKind::Long);
        long.read(&o1).expect("long stamps o1 with zone 1");

        // A short transaction whose first object is long-stamped joins
        // zone 1; it may then update o1 (already read by the long tx).
        let mut short = p1.begin(TxKind::Short);
        let v = short.read(&o1).expect("joins zone 1");
        assert_eq!(short.zone(), 1);
        short.write(&o1, v + 1).expect("update inside the zone");
        short.commit().expect("short commits in zone 1");

        // The long transaction still commits: its snapshot of o1 was taken
        // before the short's update.
        long.read(&o2).expect("long continues");
        long.commit().expect("long commits");
    }

    #[test]
    fn short_transaction_cannot_cross_active_long() {
        let stm = stm(2);
        let o1 = stm.new_var(0i64);
        let o2 = stm.new_var(0i64);
        let mut p0 = stm.register_thread();
        let mut p1 = stm.register_thread();

        let mut long = p0.begin(TxKind::Long);
        long.read(&o2).expect("long stamps o2 with zone 1");

        // Short starts in the old zone (o1 untouched, zc 0) and then tries
        // to open o2, which belongs to the active zone 1: conflict.
        let mut short = p1.begin(TxKind::Short);
        short.read(&o1).expect("old zone");
        let err = short.read(&o2).expect_err("cannot cross the active long");
        assert_eq!(err.reason(), AbortReason::ZoneCross);
        short.rollback(err.reason());

        long.read(&o1).expect("long reads o1");
        long.commit().expect("long commits");

        // After the long committed, the same access pattern succeeds.
        let sum = atomically(&mut p1, TxKind::Short, &RetryPolicy::default(), |tx| {
            Ok(tx.read(&o1)? + tx.read(&o2)?)
        })
        .expect("commit");
        assert_eq!(sum, 0);
    }

    #[test]
    fn thread_order_rule_blocks_backward_crossing() {
        // Section 5: "a thread could execute T3 and then T5 but not T5 and
        // then T4" — after committing in an active long transaction's zone,
        // a thread must not start a short transaction in an older zone.
        let stm = stm(2);
        let o_in_zone = stm.new_var(0i64);
        let o_old = stm.new_var(0i64);
        let mut p0 = stm.register_thread();
        let mut p1 = stm.register_thread();

        let mut long = p0.begin(TxKind::Long);
        long.read(&o_in_zone).expect("long stamps o_in_zone");

        // p1 commits a short transaction inside zone 1 (T5-like).
        let mut t5 = p1.begin(TxKind::Short);
        let v = t5.read(&o_in_zone).expect("join zone 1");
        t5.write(&o_in_zone, v + 1).expect("update");
        t5.commit().expect("commit in zone 1");
        assert_eq!(p1.lzc(), 1);

        // p1 now starts a short transaction on an old-zone object (T4-like)
        // while the long transaction is still active: forbidden.
        let mut t4 = p1.begin(TxKind::Short);
        let err = t4.read(&o_old).expect_err("backward crossing");
        assert_eq!(err.reason(), AbortReason::ZoneCross);
        t4.rollback(err.reason());

        long.commit().expect("long commits");

        // Once the zone is closed the access is fine.
        atomically(&mut p1, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.read(&o_old)
        })
        .expect("commit after zone closed");
    }

    #[test]
    fn long_update_tx_sustains_against_concurrent_transfers() {
        // The Figure 7 scenario in miniature: an updating Compute-Total
        // style long transaction must commit while transfers run.
        let stm = stm(3);
        let accounts: Arc<Vec<ZVar<i64>>> = Arc::new((0..32).map(|_| stm.new_var(10i64)).collect());
        let total_out = stm.new_var(0i64);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let workers: Vec<_> = (0..2)
            .map(|t| {
                let stm = Arc::clone(&stm);
                let accounts = Arc::clone(&accounts);
                let stop = Arc::clone(&stop);
                let mut thread = stm.register_thread();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let from = ((i * 7 + t) % 32) as usize;
                        let to = ((i * 13 + t + 1) % 32) as usize;
                        if from != to {
                            let _ = atomically(
                                &mut thread,
                                TxKind::Short,
                                &RetryPolicy::default().with_max_attempts(1_000),
                                |tx| {
                                    let a = tx.read(&accounts[from])?;
                                    let b = tx.read(&accounts[to])?;
                                    tx.write(&accounts[from], a - 1)?;
                                    tx.write(&accounts[to], b + 1)
                                },
                            );
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        let mut thread = stm.register_thread();
        for _ in 0..20 {
            let total = atomically(&mut thread, TxKind::Long, &RetryPolicy::default(), |tx| {
                let mut sum = 0i64;
                for account in accounts.iter() {
                    sum += tx.read(account)?;
                }
                tx.write(&total_out, sum)?;
                Ok(sum)
            })
            .expect("long update transaction commits under load");
            assert_eq!(total, 320, "zone snapshot must be consistent");
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().expect("worker panicked");
        }
    }

    #[test]
    fn money_is_conserved_across_kinds() {
        let stm = stm(4);
        let accounts: Arc<Vec<ZVar<i64>>> =
            Arc::new((0..16).map(|_| stm.new_var(100i64)).collect());
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let stm = Arc::clone(&stm);
                let accounts = Arc::clone(&accounts);
                let mut thread = stm.register_thread();
                std::thread::spawn(move || {
                    for i in 0..300u64 {
                        if i % 20 == 19 {
                            // Occasional long audit.
                            let total = atomically(
                                &mut thread,
                                TxKind::Long,
                                &RetryPolicy::default(),
                                |tx| {
                                    let mut sum = 0i64;
                                    for account in accounts.iter() {
                                        sum += tx.read(account)?;
                                    }
                                    Ok(sum)
                                },
                            )
                            .expect("audit commits");
                            assert_eq!(total, 1600);
                        } else {
                            let from = ((i * 7 + t * 3) % 16) as usize;
                            let to = ((i * 13 + t * 5) % 16) as usize;
                            if from == to {
                                continue;
                            }
                            atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
                                let a = tx.read(&accounts[from])?;
                                let b = tx.read(&accounts[to])?;
                                tx.write(&accounts[from], a - 1)?;
                                tx.write(&accounts[to], b + 1)
                            })
                            .expect("transfer commits");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let mut checker = stm.register_thread();
        let total = atomically(&mut checker, TxKind::Long, &RetryPolicy::default(), |tx| {
            let mut sum = 0i64;
            for account in accounts.iter() {
                sum += tx.read(account)?;
            }
            Ok(sum)
        })
        .expect("sum commits");
        assert_eq!(total, 1600);
    }
}
