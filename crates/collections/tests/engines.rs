//! Engine-matrix coverage: every container runs the same script on all
//! five engines × {native, SSI-certified}, through the erased facade —
//! the acceptance surface of the collections subsystem.

use std::sync::Arc;

use zstm_api::{DynStm, DynTx, Stm};
use zstm_certify::CertifiedFactory;
use zstm_collections::{TDeque, TMap, TQueue, TSet};
use zstm_core::{Abort, RetryPolicy, StmConfig, TxKind};
use zstm_cs::CsStm;
use zstm_lsa::LsaStm;
use zstm_sstm::SStm;
use zstm_tl2::Tl2Stm;
use zstm_z::ZStm;

/// All ten runtime configurations: each engine native and wrapped in the
/// online SSI certifier, as erased handles sized for `threads` logical
/// threads.
fn all_configs(threads: usize) -> Vec<(&'static str, Arc<dyn DynStm>)> {
    let c = || StmConfig::new(threads);
    vec![
        ("lsa", Arc::new(Stm::new(LsaStm::new(c())))),
        (
            "lsa+ssi",
            Arc::new(Stm::new(CertifiedFactory::new(c(), LsaStm::new))),
        ),
        ("tl2", Arc::new(Stm::new(Tl2Stm::new(c())))),
        (
            "tl2+ssi",
            Arc::new(Stm::new(CertifiedFactory::new(c(), Tl2Stm::new))),
        ),
        ("cs", Arc::new(Stm::new(CsStm::with_vector_clock(c())))),
        (
            "cs+ssi",
            Arc::new(Stm::new(CertifiedFactory::new(
                c(),
                CsStm::with_vector_clock,
            ))),
        ),
        ("sstm", Arc::new(Stm::new(SStm::with_vector_clock(c())))),
        (
            "sstm+ssi",
            Arc::new(Stm::new(CertifiedFactory::new(
                c(),
                SStm::with_vector_clock,
            ))),
        ),
        ("z", Arc::new(Stm::new(ZStm::new(c())))),
        (
            "z+ssi",
            Arc::new(Stm::new(CertifiedFactory::new(c(), ZStm::new))),
        ),
    ]
}

fn run<R>(stm: &Arc<dyn DynStm>, body: impl FnMut(&mut dyn DynTx) -> Result<R, Abort>) -> R {
    stm.atomically(TxKind::Short, &RetryPolicy::unbounded(), body)
        .expect("unbounded")
}

#[test]
fn containers_run_the_same_script_on_every_engine_and_certified_wrapper() {
    for (name, stm) in all_configs(1) {
        let map: TMap<u64, String> = TMap::new(&*stm, 4);
        let set: TSet<u64> = TSet::new(&*stm, 4);
        let queue: TQueue<u64> = TQueue::new(&*stm, 3);
        let deque: TDeque<i64> = TDeque::new(&*stm, 3);

        // One transaction spanning all four containers.
        run(&stm, |tx| {
            map.insert(tx, &1, &"one".to_string())?;
            set.insert(tx, &1)?;
            queue.push(tx, &10)?;
            deque.push_front(tx, &-10)?;
            Ok(())
        });
        assert_eq!(
            run(&stm, |tx| map.get(tx, &1)),
            Some("one".to_string()),
            "{name}: map round trip"
        );
        assert!(run(&stm, |tx| set.contains(tx, &1)), "{name}: set member");
        assert_eq!(run(&stm, |tx| queue.pop(tx)), 10, "{name}: queue pop");
        assert_eq!(run(&stm, |tx| deque.pop_back(tx)), -10, "{name}: deque pop");
        assert!(
            stm.take_stats().total_commits() >= 4,
            "{name}: commits recorded through the facade"
        );
    }
}

#[test]
fn long_tx_bulk_seed_commits_on_every_engine_and_certified_wrapper() {
    // The workload seeding pattern: one *Long* transaction inserting
    // many keys, where co-bucketed keys force read-your-own-write on
    // the bucket variable. Regression for a Z-STM hang (the
    // repeated-open check treated the transaction's own tentative
    // version as a post-stamp intruder and aborted every attempt) —
    // the bounded policy turns any such livelock into a test failure.
    for (name, stm) in all_configs(1) {
        let map: TMap<u64, u64> = TMap::new(&*stm, 2);
        let seeded = stm.atomically(
            TxKind::Long,
            &RetryPolicy::unbounded().with_max_attempts(50),
            |tx| {
                for k in 0..16u64 {
                    map.insert(tx, &k, &(k * 3))?;
                }
                map.len(tx)
            },
        );
        assert_eq!(seeded.ok(), Some(16), "{name}: long seed transaction");
        assert_eq!(run(&stm, |tx| map.get(tx, &5)), Some(15), "{name}: value");
    }
}

#[test]
fn blocking_pop_parks_and_is_woken_on_every_engine_and_certified_wrapper() {
    for (name, stm) in all_configs(2) {
        let queue: TQueue<u64> = TQueue::new(&*stm, 2);
        let consumer = {
            let (stm, queue) = (Arc::clone(&stm), queue.clone());
            std::thread::spawn(move || run(&stm, |tx| queue.pop(tx)))
        };
        // Let the consumer reach the park (best effort — correctness
        // does not depend on the sleep, only the blocking_retries
        // assertion's determinism is helped by it).
        std::thread::sleep(std::time::Duration::from_millis(15));
        run(&stm, |tx| queue.push(tx, &42));
        assert_eq!(consumer.join().expect("consumer"), 42, "{name}: wakeup");
    }
}

#[test]
fn cross_container_move_is_atomic_on_every_engine_and_certified_wrapper() {
    // Conservation under a concurrent mutator: items migrate from a
    // queue into a map; an auditor snapshot must always see every item
    // exactly once across the two containers.
    const ITEMS: u64 = 12;
    for (name, stm) in all_configs(2) {
        let queue: TQueue<u64> = TQueue::new(&*stm, ITEMS as usize);
        let map: TMap<u64, u64> = TMap::new(&*stm, 4);
        run(&stm, |tx| {
            for i in 0..ITEMS {
                queue.push(tx, &i)?;
            }
            Ok(())
        });
        let mover = {
            let (stm, queue, map) = (Arc::clone(&stm), queue.clone(), map.clone());
            std::thread::spawn(move || {
                for _ in 0..ITEMS {
                    run(&stm, |tx| {
                        let item = queue.pop(tx)?;
                        map.insert(tx, &item, &1)?;
                        Ok(())
                    });
                }
            })
        };
        for _ in 0..40 {
            let (queued, mapped) = run(&stm, |tx| Ok((queue.len(tx)?, map.len(tx)?)));
            assert_eq!(
                queued + mapped,
                ITEMS as usize,
                "{name}: an audit saw a torn cross-container move"
            );
        }
        mover.join().expect("mover");
        let (queued, mapped) = run(&stm, |tx| Ok((queue.len(tx)?, map.len(tx)?)));
        assert_eq!((queued, mapped), (0, ITEMS as usize), "{name}: final state");
    }
}
