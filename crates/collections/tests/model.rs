//! Model-based property tests: each container behaves exactly like its
//! `std::collections` reference under random (shrunk) operation
//! sequences, driven through the erased facade on several engines —
//! including an SSI-certified one, since the containers promise to run
//! unchanged under `CertifiedFactory`.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use proptest::prelude::*;
use zstm_api::{DynStm, DynTx, Stm};
use zstm_certify::CertifiedFactory;
use zstm_collections::{TDeque, TMap, TQueue, TSet};
use zstm_core::{Abort, RetryPolicy, StmConfig, TxKind};
use zstm_cs::CsStm;
use zstm_lsa::LsaStm;
use zstm_z::ZStm;

fn run<R>(stm: &Arc<dyn DynStm>, body: impl FnMut(&mut dyn DynTx) -> Result<R, Abort>) -> R {
    stm.atomically(TxKind::Short, &RetryPolicy::unbounded(), body)
        .expect("sequential bodies never exhaust an unbounded policy")
}

#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Len,
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        ((0u64..16), (0u64..1000)).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (0u64..16).prop_map(MapOp::Remove),
        (0u64..16).prop_map(MapOp::Get),
        Just(MapOp::Len),
    ]
}

fn check_map(stm: Arc<dyn DynStm>, buckets: usize, ops: &[MapOp]) -> Result<(), TestCaseError> {
    let map: TMap<u64, u64> = TMap::new(&*stm, buckets);
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            MapOp::Insert(k, v) => {
                let old = run(&stm, |tx| map.insert(tx, &k, &v));
                prop_assert_eq!(old, model.insert(k, v));
            }
            MapOp::Remove(k) => {
                let old = run(&stm, |tx| map.remove(tx, &k));
                prop_assert_eq!(old, model.remove(&k));
            }
            MapOp::Get(k) => {
                let found = run(&stm, |tx| map.get(tx, &k));
                prop_assert_eq!(found, model.get(&k).copied());
                let present = run(&stm, |tx| map.contains_key(tx, &k));
                prop_assert_eq!(present, model.contains_key(&k));
            }
            MapOp::Len => {
                prop_assert_eq!(run(&stm, |tx| map.len(tx)), model.len());
                prop_assert_eq!(run(&stm, |tx| map.is_empty(tx)), model.is_empty());
            }
        }
    }
    // Final structural comparison via iteration.
    let mut contents = run(&stm, |tx| {
        let mut out = Vec::new();
        map.for_each(tx, |k, v| out.push((k, v)))?;
        Ok(out)
    });
    contents.sort_unstable();
    let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
    expected.sort_unstable();
    prop_assert_eq!(contents, expected);
    Ok(())
}

#[derive(Clone, Debug)]
enum DequeOp {
    PushBack(u64),
    PushFront(u64),
    PopBack,
    PopFront,
    Len,
}

fn deque_op() -> impl Strategy<Value = DequeOp> {
    prop_oneof![
        (0u64..1000).prop_map(DequeOp::PushBack),
        (0u64..1000).prop_map(DequeOp::PushFront),
        Just(DequeOp::PopBack),
        Just(DequeOp::PopFront),
        Just(DequeOp::Len),
    ]
}

/// The queue is exercised through the non-blocking `try_` entry points so
/// a sequential script can observe full/empty instead of parking.
fn check_queue(
    stm: Arc<dyn DynStm>,
    capacity: usize,
    ops: &[DequeOp],
) -> Result<(), TestCaseError> {
    let queue: TQueue<u64> = TQueue::new(&*stm, capacity);
    let mut model: VecDeque<u64> = VecDeque::new();
    for op in ops {
        match *op {
            // The FIFO queue only has back-push/front-pop; map the other
            // two onto length checks so one strategy serves both rings.
            DequeOp::PushBack(v) | DequeOp::PushFront(v) => {
                let pushed = run(&stm, |tx| queue.try_push(tx, &v));
                prop_assert_eq!(pushed, model.len() < capacity);
                if pushed {
                    model.push_back(v);
                }
            }
            DequeOp::PopBack | DequeOp::PopFront => {
                let popped = run(&stm, |tx| queue.try_pop(tx));
                prop_assert_eq!(popped, model.pop_front());
            }
            DequeOp::Len => {
                prop_assert_eq!(run(&stm, |tx| queue.len(tx)), model.len());
            }
        }
    }
    prop_assert_eq!(run(&stm, |tx| queue.len(tx)), model.len());
    Ok(())
}

fn check_deque(
    stm: Arc<dyn DynStm>,
    capacity: usize,
    ops: &[DequeOp],
) -> Result<(), TestCaseError> {
    let deque: TDeque<u64> = TDeque::new(&*stm, capacity);
    let mut model: VecDeque<u64> = VecDeque::new();
    for op in ops {
        match *op {
            DequeOp::PushBack(v) => {
                if model.len() < capacity {
                    run(&stm, |tx| deque.push_back(tx, &v));
                    model.push_back(v);
                }
            }
            DequeOp::PushFront(v) => {
                if model.len() < capacity {
                    run(&stm, |tx| deque.push_front(tx, &v));
                    model.push_front(v);
                }
            }
            DequeOp::PopBack => {
                let popped = run(&stm, |tx| deque.try_pop_back(tx));
                prop_assert_eq!(popped, model.pop_back());
            }
            DequeOp::PopFront => {
                let popped = run(&stm, |tx| deque.try_pop_front(tx));
                prop_assert_eq!(popped, model.pop_front());
            }
            DequeOp::Len => {
                prop_assert_eq!(run(&stm, |tx| deque.len(tx)), model.len());
                prop_assert_eq!(run(&stm, |tx| deque.is_empty(tx)), model.is_empty());
            }
        }
    }
    prop_assert_eq!(run(&stm, |tx| deque.len(tx)), model.len());
    Ok(())
}

#[derive(Clone, Debug)]
enum SetOp {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0u64..24).prop_map(SetOp::Insert),
        (0u64..24).prop_map(SetOp::Remove),
        (0u64..24).prop_map(SetOp::Contains),
    ]
}

fn check_set(stm: Arc<dyn DynStm>, ops: &[SetOp]) -> Result<(), TestCaseError> {
    let set: TSet<u64> = TSet::new(&*stm, 8);
    let mut model: HashSet<u64> = HashSet::new();
    for op in ops {
        match *op {
            SetOp::Insert(v) => {
                prop_assert_eq!(run(&stm, |tx| set.insert(tx, &v)), model.insert(v));
            }
            SetOp::Remove(v) => {
                prop_assert_eq!(run(&stm, |tx| set.remove(tx, &v)), model.remove(&v));
            }
            SetOp::Contains(v) => {
                prop_assert_eq!(run(&stm, |tx| set.contains(tx, &v)), model.contains(&v));
            }
        }
    }
    prop_assert_eq!(run(&stm, |tx| set.len(tx)), model.len());
    Ok(())
}

fn lsa() -> Arc<dyn DynStm> {
    Arc::new(Stm::new(LsaStm::new(StmConfig::new(1))))
}

fn z() -> Arc<dyn DynStm> {
    Arc::new(Stm::new(ZStm::new(StmConfig::new(1))))
}

fn cs() -> Arc<dyn DynStm> {
    Arc::new(Stm::new(CsStm::with_vector_clock(StmConfig::new(1))))
}

fn certified_lsa() -> Arc<dyn DynStm> {
    Arc::new(Stm::new(CertifiedFactory::new(
        StmConfig::new(1),
        LsaStm::new,
    )))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tmap_matches_hashmap_on_lsa(ops in proptest::collection::vec(map_op(), 1..60)) {
        check_map(lsa(), 4, &ops)?;
    }

    #[test]
    fn tmap_matches_hashmap_on_z(ops in proptest::collection::vec(map_op(), 1..60)) {
        check_map(z(), 4, &ops)?;
    }

    #[test]
    fn tmap_matches_hashmap_on_certified_lsa(ops in proptest::collection::vec(map_op(), 1..40)) {
        check_map(certified_lsa(), 4, &ops)?;
    }

    #[test]
    fn tmap_matches_hashmap_with_one_bucket(ops in proptest::collection::vec(map_op(), 1..60)) {
        // Maximum collision pressure: every key in one bucket exercises
        // the in-place splice/drain paths constantly.
        check_map(lsa(), 1, &ops)?;
    }

    #[test]
    fn tqueue_matches_vecdeque_on_lsa(ops in proptest::collection::vec(deque_op(), 1..60)) {
        check_queue(lsa(), 4, &ops)?;
    }

    #[test]
    fn tqueue_matches_vecdeque_on_cs(ops in proptest::collection::vec(deque_op(), 1..60)) {
        check_queue(cs(), 4, &ops)?;
    }

    #[test]
    fn tdeque_matches_vecdeque_on_lsa(ops in proptest::collection::vec(deque_op(), 1..60)) {
        check_deque(lsa(), 4, &ops)?;
    }

    #[test]
    fn tdeque_matches_vecdeque_on_z(ops in proptest::collection::vec(deque_op(), 1..60)) {
        check_deque(z(), 4, &ops)?;
    }

    #[test]
    fn tset_matches_hashset_on_lsa(ops in proptest::collection::vec(set_op(), 1..60)) {
        check_set(lsa(), &ops)?;
    }

    #[test]
    fn tset_matches_hashset_on_certified_lsa(ops in proptest::collection::vec(set_op(), 1..40)) {
        check_set(certified_lsa(), &ops)?;
    }
}
