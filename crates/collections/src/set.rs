//! [`TSet`]: a transactional hash set, a thin veneer over
//! [`TMap<T, ()>`] so it inherits the per-bucket conflict granularity
//! (and the fixed-fanout design note) without a second storage scheme.

use zstm_api::{DynStm, DynTx};
use zstm_core::Abort;

use crate::codec::Codec;
use crate::map::TMap;

/// A transactional hash set over per-bucket variables: membership
/// operations on elements in different buckets never conflict.
///
/// ```
/// use std::sync::Arc;
/// use zstm_api::{DynStm, Stm};
/// use zstm_collections::TSet;
/// use zstm_core::{RetryPolicy, StmConfig, TxKind};
/// use zstm_lsa::LsaStm;
///
/// let stm: Arc<dyn DynStm> = Arc::new(Stm::new(LsaStm::new(StmConfig::new(1))));
/// let set: TSet<String> = TSet::new(&*stm, 8);
/// let fresh = stm
///     .atomically(TxKind::Short, &RetryPolicy::unbounded(), |tx| {
///         set.insert(tx, &"podc".to_string())
///     })
///     .unwrap();
/// assert!(fresh);
/// ```
pub struct TSet<T: Codec> {
    map: TMap<T, ()>,
}

impl<T: Codec> Clone for TSet<T> {
    fn clone(&self) -> Self {
        Self {
            map: self.map.clone(),
        }
    }
}

impl<T: Codec> std::fmt::Debug for TSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TSet")
            .field("buckets", &self.map.bucket_count())
            .finish_non_exhaustive()
    }
}

impl<T: Codec> TSet<T> {
    /// Creates an empty set with a fixed fanout of `buckets` variables.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(stm: &dyn DynStm, buckets: usize) -> Self {
        Self {
            map: TMap::new(stm, buckets),
        }
    }

    /// The fixed bucket fanout chosen at construction.
    pub fn bucket_count(&self) -> usize {
        self.map.bucket_count()
    }

    /// Inserts `value`; `true` iff it was not already present.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts resolved against this transaction.
    pub fn insert(&self, tx: &mut dyn DynTx, value: &T) -> Result<bool, Abort> {
        Ok(self.map.insert(tx, value, &())?.is_none())
    }

    /// Removes `value`; `true` iff it was present.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts resolved against this transaction.
    pub fn remove(&self, tx: &mut dyn DynTx, value: &T) -> Result<bool, Abort> {
        Ok(self.map.remove(tx, value)?.is_some())
    }

    /// `true` iff `value` is present.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn contains(&self, tx: &mut dyn DynTx, value: &T) -> Result<bool, Abort> {
        self.map.contains_key(tx, value)
    }

    /// Number of elements (whole-set footprint, like [`TMap::len`]).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn len(&self, tx: &mut dyn DynTx) -> Result<usize, Abort> {
        self.map.len(tx)
    }

    /// `true` iff the set is empty (whole-set footprint).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn is_empty(&self, tx: &mut dyn DynTx) -> Result<bool, Abort> {
        self.map.is_empty(tx)
    }

    /// Calls `f` for every element (whole-set footprint; bucket order).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn for_each(&self, tx: &mut dyn DynTx, mut f: impl FnMut(T)) -> Result<(), Abort> {
        self.map.for_each(tx, |value, ()| f(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zstm_api::Stm;
    use zstm_core::{RetryPolicy, StmConfig, TxKind};
    use zstm_z::ZStm;

    #[test]
    fn set_semantics_hold() {
        let stm: Arc<dyn DynStm> = Arc::new(Stm::new(ZStm::new(StmConfig::new(1))));
        let set: TSet<u64> = TSet::new(&*stm, 4);
        let policy = RetryPolicy::unbounded();
        let (first, second) = stm
            .atomically(TxKind::Short, &policy, |tx| {
                Ok((set.insert(tx, &5)?, set.insert(tx, &5)?))
            })
            .unwrap();
        assert!(first, "first insert is fresh");
        assert!(!second, "second insert of the same value is not");
        assert!(stm
            .atomically(TxKind::Short, &policy, |tx| set.contains(tx, &5))
            .unwrap());
        assert_eq!(
            stm.atomically(TxKind::Short, &policy, |tx| set.len(tx))
                .unwrap(),
            1
        );
        assert!(stm
            .atomically(TxKind::Short, &policy, |tx| set.remove(tx, &5))
            .unwrap());
        assert!(stm
            .atomically(TxKind::Short, &policy, |tx| set.is_empty(tx))
            .unwrap());
    }
}
