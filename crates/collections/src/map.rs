//! [`TMap`]: a transactional hash map with per-bucket conflict
//! granularity.
//!
//! # Conflict granularity
//!
//! The whole point of the container (and the `collections` figure built
//! on it) is *where* conflicts happen. A single-cell map — the
//! `StmCell<HashMap>` idiom — makes every writer conflict with every
//! other writer and invalidate every reader, no matter which keys they
//! touch. `TMap` instead spreads its entries over `buckets` independent
//! bytes variables of the erased facade and routes each key to
//! `fnv1a(encoded key) % buckets`: transactions on keys in different
//! buckets read and write *disjoint* variables and never conflict, on
//! any of the five engines.
//!
//! # Fixed fanout (the bucket-split design note)
//!
//! The bucket count is fixed at construction; `TMap` never splits or
//! rehashes. A growable map would have to keep the bucket directory
//! itself in a transactional variable, and then **every** operation
//! reads the directory: a split rewrites it and conflicts with every
//! concurrent transaction — exactly the coarse-granularity cliff this
//! container exists to avoid, paid at unpredictable moments. (Finer
//! schemes — splitting one bucket at a time behind a version guard à la
//! linear hashing — keep a directory *read* in every operation's
//! footprint, which the certified engines' SSI layer then treats as a
//! rw-dependency source.) Since the map's capacity is not bounded by
//! the fanout (buckets are unbounded byte strings, lookups just degrade
//! linearly past ~a few dozen entries per bucket), fixing the fanout
//! buys conflict-footprint predictability for a one-line sizing
//! decision at creation, and the `repro_figures collections` sweep
//! measures exactly that trade.

use std::marker::PhantomData;

use zstm_api::{DynStm, DynTx, DynVar};
use zstm_core::Abort;

use crate::codec::{fnv1a, Codec};

/// Variance marker: ties a container to `K`/`V` without owning either
/// (the data lives in the STM's byte variables, not in the struct).
type KvMarker<K, V> = PhantomData<fn(K, V) -> (K, V)>;

/// A transactional hash map over per-bucket variables of the erased
/// facade: operations on keys in different buckets never conflict.
///
/// Create one with [`TMap::new`] against any [`DynStm`] (every `Stm<F>`
/// is one, including SSI-certified factories), then call the operations
/// inside an atomic block with the transaction handle — a typed
/// `Tx<'_, F>` coerces to `&mut dyn DynTx` at the call site, so the
/// same container serves typed and runtime-selected engines:
///
/// ```
/// use std::sync::Arc;
/// use zstm_api::{DynStm, Stm};
/// use zstm_collections::TMap;
/// use zstm_core::{RetryPolicy, StmConfig, TxKind};
/// use zstm_z::ZStm;
///
/// let stm: Arc<dyn DynStm> = Arc::new(Stm::new(ZStm::new(StmConfig::new(1))));
/// let map: TMap<u64, String> = TMap::new(&*stm, 16);
/// let old = stm
///     .atomically(TxKind::Short, &RetryPolicy::unbounded(), |tx| {
///         map.insert(tx, &7, &"seven".to_string())
///     })
///     .unwrap();
/// assert_eq!(old, None);
/// let found = stm
///     .atomically(TxKind::Short, &RetryPolicy::unbounded(), |tx| map.get(tx, &7))
///     .unwrap();
/// assert_eq!(found.as_deref(), Some("seven"));
/// ```
///
/// Like every [`DynVar`]-based structure, a `TMap` is tied to the
/// [`DynStm`] *instance* that created it; using it under another
/// instance panics rather than mixing two STMs' clocks.
pub struct TMap<K: Codec, V: Codec> {
    buckets: Vec<DynVar>,
    _types: KvMarker<K, V>,
}

impl<K: Codec, V: Codec> Clone for TMap<K, V> {
    fn clone(&self) -> Self {
        Self {
            buckets: self.buckets.clone(),
            _types: PhantomData,
        }
    }
}

impl<K: Codec, V: Codec> std::fmt::Debug for TMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TMap")
            .field("buckets", &self.buckets.len())
            .finish_non_exhaustive()
    }
}

/// One bucket's byte layout: repeated `[u32 klen][key][u32 vlen][value]`
/// entries. Parses a bucket into `(entry range, key bytes, value bytes)`
/// triples; the encoding is produced only by this module, so malformed
/// bytes indicate corruption and panic (unwinding aborts the enclosing
/// transaction).
fn entries(bucket: &[u8]) -> impl Iterator<Item = (std::ops::Range<usize>, &[u8], &[u8])> {
    let mut pos = 0usize;
    std::iter::from_fn(move || {
        if pos == bucket.len() {
            return None;
        }
        let start = pos;
        let field = |at: usize| -> (usize, usize) {
            let len = u32::from_le_bytes(
                bucket
                    .get(at..at + 4)
                    .expect("corrupt TMap bucket: truncated length")
                    .try_into()
                    .expect("4 bytes"),
            ) as usize;
            assert!(at + 4 + len <= bucket.len(), "corrupt TMap bucket: overrun");
            (at + 4, at + 4 + len)
        };
        let (key_start, key_end) = field(pos);
        let (value_start, value_end) = field(key_end);
        pos = value_end;
        Some((
            start..value_end,
            &bucket[key_start..key_end],
            &bucket[value_start..value_end],
        ))
    })
}

fn push_entry(bucket: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    let len = |b: &[u8]| {
        u32::try_from(b.len())
            .expect("entry fits in u32")
            .to_le_bytes()
    };
    bucket.extend_from_slice(&len(key));
    bucket.extend_from_slice(key);
    bucket.extend_from_slice(&len(value));
    bucket.extend_from_slice(value);
}

impl<K: Codec, V: Codec> TMap<K, V> {
    /// Creates an empty map with a fixed fanout of `buckets` independent
    /// variables (see the module docs for why the fanout never changes).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(stm: &dyn DynStm, buckets: usize) -> Self {
        assert!(buckets > 0, "TMap needs at least one bucket");
        Self {
            buckets: (0..buckets).map(|_| stm.new_bytes(Vec::new())).collect(),
            _types: PhantomData,
        }
    }

    /// The fixed bucket fanout chosen at construction.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket index `key` routes to — exposed so tests and workloads
    /// can reason about which keys share a conflict footprint.
    pub fn bucket_of(&self, key: &K) -> usize {
        (fnv1a(&key.to_bytes()) % self.buckets.len() as u64) as usize
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn get(&self, tx: &mut dyn DynTx, key: &K) -> Result<Option<V>, Abort> {
        let key_bytes = key.to_bytes();
        let bucket = tx.read_bytes(&self.buckets[self.bucket_of(key)])?;
        let found = entries(&bucket)
            .find(|(_, k, _)| *k == key_bytes)
            .map(|(_, _, v)| V::decode(v).expect("corrupt TMap value"));
        Ok(found)
    }

    /// `true` iff `key` is present.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn contains_key(&self, tx: &mut dyn DynTx, key: &K) -> Result<bool, Abort> {
        let key_bytes = key.to_bytes();
        let bucket = tx.read_bytes(&self.buckets[self.bucket_of(key)])?;
        let present = entries(&bucket).any(|(_, k, _)| k == key_bytes);
        Ok(present)
    }

    /// Inserts or replaces `key`'s value, returning the previous one.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts resolved against this transaction.
    pub fn insert(&self, tx: &mut dyn DynTx, key: &K, value: &V) -> Result<Option<V>, Abort> {
        let key_bytes = key.to_bytes();
        let var = &self.buckets[self.bucket_of(key)];
        let mut bucket = tx.read_bytes(var)?;
        let previous = entries(&bucket)
            .find(|(_, k, _)| *k == key_bytes)
            .map(|(range, _, v)| (range, V::decode(v).expect("corrupt TMap value")));
        match previous {
            Some((range, old)) => {
                let mut replacement = Vec::with_capacity(bucket.len());
                push_entry(&mut replacement, &key_bytes, &value.to_bytes());
                bucket.splice(range, replacement);
                tx.write_bytes(var, bucket)?;
                Ok(Some(old))
            }
            None => {
                push_entry(&mut bucket, &key_bytes, &value.to_bytes());
                tx.write_bytes(var, bucket)?;
                Ok(None)
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts resolved against this transaction.
    pub fn remove(&self, tx: &mut dyn DynTx, key: &K) -> Result<Option<V>, Abort> {
        let key_bytes = key.to_bytes();
        let var = &self.buckets[self.bucket_of(key)];
        let mut bucket = tx.read_bytes(var)?;
        let found = entries(&bucket)
            .find(|(_, k, _)| *k == key_bytes)
            .map(|(range, _, v)| (range, V::decode(v).expect("corrupt TMap value")));
        match found {
            Some((range, old)) => {
                bucket.drain(range);
                tx.write_bytes(var, bucket)?;
                Ok(Some(old))
            }
            None => Ok(None),
        }
    }

    /// Number of entries. Reads **every** bucket — a whole-map footprint
    /// that conflicts with all concurrent writers, like any consistent
    /// size snapshot must; prefer per-key operations on hot paths.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn len(&self, tx: &mut dyn DynTx) -> Result<usize, Abort> {
        let mut count = 0;
        for var in &self.buckets {
            let bucket = tx.read_bytes(var)?;
            count += entries(&bucket).count();
        }
        Ok(count)
    }

    /// `true` iff the map holds no entries (whole-map footprint, like
    /// [`len`](Self::len)).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn is_empty(&self, tx: &mut dyn DynTx) -> Result<bool, Abort> {
        for var in &self.buckets {
            let bucket = tx.read_bytes(var)?;
            if entries(&bucket).next().is_some() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Calls `f` for every entry, bucket by bucket (whole-map footprint;
    /// iteration order is bucket order, not insertion order).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn for_each(&self, tx: &mut dyn DynTx, mut f: impl FnMut(K, V)) -> Result<(), Abort> {
        for var in &self.buckets {
            let bucket = tx.read_bytes(var)?;
            for (_, k, v) in entries(&bucket) {
                f(
                    K::decode(k).expect("corrupt TMap key"),
                    V::decode(v).expect("corrupt TMap value"),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zstm_api::Stm;
    use zstm_core::{RetryPolicy, StmConfig, TxKind};
    use zstm_lsa::LsaStm;

    fn stm() -> Arc<dyn DynStm> {
        Arc::new(Stm::new(LsaStm::new(StmConfig::new(1))))
    }

    fn run<R>(stm: &Arc<dyn DynStm>, body: impl FnMut(&mut dyn DynTx) -> Result<R, Abort>) -> R {
        stm.atomically(TxKind::Short, &RetryPolicy::unbounded(), body)
            .expect("unbounded")
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let stm = stm();
        let map: TMap<u64, String> = TMap::new(&*stm, 4);
        assert_eq!(run(&stm, |tx| map.insert(tx, &1, &"a".into())), None);
        assert_eq!(
            run(&stm, |tx| map.insert(tx, &1, &"b".into())),
            Some("a".to_string())
        );
        assert_eq!(run(&stm, |tx| map.get(tx, &1)), Some("b".to_string()));
        assert_eq!(run(&stm, |tx| map.get(tx, &2)), None);
        assert_eq!(run(&stm, |tx| map.remove(tx, &1)), Some("b".to_string()));
        assert_eq!(run(&stm, |tx| map.remove(tx, &1)), None);
        assert!(run(&stm, |tx| map.is_empty(tx)));
    }

    #[test]
    fn colliding_keys_share_a_bucket_without_clobbering() {
        let stm = stm();
        // One bucket: every key collides by construction.
        let map: TMap<u64, u64> = TMap::new(&*stm, 1);
        run(&stm, |tx| {
            for k in 0..32u64 {
                map.insert(tx, &k, &(k * k))?;
            }
            Ok(())
        });
        assert_eq!(run(&stm, |tx| map.len(tx)), 32);
        for k in 0..32u64 {
            assert_eq!(run(&stm, |tx| map.get(tx, &k)), Some(k * k));
        }
        // Remove from the middle and verify neighbours survive.
        assert_eq!(run(&stm, |tx| map.remove(tx, &15)), Some(225));
        assert_eq!(run(&stm, |tx| map.get(tx, &14)), Some(196));
        assert_eq!(run(&stm, |tx| map.get(tx, &16)), Some(256));
        assert_eq!(run(&stm, |tx| map.len(tx)), 31);
    }

    #[test]
    fn variable_width_values_replace_in_place() {
        let stm = stm();
        let map: TMap<String, Vec<u64>> = TMap::new(&*stm, 2);
        run(&stm, |tx| {
            map.insert(tx, &"k".into(), &vec![1, 2, 3])?;
            map.insert(tx, &"other".into(), &vec![9])?;
            Ok(())
        });
        // Shrink then grow the same key's value; the co-bucketed entry
        // must be untouched either way.
        assert_eq!(
            run(&stm, |tx| map.insert(tx, &"k".into(), &vec![7])),
            Some(vec![1, 2, 3])
        );
        assert_eq!(
            run(&stm, |tx| map.insert(tx, &"k".into(), &vec![0; 20])),
            Some(vec![7])
        );
        assert_eq!(run(&stm, |tx| map.get(tx, &"other".into())), Some(vec![9]));
        assert_eq!(run(&stm, |tx| map.len(tx)), 2);
    }

    #[test]
    fn for_each_visits_every_entry_once() {
        let stm = stm();
        let map: TMap<u64, u64> = TMap::new(&*stm, 8);
        run(&stm, |tx| {
            for k in 0..20u64 {
                map.insert(tx, &k, &k)?;
            }
            Ok(())
        });
        let mut seen = run(&stm, |tx| {
            let mut seen = Vec::new();
            map.for_each(tx, |k, v| seen.push((k, v)))?;
            Ok(seen)
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..20u64).map(|k| (k, k)).collect::<Vec<_>>());
    }

    #[test]
    fn bucket_of_is_stable_and_in_range() {
        let stm = stm();
        let map: TMap<u64, ()> = TMap::new(&*stm, 7);
        for k in 0..100u64 {
            let b = map.bucket_of(&k);
            assert!(b < 7);
            assert_eq!(b, map.bucket_of(&k), "routing must be deterministic");
        }
    }
}
