//! Byte codecs for container keys and values.
//!
//! The erased facade stores two value shapes: `i64` and byte strings
//! (see [`zstm_api::DynTx`]). The containers keep arbitrary typed keys
//! and values inside *bytes* variables, so every element type needs a
//! self-describing byte encoding. [`Codec`] is that contract.
//!
//! Two properties matter beyond round-tripping:
//!
//! * **Injectivity** — [`TMap`](crate::TMap) compares keys by their
//!   encoded bytes (no `Eq` bound), so two keys must encode equal iff
//!   they are equal. Every provided implementation is injective.
//! * **Self-delimiting context** — entries are stored length-prefixed,
//!   so [`Codec::decode`] always receives exactly the bytes one
//!   [`Codec::encode`] produced.

/// A value that round-trips through a byte encoding, usable as a
/// container key or value.
///
/// Implementations must be *injective* (equal bytes ⟺ equal values) and
/// total on their own output: `decode(encode(v)) == Some(v)`.
pub trait Codec: Sized + Send + Sync + 'static {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes a value from exactly the bytes one [`encode`](Self::encode)
    /// produced; `None` on any malformed input.
    fn decode(bytes: &[u8]) -> Option<Self>;

    /// Convenience: this value's encoding as a fresh vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

macro_rules! int_codec {
    ($($ty:ty),*) => {$(
        impl Codec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(bytes: &[u8]) -> Option<Self> {
                Some(<$ty>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

int_codec!(u8, i8, u16, i16, u32, i32, u64, i64, u128, i128);

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

impl Codec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(())
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// Length-prefixed elements, so variable-width element encodings stay
/// self-delimiting. (`Vec<u8>` takes this path too — one prefix byte of
/// overhead per element buys one blanket impl with no overlap.)
impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        for item in self {
            let start = out.len();
            out.extend_from_slice(&[0; 4]);
            item.encode(out);
            let len = u32::try_from(out.len() - start - 4).expect("element fits in u32");
            out[start..start + 4].copy_from_slice(&len.to_le_bytes());
        }
    }

    fn decode(mut bytes: &[u8]) -> Option<Self> {
        let mut items = Vec::new();
        while !bytes.is_empty() {
            let len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
            let rest = bytes.get(4..)?;
            items.push(T::decode(rest.get(..len)?)?);
            bytes = rest.get(len..)?;
        }
        Some(items)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0; 4]);
        self.0.encode(out);
        let len = u32::try_from(out.len() - start - 4).expect("first element fits in u32");
        out[start..start + 4].copy_from_slice(&len.to_le_bytes());
        self.1.encode(out);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let rest = bytes.get(4..)?;
        Some((A::decode(rest.get(..len)?)?, B::decode(rest.get(len..)?)?))
    }
}

/// FNV-1a over a byte string — the deterministic, dependency-free hash
/// the containers use to pick a bucket from an encoded key. Determinism
/// matters: bucket placement is part of the conflict-granularity story
/// the benchmarks measure, so it must not vary between runs or hosts.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        assert_eq!(T::decode(&value.to_bytes()).as_ref(), Some(&value));
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(-7i64);
        round_trip(u64::MAX);
        round_trip(i128::MIN);
        round_trip(true);
        round_trip(());
        round_trip("köttbullar".to_string());
    }

    #[test]
    fn composites_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip(vec![b"ab".to_vec(), Vec::new(), b"c".to_vec()]);
        round_trip((42u32, "x".to_string()));
        round_trip(vec![(1i64, 2i64), (3, 4)]);
    }

    #[test]
    fn malformed_input_is_rejected_not_misread() {
        assert_eq!(u32::decode(&[1, 2, 3]), None);
        assert_eq!(bool::decode(&[2]), None);
        assert_eq!(<()>::decode(&[0]), None);
        // Truncated length prefix and truncated payload.
        assert_eq!(Vec::<u64>::decode(&[5, 0, 0]), None);
        assert_eq!(Vec::<u64>::decode(&[8, 0, 0, 0, 1, 2]), None);
        assert_eq!(<(u32, u32)>::decode(&[4, 0, 0, 0, 1]), None);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so bucket placement (and thus the granularity figures)
        // can never drift silently.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
