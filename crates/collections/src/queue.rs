//! [`TQueue`] and [`TDeque`]: bounded transactional rings with
//! composable `retry`-based blocking.
//!
//! Both generalize the hand-rolled ring in `zstm-workload`'s queue
//! driver: two `i64` cursor variables plus one bytes variable per slot.
//! A blocking [`TQueue::pop`] on an empty ring (or [`TQueue::push`] on a
//! full one) returns `Err(tx.retry())`, which the `zstm-api` layer turns
//! into a *parked* wait on the commit notifier — no spinning — and
//! because it is just an abort reason, blocking operations **compose**:
//! a transaction may pop one queue and push another, and it parks until
//! *both* sides can proceed atomically.
//!
//! # Conflict footprint
//!
//! Cursors are deliberately separate variables: a push writes `tail` and
//! one slot, a pop writes `head` and reads one slot, so on a non-empty,
//! non-full ring a push and a pop touch disjoint write sets. (They still
//! *read* both cursors to evaluate the empty/full guard — a single-cell
//! `VecDeque`-in-a-var queue, by contrast, makes push and pop write the
//! same variable and conflict always.)

use std::marker::PhantomData;

use zstm_api::{DynStm, DynTx, DynVar};
use zstm_core::Abort;

use crate::codec::Codec;

/// Shared ring storage for [`TQueue`] and [`TDeque`].
///
/// `head` and `tail` are monotone cursors (pop/front index and push/back
/// index); the deque moves `head` down too, so slot indices are taken
/// `rem_euclid` capacity. `tail - head` is the live length, kept within
/// `0..=capacity` by the guards.
struct Ring {
    head: DynVar,
    tail: DynVar,
    slots: Vec<DynVar>,
}

impl Ring {
    fn new(stm: &dyn DynStm, capacity: usize) -> Self {
        assert!(capacity > 0, "transactional rings need capacity >= 1");
        Self {
            head: stm.new_i64(0),
            tail: stm.new_i64(0),
            slots: (0..capacity).map(|_| stm.new_bytes(Vec::new())).collect(),
        }
    }

    fn slot(&self, index: i64) -> &DynVar {
        let capacity = self.slots.len() as i64;
        &self.slots[index.rem_euclid(capacity) as usize]
    }

    fn len(&self, tx: &mut dyn DynTx) -> Result<usize, Abort> {
        let head = tx.read_i64(&self.head)?;
        let tail = tx.read_i64(&self.tail)?;
        Ok((tail - head) as usize)
    }
}

/// A bounded FIFO channel with blocking transactional push/pop.
///
/// ```
/// use std::sync::Arc;
/// use zstm_api::{DynStm, Stm};
/// use zstm_collections::TQueue;
/// use zstm_core::{RetryPolicy, StmConfig, TxKind};
/// use zstm_lsa::LsaStm;
///
/// let stm: Arc<dyn DynStm> = Arc::new(Stm::new(LsaStm::new(StmConfig::new(2))));
/// let queue: TQueue<u64> = TQueue::new(&*stm, 4);
/// let policy = RetryPolicy::unbounded();
/// stm.atomically(TxKind::Short, &policy, |tx| queue.push(tx, &7)).unwrap();
///
/// // pop blocks while empty — here the ring holds an item, so it returns
/// // immediately; on an empty ring the transaction parks until a push
/// // commits (see the workspace interleaving tests).
/// let v = stm
///     .atomically(TxKind::Short, &policy, |tx| queue.pop(tx))
///     .unwrap();
/// assert_eq!(v, 7);
/// ```
pub struct TQueue<T: Codec> {
    ring: Ring,
    _type: PhantomData<fn(T) -> T>,
}

impl<T: Codec> Clone for TQueue<T> {
    fn clone(&self) -> Self {
        Self {
            ring: Ring {
                head: self.ring.head.clone(),
                tail: self.ring.tail.clone(),
                slots: self.ring.slots.clone(),
            },
            _type: PhantomData,
        }
    }
}

impl<T: Codec> std::fmt::Debug for TQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TQueue")
            .field("capacity", &self.ring.slots.len())
            .finish_non_exhaustive()
    }
}

impl<T: Codec> TQueue<T> {
    /// Creates an empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(stm: &dyn DynStm, capacity: usize) -> Self {
        Self {
            ring: Ring::new(stm, capacity),
            _type: PhantomData,
        }
    }

    /// The fixed capacity chosen at construction.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }

    /// Number of queued items.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn len(&self, tx: &mut dyn DynTx) -> Result<usize, Abort> {
        self.ring.len(tx)
    }

    /// `true` iff no items are queued.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn is_empty(&self, tx: &mut dyn DynTx) -> Result<bool, Abort> {
        Ok(self.ring.len(tx)? == 0)
    }

    /// Enqueues `value`, **blocking** (via `tx.retry()`) while the ring
    /// is full: the transaction parks until a pop commits.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts, or the retry abort while full.
    pub fn push(&self, tx: &mut dyn DynTx, value: &T) -> Result<(), Abort> {
        if self.try_push(tx, value)? {
            Ok(())
        } else {
            Err(tx.retry())
        }
    }

    /// Dequeues the oldest item, **blocking** while the ring is empty:
    /// the transaction parks until a push commits.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts, or the retry abort while empty.
    pub fn pop(&self, tx: &mut dyn DynTx) -> Result<T, Abort> {
        match self.try_pop(tx)? {
            Some(value) => Ok(value),
            None => Err(tx.retry()),
        }
    }

    /// Non-blocking enqueue: `false` (instead of retrying) when full.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts resolved against this transaction.
    pub fn try_push(&self, tx: &mut dyn DynTx, value: &T) -> Result<bool, Abort> {
        let head = tx.read_i64(&self.ring.head)?;
        let tail = tx.read_i64(&self.ring.tail)?;
        if tail - head >= self.ring.slots.len() as i64 {
            return Ok(false);
        }
        tx.write_bytes(self.ring.slot(tail), value.to_bytes())?;
        tx.write_i64(&self.ring.tail, tail + 1)?;
        Ok(true)
    }

    /// Non-blocking dequeue: `None` (instead of retrying) when empty.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts resolved against this transaction.
    pub fn try_pop(&self, tx: &mut dyn DynTx) -> Result<Option<T>, Abort> {
        let head = tx.read_i64(&self.ring.head)?;
        let tail = tx.read_i64(&self.ring.tail)?;
        if head == tail {
            return Ok(None);
        }
        let bytes = tx.read_bytes(self.ring.slot(head))?;
        tx.write_i64(&self.ring.head, head + 1)?;
        Ok(Some(T::decode(&bytes).expect("corrupt TQueue slot")))
    }
}

/// A bounded double-ended queue: [`TQueue`]'s ring with both cursors
/// movable, so items can be pushed and popped at either end (blocking
/// pops/pushes park exactly like the queue's).
///
/// The `head` cursor can go negative (a front push moves it down);
/// slots are indexed `rem_euclid` capacity, so the ring wraps cleanly.
pub struct TDeque<T: Codec> {
    ring: Ring,
    _type: PhantomData<fn(T) -> T>,
}

impl<T: Codec> Clone for TDeque<T> {
    fn clone(&self) -> Self {
        Self {
            ring: Ring {
                head: self.ring.head.clone(),
                tail: self.ring.tail.clone(),
                slots: self.ring.slots.clone(),
            },
            _type: PhantomData,
        }
    }
}

impl<T: Codec> std::fmt::Debug for TDeque<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TDeque")
            .field("capacity", &self.ring.slots.len())
            .finish_non_exhaustive()
    }
}

impl<T: Codec> TDeque<T> {
    /// Creates an empty deque holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(stm: &dyn DynStm, capacity: usize) -> Self {
        Self {
            ring: Ring::new(stm, capacity),
            _type: PhantomData,
        }
    }

    /// The fixed capacity chosen at construction.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }

    /// Number of queued items.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn len(&self, tx: &mut dyn DynTx) -> Result<usize, Abort> {
        self.ring.len(tx)
    }

    /// `true` iff no items are queued.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the engine cannot serve a consistent read.
    pub fn is_empty(&self, tx: &mut dyn DynTx) -> Result<bool, Abort> {
        Ok(self.ring.len(tx)? == 0)
    }

    fn full(&self, tx: &mut dyn DynTx) -> Result<bool, Abort> {
        Ok(self.ring.len(tx)? >= self.ring.slots.len())
    }

    /// Appends at the back, blocking while full.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts, or the retry abort while full.
    pub fn push_back(&self, tx: &mut dyn DynTx, value: &T) -> Result<(), Abort> {
        if self.full(tx)? {
            return Err(tx.retry());
        }
        let tail = tx.read_i64(&self.ring.tail)?;
        tx.write_bytes(self.ring.slot(tail), value.to_bytes())?;
        tx.write_i64(&self.ring.tail, tail + 1)?;
        Ok(())
    }

    /// Prepends at the front, blocking while full.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts, or the retry abort while full.
    pub fn push_front(&self, tx: &mut dyn DynTx, value: &T) -> Result<(), Abort> {
        if self.full(tx)? {
            return Err(tx.retry());
        }
        let head = tx.read_i64(&self.ring.head)?;
        tx.write_bytes(self.ring.slot(head - 1), value.to_bytes())?;
        tx.write_i64(&self.ring.head, head - 1)?;
        Ok(())
    }

    /// Removes from the front, blocking while empty.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts, or the retry abort while empty.
    pub fn pop_front(&self, tx: &mut dyn DynTx) -> Result<T, Abort> {
        match self.try_pop_front(tx)? {
            Some(value) => Ok(value),
            None => Err(tx.retry()),
        }
    }

    /// Removes from the back, blocking while empty.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts, or the retry abort while empty.
    pub fn pop_back(&self, tx: &mut dyn DynTx) -> Result<T, Abort> {
        match self.try_pop_back(tx)? {
            Some(value) => Ok(value),
            None => Err(tx.retry()),
        }
    }

    /// Non-blocking front pop: `None` when empty.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts resolved against this transaction.
    pub fn try_pop_front(&self, tx: &mut dyn DynTx) -> Result<Option<T>, Abort> {
        let head = tx.read_i64(&self.ring.head)?;
        let tail = tx.read_i64(&self.ring.tail)?;
        if head == tail {
            return Ok(None);
        }
        let bytes = tx.read_bytes(self.ring.slot(head))?;
        tx.write_i64(&self.ring.head, head + 1)?;
        Ok(Some(T::decode(&bytes).expect("corrupt TDeque slot")))
    }

    /// Non-blocking back pop: `None` when empty.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] on conflicts resolved against this transaction.
    pub fn try_pop_back(&self, tx: &mut dyn DynTx) -> Result<Option<T>, Abort> {
        let head = tx.read_i64(&self.ring.head)?;
        let tail = tx.read_i64(&self.ring.tail)?;
        if head == tail {
            return Ok(None);
        }
        let bytes = tx.read_bytes(self.ring.slot(tail - 1))?;
        tx.write_i64(&self.ring.tail, tail - 1)?;
        Ok(Some(T::decode(&bytes).expect("corrupt TDeque slot")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zstm_api::Stm;
    use zstm_core::{AbortReason, RetryPolicy, StmConfig, TxKind};
    use zstm_lsa::LsaStm;

    fn stm() -> Arc<dyn DynStm> {
        Arc::new(Stm::new(LsaStm::new(StmConfig::new(2))))
    }

    fn run<R>(stm: &Arc<dyn DynStm>, body: impl FnMut(&mut dyn DynTx) -> Result<R, Abort>) -> R {
        stm.atomically(TxKind::Short, &RetryPolicy::unbounded(), body)
            .expect("unbounded")
    }

    #[test]
    fn queue_is_fifo_and_wraps() {
        let stm = stm();
        let queue: TQueue<u64> = TQueue::new(&*stm, 3);
        // Two full fill/drain rounds force the cursors past the capacity.
        for round in 0..2u64 {
            for i in 0..3 {
                run(&stm, |tx| queue.push(tx, &(round * 10 + i)));
            }
            assert_eq!(run(&stm, |tx| queue.len(tx)), 3);
            assert!(!run(&stm, |tx| queue.try_push(tx, &99)), "full ring");
            for i in 0..3 {
                assert_eq!(run(&stm, |tx| queue.pop(tx)), round * 10 + i);
            }
            assert!(run(&stm, |tx| queue.is_empty(tx)));
        }
        assert_eq!(run(&stm, |tx| queue.try_pop(tx)), None);
    }

    #[test]
    fn bounded_pop_on_empty_queue_parks_then_gives_up() {
        let stm = stm();
        let queue: TQueue<u64> = TQueue::new(&*stm, 2);
        let err = stm
            .atomically(
                TxKind::Short,
                &RetryPolicy::unbounded().with_max_attempts(2),
                |tx| queue.pop(tx),
            )
            .expect_err("empty queue must exhaust the bounded budget");
        assert_eq!(err.last_reason(), AbortReason::Retry);
        assert!(stm.take_stats().blocking_retries() >= 1);
    }

    #[test]
    fn deque_serves_both_ends_and_wraps_negative() {
        let stm = stm();
        let deque: TDeque<i64> = TDeque::new(&*stm, 3);
        run(&stm, |tx| deque.push_front(tx, &2));
        run(&stm, |tx| deque.push_front(tx, &1));
        run(&stm, |tx| deque.push_back(tx, &3));
        // head is now negative: [-2, 1) holds 1, 2, 3 front-to-back.
        assert_eq!(run(&stm, |tx| deque.len(tx)), 3);
        let err = stm
            .atomically(
                TxKind::Short,
                &RetryPolicy::unbounded().with_max_attempts(2),
                |tx| deque.push_back(tx, &4),
            )
            .expect_err("full deque blocks");
        assert_eq!(err.last_reason(), AbortReason::Retry);
        assert_eq!(run(&stm, |tx| deque.pop_back(tx)), 3);
        assert_eq!(run(&stm, |tx| deque.pop_front(tx)), 1);
        assert_eq!(run(&stm, |tx| deque.pop_front(tx)), 2);
        assert_eq!(run(&stm, |tx| deque.try_pop_back(tx)), None);
    }

    #[test]
    fn deque_as_stack_from_either_end() {
        let stm = stm();
        let deque: TDeque<u64> = TDeque::new(&*stm, 8);
        for i in 0..4u64 {
            run(&stm, |tx| deque.push_back(tx, &i));
        }
        assert_eq!(run(&stm, |tx| deque.pop_back(tx)), 3);
        assert_eq!(run(&stm, |tx| deque.pop_back(tx)), 2);
        run(&stm, |tx| deque.push_front(tx, &9));
        assert_eq!(run(&stm, |tx| deque.pop_front(tx)), 9);
        assert_eq!(run(&stm, |tx| deque.pop_front(tx)), 0);
        assert_eq!(run(&stm, |tx| deque.len(tx)), 1);
    }

    #[test]
    fn blocked_pop_is_woken_by_a_push() {
        let stm = stm();
        let queue: TQueue<u64> = TQueue::new(&*stm, 2);
        let consumer = {
            let (stm, queue) = (Arc::clone(&stm), queue.clone());
            std::thread::spawn(move || run(&stm, |tx| queue.pop(tx)))
        };
        // Give the consumer a chance to park, then push.
        std::thread::sleep(std::time::Duration::from_millis(20));
        run(&stm, |tx| queue.push(tx, &77));
        assert_eq!(consumer.join().expect("consumer"), 77);
    }
}
