//! Transactional containers for the `zstm` engines.
//!
//! The paper's STMs (and this repo's workloads so far) operate on scalar
//! variables; real structure was faked over them — byte-packed map
//! buckets, a hand-rolled queue ring. This crate provides the typed
//! containers instead, built **only** on the `zstm-api` facade (no
//! engine code is touched):
//!
//! * [`TMap<K, V>`] — a hash map over **per-bucket** variables, so
//!   transactions on keys in different buckets never conflict (the
//!   conflict-granularity axis the `collections` figure measures), with
//!   a fixed-fanout design note on why it never splits buckets;
//! * [`TSet<T>`] — membership over `TMap<T, ()>`;
//! * [`TQueue<T>`] / [`TDeque<T>`] — bounded rings whose empty/full
//!   conditions *park* on `tx.retry()` instead of spinning;
//! * [`Codec`] — the byte encoding contract that lets typed keys and
//!   values live inside the facade's `i64`/bytes variables.
//!
//! Everything takes `&dyn DynStm` at construction and `&mut dyn DynTx`
//! per operation. Since every typed `Stm<F>` *is* a [`DynStm`] and every
//! `Tx<'_, F>` *is* a [`DynTx`] (unsized coercion at the call site), one
//! container implementation serves typed code, runtime-selected engines
//! and SSI-certified factories alike.
//!
//! # Cross-container atomicity
//!
//! Operations are plain calls inside one transaction body, so a single
//! transaction can span any number of containers — move an item from a
//! queue into a map and update a set, all-or-nothing:
//!
//! ```
//! use std::sync::Arc;
//! use zstm_api::{DynStm, Stm};
//! use zstm_collections::{TMap, TQueue, TSet};
//! use zstm_core::{RetryPolicy, StmConfig, TxKind};
//! use zstm_lsa::LsaStm;
//!
//! let stm: Arc<dyn DynStm> = Arc::new(Stm::new(LsaStm::new(StmConfig::new(1))));
//! let inbox: TQueue<u64> = TQueue::new(&*stm, 8);
//! let store: TMap<u64, u64> = TMap::new(&*stm, 16);
//! let seen: TSet<u64> = TSet::new(&*stm, 16);
//! let policy = RetryPolicy::unbounded();
//!
//! stm.atomically(TxKind::Short, &policy, |tx| inbox.push(tx, &7)).unwrap();
//! // One transaction over three containers: pop, file, mark. A blocked
//! // pop parks the whole composition until a push commits.
//! stm.atomically(TxKind::Short, &policy, |tx| {
//!     let item = inbox.pop(tx)?;
//!     store.insert(tx, &item, &(item * item))?;
//!     seen.insert(tx, &item)?;
//!     Ok(())
//! })
//! .unwrap();
//! ```
//!
//! [`DynStm`]: zstm_api::DynStm
//! [`DynTx`]: zstm_api::DynTx

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod map;
mod queue;
mod set;

pub use codec::Codec;
pub use map::TMap;
pub use queue::{TDeque, TQueue};
pub use set::TSet;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zstm_api::{DynStm, Stm, Tx};
    use zstm_core::{RetryPolicy, StmConfig, TxKind};
    use zstm_lsa::LsaStm;

    #[test]
    fn typed_tx_handles_drive_the_containers_directly() {
        // The containers take `&mut dyn DynTx`; a typed `Tx<'_, F>` must
        // coerce without any adapter.
        let stm = Stm::new(LsaStm::new(StmConfig::new(1)));
        let dyn_stm: &dyn DynStm = &stm;
        let map: TMap<u64, u64> = TMap::new(dyn_stm, 4);
        let sum = stm.atomically(TxKind::Short, |tx: &mut Tx<'_, LsaStm>| {
            map.insert(tx, &1, &10)?;
            map.insert(tx, &2, &20)?;
            let a = map.get(tx, &1)?.unwrap_or(0);
            let b = map.get(tx, &2)?.unwrap_or(0);
            Ok(a + b)
        });
        assert_eq!(sum, 30);
    }

    #[test]
    fn a_failed_transaction_leaves_no_partial_cross_container_effects() {
        let stm: Arc<dyn DynStm> = Arc::new(Stm::new(LsaStm::new(StmConfig::new(1))));
        let queue: TQueue<u64> = TQueue::new(&*stm, 2);
        let map: TMap<u64, u64> = TMap::new(&*stm, 4);
        let policy = RetryPolicy::unbounded();
        // The map insert happens, then the pop of an empty queue retries:
        // the bounded attempt exhausts and the insert must be rolled back
        // with it.
        let err = stm.atomically(
            TxKind::Short,
            &RetryPolicy::unbounded().with_max_attempts(2),
            |tx| {
                map.insert(tx, &1, &1)?;
                let v = queue.pop(tx)?;
                Ok(v)
            },
        );
        assert!(err.is_err(), "empty queue pop exhausts the bounded budget");
        let len = stm
            .atomically(TxKind::Short, &policy, |tx| map.len(tx))
            .unwrap();
        assert_eq!(len, 0, "aborted transaction's insert must be invisible");
    }
}
