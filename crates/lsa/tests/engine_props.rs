//! Property tests for the versioned-object engine: the version list
//! invariants and the snapshot-read semantics hold under arbitrary
//! committed-write sequences.

use std::sync::Arc;

use proptest::prelude::*;
use zstm_core::{CmPolicy, NullSink, StmConfig, ThreadId, TmFactory, TmTx, TxKind, TxShared};
use zstm_lsa::engine::VarCore;
use zstm_lsa::LsaStm;

/// Commits `value` onto `core` at commit time `ct` through the real
/// reservation/promotion protocol.
fn commit_write(core: &VarCore<i64>, value: i64, ct: u64) {
    let me = Arc::new(TxShared::start(ThreadId::new(0), TxKind::Short, 0));
    let cm = CmPolicy::Aggressive.build();
    core.reserve(&me, value, cm.as_ref()).expect("reserve");
    assert!(me.begin_commit());
    me.set_commit_ct(ct);
    me.finish_commit();
    core.promote_if_committed(&me);
}

proptest! {
    /// After any sequence of writes at strictly increasing commit times,
    /// `read_at(t)` returns exactly the value that was current at `t`.
    #[test]
    fn read_at_matches_reference_model(
        values in proptest::collection::vec(-100i64..100, 1..8),
        gaps in proptest::collection::vec(1u64..5, 1..8),
        probe in 0u64..40,
    ) {
        let n = values.len().min(gaps.len());
        let core = VarCore::new(0i64, 64, Arc::new(NullSink));
        // Reference model: (ct, value) pairs.
        let mut model: Vec<(u64, i64)> = vec![(0, 0)];
        let mut ct = 0;
        for i in 0..n {
            ct += gaps[i];
            commit_write(&core, values[i], ct);
            model.push((ct, values[i]));
        }
        let expected = model
            .iter()
            .rev()
            .find(|(t, _)| *t <= probe)
            .map(|(_, v)| *v);
        let got = core.read_at(None, probe).map(|hit| hit.value);
        prop_assert_eq!(got, expected);
    }

    /// The bounded history retains the newest versions and never more
    /// than the configured maximum.
    #[test]
    fn history_is_bounded_and_suffix(
        count in 1usize..20,
        max_versions in 1usize..6,
    ) {
        let core = VarCore::new(0i64, max_versions, Arc::new(NullSink));
        for i in 0..count {
            commit_write(&core, i as i64, (i as u64 + 1) * 10);
        }
        let versions = core.versions_snapshot();
        prop_assert!(versions.len() <= max_versions);
        // Sequence numbers are dense and end at `count`.
        let seqs: Vec<u64> = versions.iter().map(|v| v.seq).collect();
        let last = *seqs.last().expect("non-empty");
        prop_assert_eq!(last, count as u64);
        for pair in seqs.windows(2) {
            prop_assert_eq!(pair[1], pair[0] + 1);
        }
        // Commit times strictly increase.
        for pair in versions.windows(2) {
            prop_assert!(pair[0].ct < pair[1].ct);
        }
    }

    /// `validate_read(seq, t)` agrees with the reference definition:
    /// valid iff no successor of `seq` has a commit time <= t — modulo
    /// pruning, where the engine must err towards "invalid".
    #[test]
    fn validate_read_is_sound(
        count in 1usize..10,
        seq in 0u64..10,
        probe in 0u64..120,
    ) {
        let core = VarCore::new(0i64, 4, Arc::new(NullSink));
        for i in 0..count {
            commit_write(&core, i as i64, (i as u64 + 1) * 10);
        }
        let me = Arc::new(TxShared::start(ThreadId::new(0), TxKind::Short, 0));
        let verdict = core.validate_read(&me, seq, probe);
        let succ_ct = (seq as usize) < count; // successor exists iff seq < count
        if succ_ct {
            let succ_time = (seq + 1) * 10;
            if succ_time <= probe {
                prop_assert!(!verdict, "successor at {succ_time} <= {probe} must fail");
            }
            // If the successor is retained and later than probe, the
            // verdict must be positive; if pruned, a negative verdict is
            // allowed (conservative).
            let oldest = core.versions_snapshot()[0].seq;
            if succ_time > probe && seq + 1 >= oldest {
                prop_assert!(verdict, "retained later successor must pass");
            }
        } else {
            prop_assert!(verdict, "no successor: always valid");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequential transactions through the full LSA stack behave like a
    /// plain variable (a model-based test of the whole read/write/commit
    /// pipeline).
    #[test]
    fn lsa_sequential_matches_model(ops in proptest::collection::vec((0usize..4, -50i64..50, any::<bool>()), 1..40)) {
        let stm = Arc::new(LsaStm::new(StmConfig::new(1)));
        let vars: Vec<_> = (0..4).map(|_| stm.new_var(0i64)).collect();
        let mut model = [0i64; 4];
        let mut thread = stm.register_thread();
        for (index, value, is_write) in ops {
            let observed = zstm_core::atomically(
                &mut thread,
                TxKind::Short,
                &zstm_core::RetryPolicy::default(),
                |tx| {
                    if is_write {
                        tx.write(&vars[index], value)?;
                    }
                    tx.read(&vars[index])
                },
            )
            .expect("sequential commit");
            if is_write {
                model[index] = value;
            }
            prop_assert_eq!(observed, model[index]);
        }
    }
}
