//! The LSA-STM runtime: snapshot-interval transactions over [`VarCore`]
//! objects.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use zstm_clock::{ScalarClock, TimeBase};
use zstm_core::{
    Abort, AbortReason, ContentionManager, ObjId, StmConfig, ThreadId, TmFactory, TmThread, TmTx,
    TxEvent, TxEventKind, TxId, TxKind, TxShared, TxStats, TxValue, VersionSeq,
};

use crate::engine::{DynObject, HistoryGap, VarCore};

/// A transactional variable managed by [`LsaStm`].
///
/// Cheap to clone (it shares the underlying object); clones refer to the
/// same transactional state.
pub struct LsaVar<T: TxValue> {
    core: Arc<VarCore<T>>,
}

impl<T: TxValue> LsaVar<T> {
    /// The object's id in recorded histories.
    pub fn id(&self) -> ObjId {
        self.core.id()
    }

    /// Number of retained committed versions (diagnostics).
    pub fn version_count(&self) -> usize {
        self.core.version_count()
    }
}

impl<T: TxValue> Clone for LsaVar<T> {
    fn clone(&self) -> Self {
        Self {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: TxValue> std::fmt::Debug for LsaVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsaVar").field("core", &self.core).finish()
    }
}

/// The Lazy Snapshot Algorithm STM (the paper's baseline, from its
/// reference \[8\]).
///
/// * multi-version objects with a bounded history
///   ([`StmConfig::max_versions`](zstm_core::StmConfig)),
/// * invisible reads with a consistent snapshot maintained *during*
///   execution: every read returns the newest version valid at the
///   transaction's snapshot time `ub`, and reads that would need a newer
///   version lazily *extend* the snapshot by revalidating the read set,
/// * eager write acquisition with contention management (single writer per
///   object),
/// * commit-time validation of update transactions at a fresh commit stamp
///   from the time base.
///
/// The `readonly_readsets` configuration flag selects between plain LSA-STM
/// (read-only transactions maintain and validate read sets) and the
/// optimized "LSA-STM (no readsets)" variant of Figure 6, which serves long
/// read-only transactions from the version history at a fixed snapshot time
/// with no per-read bookkeeping.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use zstm_core::{atomically, RetryPolicy, StmConfig, TmFactory, TmThread, TmTx, TxKind};
/// use zstm_lsa::LsaStm;
///
/// # fn main() -> Result<(), zstm_core::RetryExhausted> {
/// let stm = Arc::new(LsaStm::new(StmConfig::new(1)));
/// let counter = stm.new_var(0i64);
/// let mut thread = stm.register_thread();
/// atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
///     let v = tx.read(&counter)?;
///     tx.write(&counter, v + 1)
/// })?;
/// # Ok(())
/// # }
/// ```
pub struct LsaStm<B: TimeBase = ScalarClock> {
    config: StmConfig,
    clock: B,
    cm: Arc<dyn ContentionManager>,
    registered: AtomicUsize,
}

impl LsaStm<ScalarClock> {
    /// Creates an LSA-STM over the classic shared-counter time base.
    pub fn new(config: StmConfig) -> Self {
        Self::with_clock(config, ScalarClock::new())
    }
}

impl<B: TimeBase> LsaStm<B> {
    /// Creates an LSA-STM over an explicit time base (e.g. simulated
    /// synchronized real-time clocks).
    pub fn with_clock(config: StmConfig, clock: B) -> Self {
        let cm = config.cm_policy().build();
        Self {
            config,
            clock,
            cm,
            registered: AtomicUsize::new(0),
        }
    }

    /// The configuration this STM was built with.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// Current value of the time base (diagnostics).
    pub fn now(&self) -> u64 {
        self.clock.now(0)
    }
}

impl<B: TimeBase> TmFactory for LsaStm<B> {
    type Var<T: TxValue> = LsaVar<T>;
    type Thread = LsaThread<B>;

    fn new_var<T: TxValue>(&self, init: T) -> LsaVar<T> {
        LsaVar {
            core: Arc::new(VarCore::with_fast_paths(
                init,
                self.config.max_versions_per_object(),
                Arc::clone(self.config.sink()),
                self.config.fast_reads_enabled(),
            )),
        }
    }

    fn register_thread(self: &Arc<Self>) -> LsaThread<B> {
        let slot = self.registered.fetch_add(1, Ordering::Relaxed);
        assert!(
            slot < self.config.threads(),
            "more threads registered than configured ({})",
            self.config.threads()
        );
        LsaThread {
            stm: Arc::clone(self),
            id: ThreadId::new(slot),
            stats: TxStats::new(),
            long_upgrade_seen: false,
            pending_karma: 0,
        }
    }

    fn max_threads(&self) -> Option<usize> {
        Some(self.config.threads())
    }

    fn name(&self) -> &'static str {
        if self.config.readonly_uses_readsets() {
            "lsa"
        } else {
            "lsa-noreadsets"
        }
    }
}

/// Per-logical-thread context of [`LsaStm`].
pub struct LsaThread<B: TimeBase = ScalarClock> {
    stm: Arc<LsaStm<B>>,
    id: ThreadId,
    stats: TxStats,
    /// Set once a snapshot-mode long transaction tried to write; future
    /// long transactions on this thread run with read sets (the paper's
    /// "automatic marking based on past behaviors").
    long_upgrade_seen: bool,
    /// Karma carried over from aborted attempts of the current block.
    pending_karma: u64,
}

impl<B: TimeBase> TmThread for LsaThread<B> {
    type Factory = LsaStm<B>;
    type Tx<'a> = LsaTx<'a, B>;

    fn begin(&mut self, kind: TxKind) -> LsaTx<'_, B> {
        let karma = std::mem::take(&mut self.pending_karma);
        let shared = Arc::new(TxShared::start(self.id, kind, karma));
        let stm = Arc::clone(&self.stm);
        if stm.config.sink().enabled() {
            stm.config
                .sink()
                .record(TxEvent::new(shared.id(), self.id, kind, TxEventKind::Begin));
        }
        let slack = stm.clock.snapshot_slack();
        let ub = stm.clock.now(self.id.slot()).saturating_sub(slack);
        let snapshot_only =
            kind.is_long() && !stm.config.readonly_uses_readsets() && !self.long_upgrade_seen;
        LsaTx {
            thread: self,
            shared,
            ub,
            reads: Vec::new(),
            writes: Vec::new(),
            snapshot_only,
        }
    }

    fn thread_id(&self) -> ThreadId {
        self.id
    }

    fn stats(&self) -> &TxStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> Option<&mut TxStats> {
        Some(&mut self.stats)
    }

    fn take_stats(&mut self) -> TxStats {
        std::mem::take(&mut self.stats)
    }
}

struct ReadEntry {
    obj: Arc<dyn DynObject>,
    seq: VersionSeq,
}

/// An active LSA transaction.
pub struct LsaTx<'a, B: TimeBase = ScalarClock> {
    thread: &'a mut LsaThread<B>,
    shared: Arc<TxShared>,
    /// Snapshot time: every read-set entry is valid at `ub`.
    ub: u64,
    reads: Vec<ReadEntry>,
    writes: Vec<Arc<dyn DynObject>>,
    snapshot_only: bool,
}

impl<B: TimeBase> LsaTx<'_, B> {
    fn stm(&self) -> &LsaStm<B> {
        &self.thread.stm
    }

    fn record(&self, event: TxEventKind) {
        let sink = self.stm().config.sink();
        if sink.enabled() {
            sink.record(TxEvent::new(
                self.shared.id(),
                self.shared.thread(),
                self.shared.kind(),
                event,
            ));
        }
    }

    fn check_alive(&self) -> Result<(), Abort> {
        if self.shared.is_active() {
            Ok(())
        } else {
            Err(Abort::new(AbortReason::Killed))
        }
    }

    /// Attempts to extend the snapshot time to "now" by revalidating the
    /// read set; returns the new snapshot time (which may equal the old
    /// one if some entry's validity already ended).
    fn extend_snapshot(&mut self) -> u64 {
        let slack = self.stm().clock.snapshot_slack();
        let mut new_ub = self
            .stm()
            .clock
            .now(self.thread.id.slot())
            .saturating_sub(slack)
            .max(self.ub);
        for entry in &self.reads {
            match entry.obj.successor_ct_dyn(&self.shared, entry.seq) {
                Ok(None) => {}
                Ok(Some(succ_ct)) => new_ub = new_ub.min(succ_ct.saturating_sub(1)),
                // Successor pruned: we cannot prove validity past the
                // current snapshot time.
                Err(HistoryGap::Pruned) => new_ub = new_ub.min(self.ub),
            }
        }
        self.ub = new_ub.max(self.ub);
        self.ub
    }

    fn abort_with(&mut self, reason: AbortReason) -> Abort {
        self.shared.abort();
        Abort::new(reason)
    }

    fn release_all(&mut self) {
        for obj in &self.writes {
            obj.release_dyn(&self.shared);
        }
    }

    fn finish_abort(mut self, reason: AbortReason) {
        self.shared.abort();
        self.release_all();
        self.thread.pending_karma = self.shared.karma();
        self.thread.stats.record_abort(self.shared.kind(), reason);
        self.record(TxEventKind::Abort { reason });
    }
}

impl<B: TimeBase> TmTx for LsaTx<'_, B> {
    type Factory = LsaStm<B>;

    fn read<T: TxValue>(&mut self, var: &LsaVar<T>) -> Result<T, Abort> {
        self.check_alive()?;
        self.thread.stats.record_read();
        self.shared.add_karma(1);

        if self.snapshot_only {
            // "No readsets" mode: serve the read from the version history
            // at the fixed snapshot time, with no bookkeeping at all.
            let hit = var
                .core
                .read_at(Some(&self.shared), self.ub)
                .ok_or_else(|| self.abort_with(AbortReason::SnapshotUnavailable))?;
            self.record(TxEventKind::Read {
                obj: var.core.id(),
                version: hit.seq,
            });
            return Ok(hit.value);
        }

        let mut hit = var.core.read_at(Some(&self.shared), self.ub);
        // Short and update transactions strive to read the *latest* version
        // (anything older is doomed at commit-time validation); long
        // read-only transactions are content with any version valid at the
        // snapshot time — that is the entire point of multi-versioning, and
        // skipping the extension here is what keeps plain LSA-STM's
        // Compute-Total at the paper's "slightly slower than Z-STM" rather
        // than quadratic.
        let wants_latest = !self.shared.kind().is_long() || !self.writes.is_empty();
        let need_extend = match &hit {
            None => true,
            Some(h) => wants_latest && !h.is_latest,
        };
        if need_extend {
            let ub = self.extend_snapshot();
            let fresh = var.core.read_at(Some(&self.shared), ub);
            if fresh.is_some() {
                hit = fresh;
            }
        }
        let hit = hit.ok_or_else(|| self.abort_with(AbortReason::SnapshotUnavailable))?;
        self.reads.push(ReadEntry {
            obj: Arc::clone(&var.core) as Arc<dyn DynObject>,
            seq: hit.seq,
        });
        self.record(TxEventKind::Read {
            obj: var.core.id(),
            version: hit.seq,
        });
        Ok(hit.value)
    }

    fn write<T: TxValue>(&mut self, var: &LsaVar<T>, value: T) -> Result<(), Abort> {
        self.check_alive()?;
        if self.snapshot_only {
            // A "read-only" long transaction turned out to update state:
            // restart it with read sets (and remember the lesson).
            self.thread.long_upgrade_seen = true;
            return Err(self.abort_with(AbortReason::Explicit));
        }
        self.thread.stats.record_write();
        self.shared.add_karma(1);
        let newly_reserved = !var.core.reserved_by(&self.shared);
        var.core
            .reserve(&self.shared, value, self.stm().cm.as_ref())?;
        if newly_reserved {
            self.writes
                .push(Arc::clone(&var.core) as Arc<dyn DynObject>);
        }
        Ok(())
    }

    fn commit(mut self) -> Result<(), Abort> {
        let kind = self.shared.kind();
        if self.writes.is_empty() {
            // Read-only: the snapshot is consistent at `ub` by
            // construction. Plain LSA-STM still walks the read set (the
            // bookkeeping the paper's Figure 6 measures); the no-readsets
            // variant has nothing to walk.
            let mut valid = true;
            for entry in &self.reads {
                match entry.obj.successor_ct_dyn(&self.shared, entry.seq) {
                    Ok(None) => {}
                    Ok(Some(succ_ct)) => valid &= succ_ct > self.ub,
                    Err(HistoryGap::Pruned) => valid = false,
                }
            }
            if !valid {
                // Cannot happen if the snapshot invariant holds; kept as a
                // defensive check mirroring LSA's eager validation.
                let abort = self.abort_with(AbortReason::ReadValidation);
                self.finish_abort(abort.reason());
                return Err(abort);
            }
            if !self.shared.try_commit_directly() {
                self.finish_abort(AbortReason::Killed);
                return Err(Abort::new(AbortReason::Killed));
            }
            self.thread.pending_karma = 0;
            self.thread.stats.record_commit(kind);
            self.record(TxEventKind::Commit { zone: None });
            return Ok(());
        }

        if !self.shared.begin_commit() {
            self.finish_abort(AbortReason::Killed);
            return Err(Abort::new(AbortReason::Killed));
        }
        let ct = self.stm().clock.commit_stamp(self.thread.id.slot());
        self.shared.set_commit_ct(ct);
        // Validate the read set at the commit time: every read version must
        // still be valid at `ct` (no successor with a smaller commit time).
        let valid = self
            .reads
            .iter()
            .all(|entry| entry.obj.validate_read_dyn(&self.shared, entry.seq, ct));
        if !valid {
            self.finish_abort(AbortReason::ReadValidation);
            return Err(Abort::new(AbortReason::ReadValidation));
        }
        self.shared.finish_commit();
        for obj in &self.writes {
            obj.promote_dyn(&self.shared);
        }
        self.thread.pending_karma = 0;
        self.thread.stats.record_commit(kind);
        self.record(TxEventKind::Commit { zone: None });
        Ok(())
    }

    fn rollback(self, reason: AbortReason) {
        self.finish_abort(reason);
    }

    fn id(&self) -> TxId {
        self.shared.id()
    }

    fn kind(&self) -> TxKind {
        self.shared.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstm_core::{atomically, RetryPolicy};

    fn stm(threads: usize) -> Arc<LsaStm> {
        Arc::new(LsaStm::new(StmConfig::new(threads)))
    }

    #[test]
    fn read_initial_value() {
        let stm = stm(1);
        let var = stm.new_var(41i64);
        let mut thread = stm.register_thread();
        let got = atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.read(&var)
        })
        .expect("commit");
        assert_eq!(got, 41);
    }

    #[test]
    fn increment_round_trip() {
        let stm = stm(1);
        let var = stm.new_var(0i64);
        let mut thread = stm.register_thread();
        for _ in 0..10 {
            atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
                let v = tx.read(&var)?;
                tx.write(&var, v + 1)
            })
            .expect("commit");
        }
        let got = atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.read(&var)
        })
        .expect("commit");
        assert_eq!(got, 10);
    }

    #[test]
    fn read_your_own_write_inside_tx() {
        let stm = stm(1);
        let var = stm.new_var(1i64);
        let mut thread = stm.register_thread();
        let observed = atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.write(&var, 99)?;
            tx.read(&var)
        })
        .expect("commit");
        assert_eq!(observed, 99);
    }

    #[test]
    fn aborted_writes_are_invisible() {
        let stm = stm(1);
        let var = stm.new_var(5i64);
        let mut thread = stm.register_thread();
        let tx_result = atomically(
            &mut thread,
            TxKind::Short,
            &RetryPolicy::default().with_max_attempts(1),
            |tx| {
                tx.write(&var, 666)?;
                Err::<(), Abort>(Abort::new(AbortReason::Explicit))
            },
        );
        assert!(tx_result.is_err());
        let got = atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.read(&var)
        })
        .expect("commit");
        assert_eq!(got, 5);
    }

    #[test]
    fn concurrent_transfers_conserve_money() {
        let stm = stm(5); // 4 workers + 1 checker thread
        let accounts: Arc<Vec<LsaVar<i64>>> =
            Arc::new((0..16).map(|_| stm.new_var(100i64)).collect());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let stm = Arc::clone(&stm);
                let accounts = Arc::clone(&accounts);
                let mut thread = stm.register_thread();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let from = ((i * 7 + t * 3) % 16) as usize;
                        let to = ((i * 13 + t * 5) % 16) as usize;
                        if from == to {
                            continue;
                        }
                        atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
                            let a = tx.read(&accounts[from])?;
                            let b = tx.read(&accounts[to])?;
                            tx.write(&accounts[from], a - 1)?;
                            tx.write(&accounts[to], b + 1)
                        })
                        .expect("transfer commits");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let mut checker = stm.register_thread();
        let total = atomically(&mut checker, TxKind::Long, &RetryPolicy::default(), |tx| {
            let mut sum = 0i64;
            for acc in accounts.iter() {
                sum += tx.read(acc)?;
            }
            Ok(sum)
        })
        .expect("sum commits");
        assert_eq!(total, 1600);
    }

    #[test]
    fn long_readonly_snapshot_mode_commits_under_contention() {
        let mut config = StmConfig::new(3);
        config.readonly_readsets(false);
        let stm = Arc::new(LsaStm::new(config));
        let accounts: Arc<Vec<LsaVar<i64>>> =
            Arc::new((0..8).map(|_| stm.new_var(10i64)).collect());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let stm = Arc::clone(&stm);
                let accounts = Arc::clone(&accounts);
                let stop = Arc::clone(&stop);
                let mut thread = stm.register_thread();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let from = ((i * 7 + t) % 8) as usize;
                        let to = ((i * 5 + t + 1) % 8) as usize;
                        if from != to {
                            let _ = atomically(
                                &mut thread,
                                TxKind::Short,
                                &RetryPolicy::default(),
                                |tx| {
                                    let a = tx.read(&accounts[from])?;
                                    let b = tx.read(&accounts[to])?;
                                    tx.write(&accounts[from], a - 1)?;
                                    tx.write(&accounts[to], b + 1)
                                },
                            );
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        let mut reader = stm.register_thread();
        for _ in 0..50 {
            let sum = atomically(&mut reader, TxKind::Long, &RetryPolicy::default(), |tx| {
                let mut sum = 0i64;
                for acc in accounts.iter() {
                    sum += tx.read(acc)?;
                }
                Ok(sum)
            })
            .expect("read-only long tx commits");
            assert_eq!(sum, 80, "snapshot must be consistent");
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().expect("writer panicked");
        }
    }

    #[test]
    fn snapshot_mode_upgrade_on_write_retries_with_readsets() {
        let mut config = StmConfig::new(1);
        config.readonly_readsets(false);
        let stm = Arc::new(LsaStm::new(config));
        let var = stm.new_var(0i64);
        let mut thread = stm.register_thread();
        // A long transaction that writes: first attempt aborts (upgrade),
        // the retry runs with read sets and succeeds.
        atomically(&mut thread, TxKind::Long, &RetryPolicy::default(), |tx| {
            let v = tx.read(&var)?;
            tx.write(&var, v + 1)
        })
        .expect("upgraded long tx commits");
        let got = atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.read(&var)
        })
        .expect("commit");
        assert_eq!(got, 1);
        assert!(thread.long_upgrade_seen);
    }

    #[test]
    fn stats_track_commits_and_aborts() {
        let stm = stm(1);
        let var = stm.new_var(0i64);
        let mut thread = stm.register_thread();
        atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            let v = tx.read(&var)?;
            tx.write(&var, v + 1)
        })
        .expect("commit");
        let _ = atomically(
            &mut thread,
            TxKind::Short,
            &RetryPolicy::default().with_max_attempts(2),
            |tx| {
                tx.read(&var)?;
                Err::<(), Abort>(Abort::new(AbortReason::Explicit))
            },
        );
        let stats = thread.take_stats();
        assert_eq!(stats.total_commits(), 1);
        assert_eq!(stats.total_aborts(), 2);
        assert_eq!(stats.aborts_for(AbortReason::Explicit), 2);
        assert_eq!(thread.stats().total_commits(), 0, "take_stats resets");
    }

    #[test]
    fn version_history_is_bounded() {
        let mut config = StmConfig::new(1);
        config.max_versions(3);
        let stm = Arc::new(LsaStm::new(config));
        let var = stm.new_var(0i64);
        let mut thread = stm.register_thread();
        for i in 0..10 {
            atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
                tx.write(&var, i)
            })
            .expect("commit");
        }
        assert!(var.version_count() <= 3);
    }

    #[test]
    fn write_write_conflict_is_arbitrated() {
        // Two interleaved transactions from one OS thread, two logical
        // threads: the second writer triggers the contention manager.
        let mut config = StmConfig::new(2);
        config.cm(zstm_core::CmPolicy::Aggressive);
        let stm = Arc::new(LsaStm::new(config));
        let var = stm.new_var(0i64);
        let mut t0 = stm.register_thread();
        let mut t1 = stm.register_thread();

        let mut tx0 = t0.begin(TxKind::Short);
        tx0.write(&var, 1).expect("first write");
        // Aggressive CM: tx1 kills tx0 and steals the object.
        let mut tx1 = t1.begin(TxKind::Short);
        tx1.write(&var, 2).expect("steal");
        tx1.commit().expect("tx1 commits");
        // tx0 is dead; its commit must fail.
        assert!(tx0.commit().is_err());

        let mut t0 = t0;
        let got = atomically(&mut t0, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.read(&var)
        })
        .expect("commit");
        assert_eq!(got, 2);
    }

    #[test]
    fn first_committer_wins_on_read_write_conflict() {
        let stm = stm(2);
        let var = stm.new_var(0i64);
        let other = stm.new_var(0i64);
        let mut t0 = stm.register_thread();
        let mut t1 = stm.register_thread();

        // tx0 reads var, then tx1 updates var and commits first.
        let mut tx0 = t0.begin(TxKind::Short);
        let v = tx0.read(&var).expect("read");
        let mut tx1 = t1.begin(TxKind::Short);
        tx1.write(&var, 7).expect("write");
        tx1.commit().expect("tx1 commits first");
        // tx0 now writes something based on the stale read: validation
        // must abort it.
        tx0.write(&other, v + 1).expect("write other");
        let err = tx0.commit().expect_err("stale read must fail validation");
        assert_eq!(err.reason(), AbortReason::ReadValidation);
    }
}
