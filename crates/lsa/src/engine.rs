//! The versioned-object engine underneath LSA-STM and Z-STM.
//!
//! Each transactional variable owns a [`VarCore`]: a bounded list of
//! committed versions plus at most one *writer reservation* (the paper's
//! single-writer rule and DSTM-style eager write acquisition). The commit
//! point of a writing transaction is the atomic status flip of its
//! [`TxShared`] descriptor; tentative values are *promoted* to committed
//! versions lazily by whoever touches the object next (and eagerly by the
//! committer itself), mirroring "updates become visible to other
//! transactions when the update transaction's status changes from active to
//! committed" (Section 5.4).
//!
//! # The seqlock-style read fast path
//!
//! Reads used to go through `VarCore::lock_settled`, a full mutex acquire
//! per access — the hottest lock in the workspace on read-dominated
//! workloads. The engine now keeps, next to the mutex-protected state, a
//! small optimistically-readable publication:
//!
//! * `meta`, an atomic word packing `newest committed seq << 1 | writer
//!   present`, and
//! * `latest`, a lock-free [`zstm_util::ArcCell`] holding an `Arc` of the
//!   newest committed version (hazard-slot protected; see the `zstm_util`
//!   module docs for the reclamation protocol).
//!
//! Both are updated under the main object lock whenever the committed state
//! or the reservation changes. A fast read samples `meta`, loads the
//! published `Arc` (no mutex anywhere — the cell load is a pointer load,
//! a hazard-slot announce and a revalidating load), and revalidates `meta`
//! (the seqlock pattern: sequence, data, sequence). It succeeds only when
//! the whole window saw *no* writer reservation and an unchanged newest
//! version, in which case the published version is exactly what the settled
//! slow path would have returned. Any interference — a reservation
//! appearing, a promotion, a pending committer — falls back to
//! `lock_settled`, which preserves the original semantics (waiting out
//! committing writers, lazy promotion, read-your-own-writes). The one
//! tolerated A-B-A is a reservation that is taken and released *aborted*
//! entirely inside the window: it never changes committed state, so the
//! fast read is still linearizable.
//!
//! # The long-write fast reserve
//!
//! Z-STM's `Openlong` in write mode ([`VarCore::reserve_long`]) used to
//! settle the object lock at least twice even when nothing conflicted. The
//! uncontended case now goes through `VarCore::reserve_long_fast`: a
//! compare-and-swap of the `meta` writer bit claims the object against
//! every other optimistic path, the zone stamp lands, and one plain lock
//! acquisition installs the reservation after verifying that no mutex-path
//! writer or promotion raced in — falling back to the full
//! `open_long_settle` arbitration otherwise. The speculative bit is
//! re-derived from the settled state on every fallback, so a lost race
//! leaves `meta` exactly as the locked protocol would.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zstm_core::{
    Abort, AbortReason, ContentionManager, EventSink, ObjId, Resolution, TxEvent, TxEventKind,
    TxShared, TxStatus, TxValue, VersionSeq,
};
use zstm_util::sync::{Mutex, MutexGuard};
use zstm_util::{ArcCell, Backoff};

/// Bit of [`VarCore`]'s `meta` word that is set while a writer reservation
/// exists (active, committing, committed-but-unpromoted, or dead).
const WRITER_BIT: u64 = 1;

/// One committed version of an object.
#[derive(Clone, Debug)]
pub struct Version<T> {
    /// The committed value.
    pub value: T,
    /// Commit time of the transaction that installed this version. The
    /// validity of the version is `[ct, succ.ct)` where `succ` is the next
    /// version (Section 4.1).
    pub ct: u64,
    /// Dense per-object sequence number; the initial version is 0.
    pub seq: VersionSeq,
}

/// Why a version-history lookup could not produce an answer.
///
/// Returned by [`VarCore::successor_ct`] and
/// [`DynObject::successor_ct_dyn`]; callers treat a gap as "assume the
/// worst" (the snapshot cannot be proven valid past its current time).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HistoryGap {
    /// The requested version's successor fell out of the bounded history
    /// ([`zstm_core::StmConfig::max_versions`] versions are retained per
    /// object), so its commit time is unknown.
    Pruned,
}

impl std::fmt::Display for HistoryGap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryGap::Pruned => f.write_str("successor version pruned from bounded history"),
        }
    }
}

impl std::error::Error for HistoryGap {}

struct Reservation<T> {
    tx: Arc<TxShared>,
    tentative: T,
}

struct Inner<T> {
    /// Committed versions, oldest first; `ct` and `seq` strictly increase.
    versions: VecDeque<Arc<Version<T>>>,
    writer: Option<Reservation<T>>,
}

/// Outcome of a versioned read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadHit<T> {
    /// Value of the chosen version.
    pub value: T,
    /// Sequence number of the chosen version.
    pub seq: VersionSeq,
    /// Commit time of the chosen version.
    pub ct: u64,
    /// `true` if the chosen version is the newest committed one.
    pub is_latest: bool,
}

/// The shared core of one transactional variable.
///
/// `VarCore` enforces the single-writer rule (write/write conflicts are
/// resolved by the contention manager at open time), keeps a bounded
/// version history for multi-version reads, and carries the per-object zone
/// counter `o.zc` used by Z-STM (zero-cost for the other STMs). Reads of a
/// quiescent object take the seqlock-style fast path described in the
/// module docs instead of the settled lock.
pub struct VarCore<T> {
    id: ObjId,
    max_versions: usize,
    /// Z-STM's per-object zone counter `o.zc` (Algorithm 2 lines 6–7).
    zc: AtomicU64,
    /// Seqlock word: `newest committed seq << 1 | WRITER_BIT`. Updated
    /// (release) under the `inner` lock after every change to the version
    /// list or the reservation slot.
    meta: AtomicU64,
    /// Lock-free publication cell for the newest committed version;
    /// refreshed under the `inner` lock *before* `meta` advertises the new
    /// sequence, and read without any lock by the fast paths.
    latest: ArcCell<Version<T>>,
    /// Whether the optimistic fast paths are enabled
    /// ([`zstm_core::StmConfig::fast_reads`]); `false` forces every read
    /// and long reserve through `lock_settled`.
    fast: bool,
    sink: Arc<dyn EventSink>,
    inner: Mutex<Inner<T>>,
}

impl<T: TxValue> VarCore<T> {
    /// Creates a core whose initial version is `init` at time 0, seq 0,
    /// with the optimistic fast paths enabled.
    pub fn new(init: T, max_versions: usize, sink: Arc<dyn EventSink>) -> Self {
        Self::with_fast_paths(init, max_versions, sink, true)
    }

    /// Like [`VarCore::new`], with explicit control over the optimistic
    /// fast paths (`fast = false` forces the settled-lock shape; see
    /// [`zstm_core::StmConfig::fast_reads`]).
    pub fn with_fast_paths(
        init: T,
        max_versions: usize,
        sink: Arc<dyn EventSink>,
        fast: bool,
    ) -> Self {
        let initial = Arc::new(Version {
            value: init,
            ct: 0,
            seq: 0,
        });
        let mut versions = VecDeque::with_capacity(max_versions.min(16));
        versions.push_back(Arc::clone(&initial));
        Self {
            id: ObjId::fresh(),
            max_versions: max_versions.max(1),
            zc: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            latest: ArcCell::new(initial),
            fast,
            sink,
            inner: Mutex::new(Inner {
                versions,
                writer: None,
            }),
        }
    }

    /// This object's id (used in recorded histories).
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Reads the per-object zone counter `o.zc`.
    pub fn zc(&self) -> u64 {
        self.zc.load(Ordering::Acquire)
    }

    /// Monotonically raises `o.zc` to `zc` (Algorithm 2 line 7). Returns
    /// the previous value.
    pub fn raise_zc(&self, zc: u64) -> u64 {
        self.zc.fetch_max(zc, Ordering::AcqRel)
    }

    /// Re-derives the seqlock word from `inner`. Must be called (while
    /// still holding the lock) after every mutation of the version list or
    /// the reservation slot.
    fn publish_meta(&self, inner: &Inner<T>) {
        let seq = inner.versions.back().expect("version list never empty").seq;
        let writer = if inner.writer.is_some() {
            WRITER_BIT
        } else {
            0
        };
        self.meta.store(seq << 1 | writer, Ordering::Release);
    }

    /// Seqlock fast read: returns the newest committed version iff the
    /// whole sampling window saw no writer reservation and no promotion.
    /// `None` means "contended or stale — take the slow path".
    fn read_latest_fast(&self) -> Option<Arc<Version<T>>> {
        if !self.fast {
            return None;
        }
        let before = self.meta.load(Ordering::Acquire);
        if before & WRITER_BIT != 0 {
            return None;
        }
        let published = self.latest.load();
        // The published pointer must match the sampled word (it may run
        // ahead of a stale `meta` load), and the word must be unchanged
        // afterwards — otherwise a writer touched the object meanwhile.
        if published.seq << 1 != before || self.meta.load(Ordering::Acquire) != before {
            return None;
        }
        Some(published)
    }

    /// Locks the object with a *settled* writer: dead reservations are
    /// cleaned up, reservations of committed transactions are promoted to
    /// versions, and reservations of transactions in their commit protocol
    /// are waited out (they are no longer killable, so the wait is short).
    fn lock_settled(&self, me: Option<&Arc<TxShared>>) -> MutexGuard<'_, Inner<T>> {
        let mut backoff = Backoff::new();
        loop {
            let mut guard = self.inner.lock();
            let settled = match &guard.writer {
                None => true,
                Some(w) if me.is_some_and(|m| Arc::ptr_eq(m, &w.tx)) => true,
                Some(w) => match w.tx.status() {
                    TxStatus::Active => true,
                    TxStatus::Aborted => {
                        guard.writer = None;
                        self.publish_meta(&guard);
                        true
                    }
                    TxStatus::Committed => {
                        self.promote_locked(&mut guard);
                        true
                    }
                    TxStatus::Committing => false,
                },
            };
            if settled {
                return guard;
            }
            drop(guard);
            backoff.spin();
        }
    }

    /// Promotes the committed writer's tentative value to a version.
    fn promote_locked(&self, inner: &mut Inner<T>) {
        let Some(reservation) = inner.writer.take() else {
            return;
        };
        debug_assert_eq!(reservation.tx.status(), TxStatus::Committed);
        let ct = reservation.tx.commit_ct();
        let seq = inner.versions.back().map_or(0, |v| v.seq + 1);
        debug_assert!(
            inner.versions.back().is_none_or(|v| v.ct < ct),
            "commit times must increase along the version list"
        );
        let version = Arc::new(Version {
            value: reservation.tentative,
            ct,
            seq,
        });
        inner.versions.push_back(Arc::clone(&version));
        while inner.versions.len() > self.max_versions {
            inner.versions.pop_front();
        }
        // Publication order matters for the fast path: the cell first, the
        // seqlock word second, so a reader that saw the new word also sees
        // (at least) the new version in the cell.
        self.latest.store(version);
        self.publish_meta(inner);
        if self.sink.enabled() {
            self.sink.record(TxEvent::new(
                reservation.tx.id(),
                reservation.tx.thread(),
                reservation.tx.kind(),
                TxEventKind::Write {
                    obj: self.id,
                    version: seq,
                },
            ));
        }
    }

    /// Reads the newest version with `ct <= ub`.
    ///
    /// Returns `None` when every retained version is newer than `ub` (the
    /// bounded history has been pruned past the snapshot time).
    pub fn read_at(&self, me: Option<&Arc<TxShared>>, ub: u64) -> Option<ReadHit<T>> {
        // Fast path: quiescent object whose newest version is inside the
        // snapshot. A reservation held by `me` keeps the writer bit set, so
        // read-your-own-writes always takes the slow path.
        if let Some(v) = self.read_latest_fast() {
            if v.ct <= ub {
                return Some(ReadHit {
                    value: v.value.clone(),
                    seq: v.seq,
                    ct: v.ct,
                    is_latest: true,
                });
            }
        }
        let guard = self.lock_settled(me);
        // Own tentative write: read-your-own-writes.
        if let (Some(me), Some(w)) = (me, &guard.writer) {
            if Arc::ptr_eq(me, &w.tx) {
                let seq = guard.versions.back().map_or(0, |v| v.seq + 1);
                return Some(ReadHit {
                    value: w.tentative.clone(),
                    seq,
                    ct: ub,
                    is_latest: true,
                });
            }
        }
        let newest_seq = guard.versions.back().map(|v| v.seq);
        guard
            .versions
            .iter()
            .rev()
            .find(|v| v.ct <= ub)
            .map(|v| ReadHit {
                value: v.value.clone(),
                seq: v.seq,
                ct: v.ct,
                is_latest: Some(v.seq) == newest_seq,
            })
    }

    /// Reads the newest committed version regardless of snapshot time
    /// (update-mode reads; the caller extends its snapshot first).
    pub fn read_latest(&self, me: Option<&Arc<TxShared>>) -> ReadHit<T> {
        if let Some(v) = self.read_latest_fast() {
            return ReadHit {
                value: v.value.clone(),
                seq: v.seq,
                ct: v.ct,
                is_latest: true,
            };
        }
        let guard = self.lock_settled(me);
        if let (Some(me), Some(w)) = (me, &guard.writer) {
            if Arc::ptr_eq(me, &w.tx) {
                let seq = guard.versions.back().map_or(0, |v| v.seq + 1);
                return ReadHit {
                    value: w.tentative.clone(),
                    seq,
                    ct: u64::MAX,
                    is_latest: true,
                };
            }
        }
        let v = guard.versions.back().expect("version list never empty");
        ReadHit {
            value: v.value.clone(),
            seq: v.seq,
            ct: v.ct,
            is_latest: true,
        }
    }

    /// Commit time of the successor of version `seq`, if one is known.
    ///
    /// Returns `Ok(None)` when `seq` is still the newest version,
    /// `Ok(Some(ct))` when the direct successor is retained, and
    /// `Err(`[`HistoryGap::Pruned`]`)` when the successor has been pruned
    /// (the caller must assume the worst).
    pub fn successor_ct(
        &self,
        me: Option<&Arc<TxShared>>,
        seq: VersionSeq,
    ) -> Result<Option<u64>, HistoryGap> {
        // Fast path: one seqlock-word load. If there is no pending writer
        // and `seq` is (still) the newest committed version, no successor
        // exists at this instant — the linearization point of the lookup.
        let meta = self.meta.load(Ordering::Acquire);
        if meta & WRITER_BIT == 0 && meta >> 1 <= seq {
            return Ok(None);
        }
        let guard = self.lock_settled(me);
        let newest = guard.versions.back().expect("version list never empty");
        if newest.seq <= seq {
            return Ok(None);
        }
        guard
            .versions
            .iter()
            .find(|v| v.seq == seq + 1)
            .map(|v| Some(v.ct))
            .ok_or(HistoryGap::Pruned)
    }

    /// Commit-time validation of a read of version `seq` against commit
    /// time `my_ct`: returns `true` iff the version is still valid at
    /// `my_ct` (no successor with `ct <= my_ct` exists or can appear).
    ///
    /// Unlike [`VarCore::successor_ct`] this only waits for committing
    /// writers whose commit time is *smaller* than `my_ct` (their outcome
    /// decides the verdict); writers with larger commit times cannot
    /// invalidate a snapshot at `my_ct` and are ignored. Waiting only on
    /// smaller commit times makes concurrent validations acyclic, so two
    /// committing transactions that read each other's write sets cannot
    /// deadlock.
    pub fn validate_read(&self, me: &Arc<TxShared>, seq: VersionSeq, my_ct: u64) -> bool {
        // Fast path: no pending writer and `seq` still newest — nothing can
        // retroactively install a successor with a smaller commit time,
        // because any future committer draws its stamp after ours.
        let meta = self.meta.load(Ordering::Acquire);
        if meta & WRITER_BIT == 0 && meta >> 1 <= seq {
            return true;
        }
        let mut backoff = Backoff::new();
        loop {
            let mut guard = self.inner.lock();
            let mut must_wait = false;
            if let Some(w) = &guard.writer {
                if !Arc::ptr_eq(&w.tx, me) {
                    match w.tx.status() {
                        TxStatus::Active => {
                            // Will draw its commit time after ours was
                            // drawn, hence > my_ct: cannot affect us.
                        }
                        TxStatus::Aborted => {
                            guard.writer = None;
                            self.publish_meta(&guard);
                        }
                        TxStatus::Committed => self.promote_locked(&mut guard),
                        TxStatus::Committing => {
                            let w_ct = w.tx.commit_ct();
                            // w_ct == 0 means the writer has not stored its
                            // stamp yet (a two-instruction window).
                            if w_ct == 0 || w_ct < my_ct {
                                must_wait = true;
                            }
                        }
                    }
                }
            }
            if must_wait {
                drop(guard);
                backoff.spin();
                continue;
            }
            let newest = guard.versions.back().expect("version list never empty");
            if newest.seq <= seq {
                return true;
            }
            return match guard.versions.iter().find(|v| v.seq == seq + 1) {
                Some(succ) => succ.ct > my_ct,
                // Successor pruned: its commit time is unknown, assume the
                // worst.
                None => false,
            };
        }
    }

    /// Acquires (or refreshes) this transaction's writer reservation with
    /// tentative value `value`, arbitrating write/write conflicts through
    /// the contention manager (Algorithm 1 lines 10–13).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the contention manager rules against `me`, or
    /// if `me` was killed while waiting.
    pub fn reserve(
        &self,
        me: &Arc<TxShared>,
        value: T,
        cm: &dyn ContentionManager,
    ) -> Result<(), Abort> {
        let mut pending = Some(value);
        let mut round = 0u64;
        let mut backoff = Backoff::new();
        loop {
            if me.status() != TxStatus::Active {
                return Err(Abort::new(AbortReason::Killed));
            }
            let mut guard = self.lock_settled(Some(me));
            match &mut guard.writer {
                slot @ None => {
                    *slot = Some(Reservation {
                        tx: Arc::clone(me),
                        tentative: pending.take().expect("value pending"),
                    });
                    self.publish_meta(&guard);
                    return Ok(());
                }
                Some(w) if Arc::ptr_eq(&w.tx, me) => {
                    w.tentative = pending.take().expect("value pending");
                    return Ok(());
                }
                Some(w) => {
                    let decision = cm.resolve(me, &w.tx, round);
                    match decision {
                        Resolution::AbortOther => {
                            if w.tx.try_kill() {
                                guard.writer = Some(Reservation {
                                    tx: Arc::clone(me),
                                    tentative: pending.take().expect("value pending"),
                                });
                                self.publish_meta(&guard);
                                return Ok(());
                            }
                            // The opponent reached its commit protocol
                            // first; re-settle and retry.
                        }
                        Resolution::AbortSelf => {
                            me.abort();
                            return Err(Abort::new(AbortReason::WriteConflict));
                        }
                        Resolution::Wait => {}
                    }
                    drop(guard);
                    me.set_waiting(true);
                    backoff.spin();
                    me.set_waiting(false);
                    round += 1;
                }
            }
        }
    }

    /// Atomic long-transaction open in read mode (Algorithm 2 lines 5–18):
    /// raises `o.zc` to `zc` (aborting if passed by a higher zone),
    /// arbitrates any pending writer, and returns the version that was
    /// current at stamp time.
    ///
    /// The paper's `Openlong` executes atomically and always ends with the
    /// long transaction winning the arbitration ("T won", line 10), which
    /// guarantees that no short transaction adopting the freshly stamped
    /// zone can commit *between* the stamp and the read. We reproduce that
    /// with a single lock hold in the common case; when the conflicting
    /// writer is already in its commit protocol (unkillable), we wait it
    /// out and then read exactly the version determined by its outcome —
    /// any later version was installed by a post-stamp transaction that
    /// must serialize after us.
    ///
    /// Contention-manager policies are consulted with a saturated round
    /// count: a policy that would wait instead escalates to aborting the
    /// short opponent, matching the paper's pro-long arbitration at
    /// long-open time.
    ///
    /// # Errors
    ///
    /// [`AbortReason::ZonePassed`] if a long transaction with a higher
    /// zone already stamped the object; [`AbortReason::WriteConflict`] if
    /// the contention manager rules against `me`;
    /// [`AbortReason::SnapshotUnavailable`] if the stamped version was
    /// pruned while waiting; [`AbortReason::Killed`] if `me` was killed.
    pub fn open_long_read(
        &self,
        me: &Arc<TxShared>,
        zc: u64,
        cm: &dyn ContentionManager,
    ) -> Result<ReadHit<T>, Abort> {
        // Seqlock fast path: sample the word and the published version
        // *before* placing the stamp, so a conflict detected at that point
        // leaves the object unstamped and falls through to the original
        // locked protocol unchanged. Only a fully validated quiescent
        // object gets the lock-free stamp; the word is re-checked *after*
        // the stamp so the validated window covers it. Success means no
        // reservation existed anywhere in the window and the newest
        // version did not change — so there was no writer to arbitrate,
        // and nothing post-stamp slipped in (that would need a reservation
        // bit and a promotion bump, both of which the re-check catches).
        let before = self.meta.load(Ordering::Acquire);
        if self.fast && before & WRITER_BIT == 0 {
            let published = self.latest.load();
            if published.seq << 1 == before {
                let prev = self.zc.fetch_max(zc, Ordering::AcqRel);
                if prev > zc {
                    me.abort();
                    return Err(Abort::new(AbortReason::ZonePassed));
                }
                if self.meta.load(Ordering::Acquire) == before {
                    return Ok(ReadHit {
                        value: published.value.clone(),
                        seq: published.seq,
                        ct: published.ct,
                        is_latest: true,
                    });
                }
                // The object changed in the instants after the stamp
                // landed. Re-pinning under the lock now could mistake a
                // post-stamp commit for the stamp-time version (post-stamp
                // short transactions of the freshly stamped zone must stay
                // invisible to us), so abort instead of guessing — the
                // retry draws a fresh zone and re-reads.
                me.abort();
                return Err(Abort::new(AbortReason::SnapshotUnavailable));
            }
        }
        // Slow path: one lock hold covers stamp + read when no conflicting
        // writer is present (the common case by far).
        let pin = {
            let guard = self.lock_settled(Some(me));
            let prev = self.zc.fetch_max(zc, Ordering::AcqRel);
            if prev > zc {
                me.abort();
                return Err(Abort::new(AbortReason::ZonePassed));
            }
            match &guard.writer {
                None => {
                    let v = guard.versions.back().expect("version list never empty");
                    return Ok(ReadHit {
                        value: v.value.clone(),
                        seq: v.seq,
                        ct: v.ct,
                        is_latest: true,
                    });
                }
                Some(w) if Arc::ptr_eq(&w.tx, me) => {
                    let seq = guard.versions.back().map_or(0, |v| v.seq + 1);
                    return Ok(ReadHit {
                        value: w.tentative.clone(),
                        seq,
                        ct: u64::MAX,
                        is_latest: true,
                    });
                }
                Some(w) => {
                    // Conflict: remember the stamp-time pin for the slow
                    // path (the stamp has already been placed, so anything
                    // committing from here on is post-stamp).
                    let newest_seq = guard.versions.back().map_or(0, |v| v.seq);
                    Some((newest_seq, Some(Arc::clone(&w.tx))))
                }
            }
        };
        let allowed_seq = self.open_long_settle(me, zc, cm, pin.clone())?;
        let guard = self.lock_settled(Some(me));
        if let Some(w) = &guard.writer {
            if Arc::ptr_eq(&w.tx, me) {
                let seq = guard.versions.back().map_or(0, |v| v.seq + 1);
                return Ok(ReadHit {
                    value: w.tentative.clone(),
                    seq,
                    ct: u64::MAX,
                    is_latest: true,
                });
            }
        }
        let newest = guard.versions.back().expect("version list never empty");
        let target = allowed_seq.min(newest.seq);
        let newest_seq = newest.seq;
        let hit = guard
            .versions
            .iter()
            .find(|v| v.seq == target)
            .map(|v| ReadHit {
                value: v.value.clone(),
                seq: v.seq,
                ct: v.ct,
                is_latest: v.seq == newest_seq,
            });
        match hit {
            Some(hit) => Ok(hit),
            None => {
                me.abort();
                Err(Abort::new(AbortReason::SnapshotUnavailable))
            }
        }
    }

    /// Atomic long-transaction open in write mode: raises the zone counter
    /// like [`VarCore::open_long_read`] and acquires the writer
    /// reservation. Returns the sequence number of the newest committed
    /// version the long transaction is allowed to build on; the caller
    /// compares it against the version it read earlier (read-then-write
    /// patterns) to detect intervening post-stamp commits.
    ///
    /// # Errors
    ///
    /// Same as [`VarCore::open_long_read`], plus
    /// [`AbortReason::WriteConflict`] when a post-stamp transaction
    /// committed a newer version before the reservation could be taken
    /// (the long transaction would overwrite a successor that must
    /// serialize after it).
    pub fn reserve_long(
        &self,
        me: &Arc<TxShared>,
        zc: u64,
        value: T,
        cm: &dyn ContentionManager,
    ) -> Result<VersionSeq, Abort> {
        let mut pending = Some(value);
        if let Some(seq) = self.reserve_long_fast(me, zc, &mut pending)? {
            return Ok(seq);
        }
        let allowed_seq = self.open_long_settle(me, zc, cm, None)?;
        loop {
            if me.status() != TxStatus::Active {
                return Err(Abort::new(AbortReason::Killed));
            }
            let mut guard = self.lock_settled(Some(me));
            let newest_seq = guard.versions.back().map_or(0, |v| v.seq);
            if newest_seq > allowed_seq {
                // A post-stamp transaction committed in between: it must
                // serialize after us, so we cannot overwrite its version.
                me.abort();
                return Err(Abort::new(AbortReason::WriteConflict));
            }
            match &mut guard.writer {
                slot @ None => {
                    *slot = Some(Reservation {
                        tx: Arc::clone(me),
                        tentative: pending.take().expect("value pending"),
                    });
                    self.publish_meta(&guard);
                    return Ok(newest_seq);
                }
                Some(w) if Arc::ptr_eq(&w.tx, me) => {
                    w.tentative = pending.take().expect("value pending");
                    return Ok(newest_seq);
                }
                Some(w) => match cm.resolve(me, &w.tx, u64::MAX) {
                    Resolution::AbortOther => {
                        if w.tx.try_kill() {
                            guard.writer = Some(Reservation {
                                tx: Arc::clone(me),
                                tentative: pending.take().expect("value pending"),
                            });
                            self.publish_meta(&guard);
                            return Ok(newest_seq);
                        }
                        // Reached its commit protocol; re-settle and let the
                        // allowed_seq check decide.
                    }
                    _ => {
                        me.abort();
                        return Err(Abort::new(AbortReason::WriteConflict));
                    }
                },
            }
            drop(guard);
            std::hint::spin_loop();
        }
    }

    /// Optimistic long-write open: claims a quiescent object with one
    /// compare-and-swap of the `meta` writer bit, stamps the zone, and
    /// installs the reservation under a single plain lock acquisition.
    ///
    /// The CAS succeeds only when no reservation existed; it immediately
    /// turns every optimistic reader away, and the post-CAS lock
    /// acquisition verifies that no mutex-path writer or promotion slipped
    /// in between (their `publish_meta` stores overwrite the speculative
    /// bit, which is re-derived from the settled state on every exit, so
    /// `meta` always ends consistent). Returns `Ok(None)` when the claim
    /// failed and the caller must run the full `open_long_settle`
    /// arbitration — in which case `pending` still holds the value.
    ///
    /// The success case is exactly `open_long_settle` with an empty pin:
    /// the object was quiescent from before the stamp until after the
    /// reservation, so the newest committed version at that instant is the
    /// boundary the long transaction may build on. Post-stamp commits are
    /// impossible once the reservation is installed (single-writer rule),
    /// preserving the slow path's post-stamp-mutation abort semantics.
    ///
    /// # Errors
    ///
    /// [`AbortReason::ZonePassed`] if a higher zone already stamped the
    /// object; [`AbortReason::Killed`] if `me` was killed.
    fn reserve_long_fast(
        &self,
        me: &Arc<TxShared>,
        zc: u64,
        pending: &mut Option<T>,
    ) -> Result<Option<VersionSeq>, Abort> {
        if !self.fast {
            return Ok(None);
        }
        let before = self.meta.load(Ordering::Acquire);
        if before & WRITER_BIT != 0 {
            return Ok(None);
        }
        if self
            .meta
            .compare_exchange(
                before,
                before | WRITER_BIT,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return Ok(None);
        }
        // The claim is placed: stamp the zone (Algorithm 2 line 6–7).
        let prev = self.zc.fetch_max(zc, Ordering::AcqRel);
        if prev > zc {
            // Passed by a higher zone; restore `meta` from the settled
            // state before aborting.
            let guard = self.inner.lock();
            self.publish_meta(&guard);
            drop(guard);
            me.abort();
            return Err(Abort::new(AbortReason::ZonePassed));
        }
        let mut guard = self.inner.lock();
        let newest_seq = guard.versions.back().map_or(0, |v| v.seq);
        if guard.writer.is_some() || newest_seq << 1 != before {
            // A mutex-path writer installed concurrently (its publish_meta
            // already fixed the bit) or a promotion landed between the
            // sample and the claim: fall back to full arbitration.
            self.publish_meta(&guard);
            return Ok(None);
        }
        if me.status() != TxStatus::Active {
            self.publish_meta(&guard);
            return Err(Abort::new(AbortReason::Killed));
        }
        guard.writer = Some(Reservation {
            tx: Arc::clone(me),
            tentative: pending.take().expect("value pending"),
        });
        self.publish_meta(&guard);
        Ok(Some(newest_seq))
    }

    /// Shared prefix of the long-open paths: stamps the zone and resolves
    /// any *pre-stamp* writer, returning the highest version sequence the
    /// long transaction is allowed to observe (versions beyond it were
    /// committed by post-stamp transactions that serialize after it).
    ///
    /// The boundary is pinned at the first post-settlement visit — the
    /// stamp moment: `newest_seq` at that instant, plus one if the writer
    /// reservation that existed *at that instant* goes on to commit.
    /// Writers that appear later reserved after the stamp, belong to the
    /// freshly stamped zone, and must serialize after the long
    /// transaction, so they never extend the boundary.
    fn open_long_settle(
        &self,
        me: &Arc<TxShared>,
        zc: u64,
        cm: &dyn ContentionManager,
        initial_pin: Option<(VersionSeq, Option<Arc<TxShared>>)>,
    ) -> Result<VersionSeq, Abort> {
        let mut backoff = Backoff::new();
        // (newest version at stamp time, writer present at stamp time)
        let mut pin: Option<(VersionSeq, Option<Arc<TxShared>>)> = initial_pin;
        loop {
            if me.status() != TxStatus::Active {
                return Err(Abort::new(AbortReason::Killed));
            }
            let mut guard = self.lock_settled(Some(me));
            let prev = self.zc.fetch_max(zc, Ordering::AcqRel);
            if prev > zc {
                me.abort();
                return Err(Abort::new(AbortReason::ZonePassed));
            }
            if pin.is_none() {
                let newest_seq = guard.versions.back().map_or(0, |v| v.seq);
                let writer = guard
                    .writer
                    .as_ref()
                    .filter(|w| !Arc::ptr_eq(&w.tx, me))
                    .map(|w| Arc::clone(&w.tx));
                pin = Some((newest_seq, writer));
            }
            let (pin_seq, pin_writer) = pin.clone().expect("pinned above");
            let boundary_of = |writer: &Option<Arc<TxShared>>| {
                pin_seq
                    + match writer {
                        Some(w) if w.is_committed() => 1,
                        _ => 0,
                    }
            };
            match &guard.writer {
                None => return Ok(boundary_of(&pin_writer)),
                Some(w) if Arc::ptr_eq(&w.tx, me) => {
                    return Ok(boundary_of(&pin_writer));
                }
                Some(w) => {
                    let is_pre_stamp = pin_writer.as_ref().is_some_and(|p| Arc::ptr_eq(p, &w.tx));
                    if !is_pre_stamp {
                        // Post-stamp writer: it serializes after us and its
                        // tentative value is invisible to us — ignore it.
                        // The pre-stamp writer (if any) is terminal by now,
                        // since its reservation slot has been taken over.
                        return Ok(boundary_of(&pin_writer));
                    }
                    // The pre-stamp writer: the paper's Openlong always ends
                    // with the long transaction winning, so consult the
                    // contention manager with a saturated round count.
                    match cm.resolve(me, &w.tx, u64::MAX) {
                        Resolution::AbortOther => {
                            let w_tx = Arc::clone(&w.tx);
                            if w_tx.try_kill() {
                                guard.writer = None;
                                self.publish_meta(&guard);
                                return Ok(pin_seq);
                            }
                            // Unkillable: it reached its commit protocol.
                            // Wait for the outcome, which fixes the
                            // boundary.
                            drop(guard);
                            while w_tx.status() == TxStatus::Committing {
                                backoff.spin();
                            }
                            let adjusted = Some(w_tx);
                            return Ok(boundary_of(&adjusted));
                        }
                        Resolution::AbortSelf => {
                            me.abort();
                            return Err(Abort::new(AbortReason::WriteConflict));
                        }
                        Resolution::Wait => {
                            // The opponent is mid-commit or already
                            // finished; re-settle and re-examine.
                            drop(guard);
                            backoff.spin();
                        }
                    }
                }
            }
        }
    }

    /// Arbitrates away any foreign *active* writer reservation without
    /// reserving the object for `me` (Algorithm 2 lines 8–11: a long
    /// transaction opening an object in *either* mode resolves a pending
    /// write conflict through the contention manager first).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the contention manager rules against `me`, or
    /// if `me` was killed while waiting.
    pub fn arbitrate_writer(
        &self,
        me: &Arc<TxShared>,
        cm: &dyn ContentionManager,
    ) -> Result<(), Abort> {
        self.arbitrate_writer_filtered(me, cm, false)
    }

    /// Like [`VarCore::arbitrate_writer`], but only conflicts with *long*
    /// writers.
    ///
    /// Z-STM long transactions use **visible writes** and keep no read
    /// set: a short transaction that read the pre-long version of a
    /// long-write-reserved object would serialize *before* the long
    /// transaction, which is inconsistent with the zone order if the same
    /// short also updates objects the long transaction already read
    /// (found by schedule fuzzing; see `z_regression_read_of_long_reserved`
    /// at the workspace root). Short readers therefore wait out — or, per
    /// the contention manager, kill — an active long writer before
    /// reading. Short writers are unaffected: LSA's commit-time
    /// validation orders them correctly.
    ///
    /// # Errors
    ///
    /// Same as [`VarCore::arbitrate_writer`].
    pub fn arbitrate_long_writer(
        &self,
        me: &Arc<TxShared>,
        cm: &dyn ContentionManager,
    ) -> Result<(), Abort> {
        self.arbitrate_writer_filtered(me, cm, true)
    }

    fn arbitrate_writer_filtered(
        &self,
        me: &Arc<TxShared>,
        cm: &dyn ContentionManager,
        only_long: bool,
    ) -> Result<(), Abort> {
        // Fast path: no reservation at all, hence nothing to arbitrate —
        // the dominant case for short readers on read-mostly workloads.
        if self.meta.load(Ordering::Acquire) & WRITER_BIT == 0 {
            return Ok(());
        }
        let mut round = 0u64;
        let mut backoff = Backoff::new();
        loop {
            if me.status() != TxStatus::Active {
                return Err(Abort::new(AbortReason::Killed));
            }
            let mut guard = self.lock_settled(Some(me));
            let Some(w) = &guard.writer else {
                return Ok(());
            };
            if Arc::ptr_eq(&w.tx, me) {
                return Ok(());
            }
            if only_long && !w.tx.kind().is_long() {
                return Ok(());
            }
            match cm.resolve(me, &w.tx, round) {
                Resolution::AbortOther => {
                    if w.tx.try_kill() {
                        guard.writer = None;
                        self.publish_meta(&guard);
                        return Ok(());
                    }
                }
                Resolution::AbortSelf => {
                    me.abort();
                    return Err(Abort::new(AbortReason::WriteConflict));
                }
                Resolution::Wait => {}
            }
            drop(guard);
            me.set_waiting(true);
            backoff.spin();
            me.set_waiting(false);
            round += 1;
        }
    }

    /// Returns `true` if `me` currently holds the writer reservation.
    pub fn reserved_by(&self, me: &Arc<TxShared>) -> bool {
        if self.meta.load(Ordering::Acquire) & WRITER_BIT == 0 {
            return false;
        }
        let guard = self.inner.lock();
        guard
            .writer
            .as_ref()
            .is_some_and(|w| Arc::ptr_eq(&w.tx, me))
    }

    /// Releases `me`'s reservation (on abort).
    pub fn release(&self, me: &Arc<TxShared>) {
        let mut guard = self.inner.lock();
        if guard
            .writer
            .as_ref()
            .is_some_and(|w| Arc::ptr_eq(&w.tx, me))
        {
            guard.writer = None;
            self.publish_meta(&guard);
        }
    }

    /// Eagerly promotes `me`'s committed reservation (the committer calls
    /// this right after its status flip so readers rarely have to).
    pub fn promote_if_committed(&self, me: &Arc<TxShared>) {
        let mut guard = self.inner.lock();
        if guard
            .writer
            .as_ref()
            .is_some_and(|w| Arc::ptr_eq(&w.tx, me) && w.tx.status() == TxStatus::Committed)
        {
            self.promote_locked(&mut guard);
        }
    }

    /// Number of retained committed versions (for tests and diagnostics).
    pub fn version_count(&self) -> usize {
        self.inner.lock().versions.len()
    }

    /// Snapshot of the retained committed versions (tests, diagnostics).
    pub fn versions_snapshot(&self) -> Vec<Version<T>> {
        self.inner
            .lock()
            .versions
            .iter()
            .map(|v| Version::clone(v))
            .collect()
    }

    /// Commit time of the newest committed version.
    pub fn latest_ct(&self, me: Option<&Arc<TxShared>>) -> u64 {
        if let Some(v) = self.read_latest_fast() {
            return v.ct;
        }
        let guard = self.lock_settled(me);
        guard.versions.back().expect("version list never empty").ct
    }
}

impl<T: TxValue> std::fmt::Debug for VarCore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("VarCore")
            .field("id", &self.id)
            .field("zc", &self.zc())
            .field("versions", &inner.versions.len())
            .field("reserved", &inner.writer.is_some())
            .finish()
    }
}

/// Type-erased view of a [`VarCore`] so heterogeneous read/write sets can
/// hold objects of different value types.
pub trait DynObject: Send + Sync {
    /// The object's id.
    fn id(&self) -> ObjId;
    /// See [`VarCore::successor_ct`].
    fn successor_ct_dyn(
        &self,
        me: &Arc<TxShared>,
        seq: VersionSeq,
    ) -> Result<Option<u64>, HistoryGap>;
    /// See [`VarCore::validate_read`].
    fn validate_read_dyn(&self, me: &Arc<TxShared>, seq: VersionSeq, my_ct: u64) -> bool;
    /// See [`VarCore::release`].
    fn release_dyn(&self, me: &Arc<TxShared>);
    /// See [`VarCore::promote_if_committed`].
    fn promote_dyn(&self, me: &Arc<TxShared>);
}

impl<T: TxValue> DynObject for VarCore<T> {
    fn id(&self) -> ObjId {
        self.id
    }

    fn successor_ct_dyn(
        &self,
        me: &Arc<TxShared>,
        seq: VersionSeq,
    ) -> Result<Option<u64>, HistoryGap> {
        self.successor_ct(Some(me), seq)
    }

    fn validate_read_dyn(&self, me: &Arc<TxShared>, seq: VersionSeq, my_ct: u64) -> bool {
        self.validate_read(me, seq, my_ct)
    }

    fn release_dyn(&self, me: &Arc<TxShared>) {
        self.release(me);
    }

    fn promote_dyn(&self, me: &Arc<TxShared>) {
        self.promote_if_committed(me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstm_core::{CmPolicy, NullSink, ThreadId, TxKind};

    fn sink() -> Arc<dyn EventSink> {
        Arc::new(NullSink)
    }

    fn tx() -> Arc<TxShared> {
        Arc::new(TxShared::start(ThreadId::new(0), TxKind::Short, 0))
    }

    fn commit_write(core: &VarCore<i64>, value: i64, ct: u64) {
        let me = tx();
        let cm = CmPolicy::Aggressive.build();
        core.reserve(&me, value, cm.as_ref()).expect("reserve");
        assert!(me.begin_commit());
        me.set_commit_ct(ct);
        me.finish_commit();
        core.promote_if_committed(&me);
    }

    #[test]
    fn initial_version_is_time_zero() {
        let core = VarCore::new(7i64, 4, sink());
        let hit = core.read_latest(None);
        assert_eq!(hit.value, 7);
        assert_eq!(hit.seq, 0);
        assert_eq!(hit.ct, 0);
        assert!(hit.is_latest);
    }

    #[test]
    fn committed_writes_append_versions() {
        let core = VarCore::new(0i64, 4, sink());
        commit_write(&core, 1, 10);
        commit_write(&core, 2, 20);
        let hit = core.read_latest(None);
        assert_eq!((hit.value, hit.seq, hit.ct), (2, 2, 20));
        assert_eq!(core.version_count(), 3);
    }

    #[test]
    fn read_at_selects_version_valid_at_snapshot_time() {
        let core = VarCore::new(0i64, 4, sink());
        commit_write(&core, 1, 10);
        commit_write(&core, 2, 20);
        let hit = core.read_at(None, 15).expect("version at 15");
        assert_eq!((hit.value, hit.seq), (1, 1));
        assert!(!hit.is_latest);
        let old = core.read_at(None, 0).expect("initial version");
        assert_eq!(old.seq, 0);
    }

    #[test]
    fn pruning_bounds_history_and_fails_old_snapshots() {
        let core = VarCore::new(0i64, 2, sink());
        for i in 1..=5 {
            commit_write(&core, i, i as u64 * 10);
        }
        assert_eq!(core.version_count(), 2);
        assert!(core.read_at(None, 5).is_none(), "time 5 pruned away");
        assert!(core.read_at(None, 50).is_some());
    }

    #[test]
    fn successor_ct_distinguishes_open_known_and_pruned() {
        let core = VarCore::new(0i64, 2, sink());
        commit_write(&core, 1, 10);
        // seq 1 is newest: open validity.
        assert_eq!(core.successor_ct(None, 1), Ok(None));
        // seq 0's successor is seq 1 at ct 10.
        assert_eq!(core.successor_ct(None, 0), Ok(Some(10)));
        commit_write(&core, 2, 20);
        commit_write(&core, 3, 30);
        // seq 0 and its successor are pruned now.
        assert_eq!(core.successor_ct(None, 0), Err(HistoryGap::Pruned));
    }

    #[test]
    fn single_writer_rule_resolved_by_cm() {
        let core = VarCore::new(0i64, 4, sink());
        let first = tx();
        let second = tx();
        let aggressive = CmPolicy::Aggressive.build();
        core.reserve(&first, 1, aggressive.as_ref()).expect("first");
        // Aggressive second writer steals the reservation by killing first.
        core.reserve(&second, 2, aggressive.as_ref())
            .expect("steal");
        assert_eq!(first.status(), TxStatus::Aborted);
        assert!(core.reserved_by(&second));
    }

    #[test]
    fn suicide_cm_aborts_the_attacker() {
        let core = VarCore::new(0i64, 4, sink());
        let first = tx();
        let second = tx();
        let suicide = CmPolicy::Suicide.build();
        core.reserve(&first, 1, suicide.as_ref()).expect("first");
        let err = core
            .reserve(&second, 2, suicide.as_ref())
            .expect_err("loses");
        assert_eq!(err.reason(), AbortReason::WriteConflict);
        assert_eq!(second.status(), TxStatus::Aborted);
        assert!(core.reserved_by(&first));
    }

    #[test]
    fn dead_reservations_are_cleaned_lazily() {
        let core = VarCore::new(0i64, 4, sink());
        let dead = tx();
        let cm = CmPolicy::Polite.build();
        core.reserve(&dead, 1, cm.as_ref()).expect("reserve");
        dead.abort();
        // A fresh reader settles the object and sees the old version.
        let hit = core.read_latest(None);
        assert_eq!(hit.value, 0);
        // And a fresh writer acquires without conflict.
        let next = tx();
        core.reserve(&next, 2, cm.as_ref()).expect("after death");
    }

    #[test]
    fn read_your_own_write() {
        let core = VarCore::new(0i64, 4, sink());
        let me = tx();
        let cm = CmPolicy::Polite.build();
        core.reserve(&me, 42, cm.as_ref()).expect("reserve");
        let hit = core.read_latest(Some(&me));
        assert_eq!(hit.value, 42);
        let snap = core.read_at(Some(&me), 0).expect("own write visible");
        assert_eq!(snap.value, 42);
    }

    #[test]
    fn promotion_happens_on_next_access() {
        let core = VarCore::new(0i64, 4, sink());
        let me = tx();
        let cm = CmPolicy::Polite.build();
        core.reserve(&me, 9, cm.as_ref()).expect("reserve");
        assert!(me.begin_commit());
        me.set_commit_ct(33);
        me.finish_commit();
        // No eager promotion: a reader promotes lazily.
        let hit = core.read_latest(None);
        assert_eq!((hit.value, hit.ct, hit.seq), (9, 33, 1));
    }

    #[test]
    fn committing_writer_blocks_readers_until_resolved() {
        let core = Arc::new(VarCore::new(0i64, 4, sink()));
        let me = tx();
        let cm = CmPolicy::Polite.build();
        core.reserve(&me, 5, cm.as_ref()).expect("reserve");
        assert!(me.begin_commit());
        me.set_commit_ct(12);
        let reader = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || core.read_latest(None))
        };
        // Give the reader a moment to block on the committing writer.
        std::thread::sleep(std::time::Duration::from_millis(20));
        me.finish_commit();
        let hit = reader.join().expect("reader panicked");
        assert_eq!((hit.value, hit.ct), (5, 12));
    }

    #[test]
    fn zone_counter_is_monotonic() {
        let core = VarCore::new(0i64, 4, sink());
        assert_eq!(core.zc(), 0);
        assert_eq!(core.raise_zc(5), 0);
        assert_eq!(core.raise_zc(3), 5, "fetch_max keeps the maximum");
        assert_eq!(core.zc(), 5);
    }

    #[test]
    fn fast_path_matches_slow_path_on_quiescent_objects() {
        let core = VarCore::new(0i64, 4, sink());
        commit_write(&core, 1, 10);
        commit_write(&core, 2, 20);
        // No reservation: the fast path serves these.
        let fast = core.read_latest(None);
        assert_eq!(
            (fast.value, fast.seq, fast.ct, fast.is_latest),
            (2, 2, 20, true)
        );
        let at = core.read_at(None, 25).expect("within snapshot");
        assert_eq!((at.value, at.seq), (2, 2));
        assert_eq!(core.latest_ct(None), 20);
        assert_eq!(core.successor_ct(None, 2), Ok(None));
    }

    #[test]
    fn fast_path_declines_while_reserved() {
        let core = VarCore::new(0i64, 4, sink());
        let me = tx();
        let cm = CmPolicy::Polite.build();
        core.reserve(&me, 7, cm.as_ref()).expect("reserve");
        // Writer bit set: the optimistic read must decline so the slow
        // path can settle/serve read-your-own-writes.
        assert!(core.read_latest_fast().is_none());
        core.release(&me);
        assert!(core.read_latest_fast().is_some());
    }

    #[test]
    fn fast_paths_disabled_still_serves_reads() {
        let core = VarCore::with_fast_paths(0i64, 4, sink(), false);
        commit_write(&core, 3, 30);
        assert!(
            core.read_latest_fast().is_none(),
            "fast path must decline when disabled"
        );
        let hit = core.read_latest(None);
        assert_eq!((hit.value, hit.ct), (3, 30));
    }

    #[test]
    fn uncontended_long_reserve_takes_the_fast_path() {
        let core = VarCore::new(0i64, 4, sink());
        commit_write(&core, 1, 10);
        let me = tx();
        let cm = CmPolicy::Polite.build();
        // Quiescent object: the fast claim installs the reservation and
        // reports the stamp-time newest version.
        let seq = core.reserve_long(&me, 5, 7, cm.as_ref()).expect("reserve");
        assert_eq!(seq, 1);
        assert!(core.reserved_by(&me));
        assert_eq!(core.zc(), 5, "fast path must stamp the zone");
        // Fast readers decline while the reservation holds.
        assert!(core.read_latest_fast().is_none());
        // Commit and check the tentative value landed.
        assert!(me.begin_commit());
        me.set_commit_ct(20);
        me.finish_commit();
        core.promote_if_committed(&me);
        assert_eq!(core.read_latest(None).value, 7);
    }

    #[test]
    fn contended_long_reserve_falls_back_to_arbitration() {
        let core = VarCore::new(0i64, 4, sink());
        let short = tx();
        let long = tx();
        let aggressive = CmPolicy::Aggressive.build();
        core.reserve(&short, 1, aggressive.as_ref()).expect("short");
        // The writer bit is set, so the fast claim declines and the settled
        // arbitration kills the short opponent (pro-long policy).
        let seq = core
            .reserve_long(&long, 3, 9, aggressive.as_ref())
            .expect("long wins arbitration");
        assert_eq!(seq, 0);
        assert_eq!(short.status(), TxStatus::Aborted);
        assert!(core.reserved_by(&long));
    }

    #[test]
    fn passed_fast_long_reserve_aborts_and_restores_meta() {
        let core = VarCore::new(0i64, 4, sink());
        core.raise_zc(8);
        let me = tx();
        let cm = CmPolicy::Polite.build();
        let err = core
            .reserve_long(&me, 5, 1, cm.as_ref())
            .expect_err("zone 5 was passed by zone 8");
        assert_eq!(err.reason(), AbortReason::ZonePassed);
        // The speculative writer bit must not leak: fast reads work again.
        assert!(core.read_latest_fast().is_some());
    }

    #[test]
    fn concurrent_fast_readers_see_monotonic_versions() {
        let core = Arc::new(VarCore::new(0i64, 6, sink()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let core = Arc::clone(&core);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_seq = 0;
                    let mut last_ct = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let hit = core.read_latest(None);
                        assert!(
                            hit.seq >= last_seq && hit.ct >= last_ct,
                            "versions observed by a reader must be monotonic"
                        );
                        assert_eq!(hit.value, hit.ct as i64, "value matches its version");
                        last_seq = hit.seq;
                        last_ct = hit.ct;
                    }
                })
            })
            .collect();
        for i in 1..=200 {
            commit_write(&core, i, i as u64);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        let hit = core.read_latest(None);
        assert_eq!((hit.value, hit.ct), (200, 200));
    }
}
