//! LSA-STM — the multi-version Lazy Snapshot Algorithm (the paper's
//! baseline time-based STM, from its reference \[8\]), plus the
//! versioned-object [`engine`] that Z-STM reuses.
//!
//! See [`LsaStm`] for the algorithm description and examples, and
//! `ARCHITECTURE.md` at the workspace root for how this crate maps onto the
//! paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod stm;

pub use engine::HistoryGap;
pub use stm::{LsaStm, LsaThread, LsaTx, LsaVar};
