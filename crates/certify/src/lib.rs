//! Online serializability certification over the engine SPI.
//!
//! The paper's engines trade full serializability for throughput: CS-STM
//! only guarantees causal serializability and Z-STM z-linearizability. The
//! repository checks those claims *offline* with the `zstm-history`
//! checkers; this crate makes full serializability a *live* commit-time
//! criterion so the price of the stronger guarantee becomes measurable.
//!
//! [`CertifiedFactory`] wraps any [`TmFactory`] and implements the same
//! trait, so a certified engine drops into `Stm<F>`, `DynStm`, the
//! workloads and the benches unchanged. It runs an SSI-style certifier in
//! the spirit of Cahill's serializable snapshot isolation (the
//! `serializable_snapshot_isolation.tla` spec referenced in SNIPPETS.md):
//!
//! * every read leaves a **SIREAD-style mark** `(reader, version)` on the
//!   variable, which *persists after the reader commits*;
//! * every transaction carries `in_conflict` / `out_conflict` flags that
//!   are set for each dependency edge (wr, ww, rw-antidependency) between
//!   **concurrent** transactions;
//! * a transaction whose commit would leave it — or an already-committed
//!   transaction — with *both* flags set (Cahill's dangerous structure:
//!   a pivot with an incoming and an outgoing conflict) is rolled back
//!   through the normal engine path with [`AbortReason::Certification`].
//!
//! Unlike Cahill's SampleSort-era implementation, which flags
//! conservatively from lock tables, this certifier knows the *exact*
//! version each read observed: it taps the engine's [`EventSink`] stream
//! (forwarding every event to the user's sink untouched) and serializes
//! begins, reads and commits under one certifier mutex, so it maintains a
//! precise version→writer map per variable and only flags real MVSG edges.
//! That exactness is what keeps benign single-antidependency schedules
//! abort-free; the remaining false positives are inherent to the flag
//! abstraction (a dangerous structure need not close a cycle) — see
//! DESIGN.md for the deliberate deviations.
//!
//! Soundness sketch: every MVSG edge `A → B` between committed
//! transactions either points forward in real time (`A` committed before
//! `B` began — certification seqs are assigned under the same mutex as
//! engine commits, so the order is exact) or connects concurrent
//! transactions and sets `A.out_conflict` and `B.in_conflict`. A cycle
//! cannot consist of forward edges alone, and any concurrent edge inside a
//! cycle forces a both-flagged pivot; the commit rules guarantee no
//! transaction commits both-flagged and no committed transaction ever
//! *becomes* both-flagged — so certified histories are serializable.
//!
//! ```
//! use std::sync::Arc;
//!
//! use zstm_certify::CertifiedFactory;
//! use zstm_core::{atomically, RetryPolicy, StmConfig, TmFactory, TmTx, TxKind};
//! use zstm_lsa::LsaStm;
//!
//! let stm = Arc::new(CertifiedFactory::new(StmConfig::new(1), LsaStm::new));
//! let var = stm.new_var(41i64);
//! let mut thread = stm.register_thread();
//! let policy = RetryPolicy::default();
//! let value = atomically(&mut thread, TxKind::Short, &policy, |tx| {
//!     let v = tx.read(&var)?;
//!     tx.write(&var, v + 1)?;
//!     Ok(v + 1)
//! })
//! .unwrap();
//! assert_eq!(value, 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zstm_core::{
    Abort, AbortReason, EventSink, StmConfig, ThreadId, TmFactory, TmThread, TmTx, TxEvent,
    TxEventKind, TxId, TxKind, TxStats, TxValue, VersionSeq,
};
use zstm_util::sync::Mutex;

/// Certifier-internal identifier of one transaction attempt.
type Ticket = u64;

/// Event-stream tap: captures the exact version of each read for the
/// certifier while forwarding the unmodified stream to the user's sink
/// (so a `Recorder` installed in the [`StmConfig`] still sees everything).
struct TapSink {
    forward: Arc<dyn EventSink>,
    reads: Mutex<Vec<VersionSeq>>,
}

impl TapSink {
    fn clear_reads(&self) {
        self.reads.lock().clear();
    }

    fn last_read(&self) -> Option<VersionSeq> {
        self.reads.lock().pop()
    }
}

impl EventSink for TapSink {
    fn enabled(&self) -> bool {
        // Always on: the certifier needs the read versions even when the
        // user recorded nothing.
        true
    }

    fn record(&self, event: TxEvent) {
        if let TxEventKind::Read { version, .. } = event.event {
            self.reads.lock().push(version);
        }
        if self.forward.enabled() {
            self.forward.record(event);
        }
    }
}

/// Per-transaction certifier record. Kept after commit until no live
/// transaction is concurrent with it (the flags of such a transaction can
/// no longer change, and only concurrent edges consult them).
struct TxInfo {
    begin_seq: u64,
    commit_seq: Option<u64>,
    in_conflict: bool,
    out_conflict: bool,
}

/// Per-variable certifier state.
#[derive(Default)]
struct VarMarks {
    /// Number of leading writer entries dropped by [`CertState::collect`]
    /// (their commits predate every live transaction's begin, so they can
    /// only ever form forward edges).
    pruned: u64,
    /// `(writer, commit_seq)` of version `pruned + i + 1` at index `i`;
    /// version 0 is the initial value, written by no transaction. Commit
    /// seqs ascend, because versions are installed in commit order under
    /// the certifier mutex.
    writers: Vec<(Ticket, u64)>,
    /// SIREAD-style marks `(reader, version read)`. Persist after the
    /// reader commits; scrubbed when the reader aborts or is collected.
    sireads: Vec<(Ticket, VersionSeq)>,
}

impl VarMarks {
    fn latest(&self) -> VersionSeq {
        self.pruned + self.writers.len() as u64
    }

    /// The committed writer of version `version` (1-based), unless pruned.
    fn writer_of(&self, version: VersionSeq) -> Option<(Ticket, u64)> {
        if version <= self.pruned {
            None
        } else {
            self.writers
                .get((version - self.pruned - 1) as usize)
                .copied()
        }
    }
}

/// Dependency edges a commit would add to the multi-version serialization
/// graph, as flag installations: `into_me` are edge *sources* (they gain
/// `out_conflict`), `out_of_me` are edge *targets* (they gain
/// `in_conflict`).
struct Edges {
    into_me: Vec<Ticket>,
    out_of_me: Vec<Ticket>,
}

/// Certifier bookkeeping shared by all threads of one factory, guarded by
/// a single mutex: every certified begin, read and commit runs under it,
/// which both serializes the version counters exactly and makes the
/// commit-seq order identical to the engine's commit order.
#[derive(Default)]
struct CertState {
    next_seq: u64,
    next_ticket: Ticket,
    txns: HashMap<Ticket, TxInfo>,
    vars: HashMap<u64, VarMarks>,
}

impl CertState {
    fn tick(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    fn begin_tx(&mut self) -> Ticket {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let begin_seq = self.tick();
        self.txns.insert(
            ticket,
            TxInfo {
                begin_seq,
                commit_seq: None,
                in_conflict: false,
                out_conflict: false,
            },
        );
        ticket
    }

    /// Whether `ticket` overlaps a transaction that began at `my_begin`:
    /// still active, or committed after that begin. Collected transactions
    /// committed before every live begin, hence are never concurrent.
    fn concurrent_with(&self, ticket: Ticket, my_begin: u64) -> bool {
        match self.txns.get(&ticket) {
            None => false,
            Some(info) => info.commit_seq.is_none_or(|c| c > my_begin),
        }
    }

    /// Records one read: leaves the SIREAD mark and the read-time-visible
    /// edges (the edges whose *other* endpoint committed first; the rest
    /// are discovered at that endpoint's later commit via the mark).
    fn note_read(&mut self, local: &mut TxLocal, var: u64, version: VersionSeq) {
        if local.writes.contains(&var) {
            // Read of the transaction's own tentative write.
            return;
        }
        let me = local.ticket;
        let my_begin = self.txns[&me].begin_seq;
        let marks = self.vars.entry(var).or_default();
        let latest = marks.latest();
        if version > latest + 1 {
            // Unknown future version; defensive (engines never serve one
            // beyond a single visible write reservation).
            return;
        }
        if !marks.sireads.iter().any(|&(t, v)| t == me && v == version) {
            marks.sireads.push((me, version));
            local.read_vars.push(var);
        }
        // wr edge in: the committed writer of the version read, when
        // concurrent. (`version == latest + 1` is another transaction's
        // still-tentative visible write — the wr edge is installed at that
        // writer's commit instead, through the mark above.)
        if version >= 1 && version <= latest {
            if let Some((writer, committed)) = marks.writer_of(version) {
                if writer != me && committed > my_begin {
                    local.wr_in.push(writer);
                }
            }
        }
        // rw edge out: the read is already stale — the next version's
        // writer committed before this read, so that writer's own commit
        // could not see the mark. (The fresh-read case is discovered at
        // the overwriter's commit.)
        if version < latest {
            if let Some((writer, _)) = marks.writer_of(version + 1) {
                if writer != me {
                    local.rw_out.push(writer);
                }
            }
        }
    }

    /// Commit-time certification: computes the edges this commit would add
    /// and applies the two flag rules. `Err(())` means the dangerous
    /// structure must be broken by aborting the acting transaction.
    fn certify(&self, local: &TxLocal) -> Result<Edges, ()> {
        let me = local.ticket;
        let info = &self.txns[&me];
        let my_begin = info.begin_seq;
        let mut into_me: Vec<Ticket> = local.wr_in.clone();
        let mut out_of_me: Vec<Ticket> = local.rw_out.clone();
        for &var in &local.writes {
            if let Some(marks) = self.vars.get(&var) {
                let latest = marks.latest();
                for &(reader, version) in &marks.sireads {
                    if reader == me {
                        continue;
                    }
                    if version == latest && self.concurrent_with(reader, my_begin) {
                        // rw in: the reader's snapshot is overwritten by me.
                        into_me.push(reader);
                    } else if version == latest + 1 {
                        // wr out: the reader already observed my tentative
                        // version (engines with visible long writes).
                        out_of_me.push(reader);
                    }
                }
                // ww in: the immediately preceding writer, when concurrent.
                if let Some(&(writer, committed)) = marks.writers.last() {
                    if writer != me && committed > my_begin {
                        into_me.push(writer);
                    }
                }
            }
        }
        // Rule 1: never commit both-flagged (I would be the pivot).
        let my_in = info.in_conflict || !into_me.is_empty();
        let my_out = info.out_conflict || !out_of_me.is_empty();
        if my_in && my_out {
            return Err(());
        }
        // Rule 2: never let a *committed* transaction become both-flagged —
        // its abort window is gone, so the acting transaction aborts
        // instead. (A still-active counterpart may become both-flagged; it
        // will fail rule 1 at its own commit.)
        for &ticket in &into_me {
            if let Some(other) = self.txns.get(&ticket) {
                if other.commit_seq.is_some() && other.in_conflict {
                    return Err(());
                }
            }
        }
        for &ticket in &out_of_me {
            if let Some(other) = self.txns.get(&ticket) {
                if other.commit_seq.is_some() && other.out_conflict {
                    return Err(());
                }
            }
        }
        Ok(Edges { into_me, out_of_me })
    }

    /// Installs a successful commit: new versions, commit seq, and the
    /// certified flag mutations on both edge endpoints.
    fn finish_commit(&mut self, local: &TxLocal, edges: Edges) {
        let me = local.ticket;
        let commit_seq = self.tick();
        for &var in &local.writes {
            self.vars
                .entry(var)
                .or_default()
                .writers
                .push((me, commit_seq));
        }
        let info = self.txns.get_mut(&me).expect("committing tx is tracked");
        info.commit_seq = Some(commit_seq);
        if !edges.into_me.is_empty() {
            info.in_conflict = true;
        }
        if !edges.out_of_me.is_empty() {
            info.out_conflict = true;
        }
        for ticket in edges.into_me {
            if let Some(other) = self.txns.get_mut(&ticket) {
                other.out_conflict = true;
            }
        }
        for ticket in edges.out_of_me {
            if let Some(other) = self.txns.get_mut(&ticket) {
                other.in_conflict = true;
            }
        }
        self.collect();
    }

    /// Erases an aborted transaction: its marks never became visible
    /// dependencies, so they are scrubbed entirely.
    fn forget(&mut self, local: &TxLocal) {
        let me = local.ticket;
        for &var in &local.read_vars {
            if let Some(marks) = self.vars.get_mut(&var) {
                marks.sireads.retain(|&(t, _)| t != me);
            }
        }
        self.txns.remove(&me);
        self.collect();
    }

    /// Flag lifetime after commit: a committed transaction's record (and
    /// its SIREAD marks) must survive while any live transaction overlaps
    /// it — later commits still consult the flags. Once every live
    /// transaction began after its commit, only forward edges can ever
    /// reach it, so the record is garbage; ancient writer entries are
    /// pruned the same way (keeping the version numbering via `pruned`).
    fn collect(&mut self) {
        let horizon = self
            .txns
            .values()
            .filter(|t| t.commit_seq.is_none())
            .map(|t| t.begin_seq)
            .min();
        let dead: Vec<Ticket> = self
            .txns
            .iter()
            .filter(|(_, t)| t.commit_seq.is_some_and(|c| horizon.is_none_or(|h| c < h)))
            .map(|(&ticket, _)| ticket)
            .collect();
        if dead.is_empty() {
            return;
        }
        for marks in self.vars.values_mut() {
            marks.sireads.retain(|(t, _)| !dead.contains(t));
            let cut = match horizon {
                None => marks.writers.len(),
                Some(h) => marks.writers.iter().take_while(|&&(_, c)| c < h).count(),
            };
            if cut > 0 {
                marks.writers.drain(..cut);
                marks.pruned += cut as u64;
            }
        }
        for ticket in &dead {
            self.txns.remove(ticket);
        }
    }
}

/// State shared by every thread of one [`CertifiedFactory`].
struct CertShared {
    state: Mutex<CertState>,
    tap: Arc<TapSink>,
    next_var: AtomicU64,
}

/// An engine wrapped with online SSI certification.
///
/// Implements [`TmFactory`] by delegating to the inner engine and running
/// the certifier around every transaction; see the crate docs for the
/// protocol. Built with [`CertifiedFactory::new`], which installs the
/// event-stream tap into the engine's [`StmConfig`] before construction.
pub struct CertifiedFactory<F: TmFactory> {
    inner: Arc<F>,
    shared: Arc<CertShared>,
}

impl<F: TmFactory> CertifiedFactory<F> {
    /// Builds the inner engine from `config` (with the certifier's event
    /// tap chained in front of the configured sink) and wraps it.
    ///
    /// ```
    /// use zstm_certify::CertifiedFactory;
    /// use zstm_core::{StmConfig, TmFactory};
    /// use zstm_lsa::LsaStm;
    ///
    /// let certified = CertifiedFactory::new(StmConfig::new(4), LsaStm::new);
    /// assert_eq!(certified.name(), "certified-lsa");
    /// ```
    pub fn new(config: StmConfig, build: impl FnOnce(StmConfig) -> F) -> Self {
        let tap = Arc::new(TapSink {
            forward: Arc::clone(config.sink()),
            reads: Mutex::new(Vec::new()),
        });
        let mut config = config;
        config.event_sink(Arc::clone(&tap) as Arc<dyn EventSink>);
        let inner = Arc::new(build(config));
        Self {
            inner,
            shared: Arc::new(CertShared {
                state: Mutex::new(CertState::default()),
                tap,
                next_var: AtomicU64::new(0),
            }),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &Arc<F> {
        &self.inner
    }

    #[doc(hidden)]
    pub fn footprint(&self) -> (usize, usize, usize) {
        let state = self.shared.state.lock();
        let sireads = state.vars.values().map(|m| m.sireads.len()).sum();
        let writers = state.vars.values().map(|m| m.writers.len()).sum();
        (state.txns.len(), sireads, writers)
    }
}

/// Transactional variable of a certified engine: the inner engine's var
/// plus a certifier-assigned identity.
pub struct CertVar<F: TmFactory, T: TxValue> {
    inner: F::Var<T>,
    id: u64,
}

impl<F: TmFactory, T: TxValue> CertVar<F, T> {
    /// The wrapped engine variable.
    pub fn inner(&self) -> &F::Var<T> {
        &self.inner
    }
}

/// Per-logical-thread context of a certified engine.
pub struct CertifiedThread<F: TmFactory> {
    inner: F::Thread,
    shared: Arc<CertShared>,
}

/// An active certified transaction.
///
/// Reads and commits run under the certifier mutex; holding it across the
/// inner engine call is deadlock-free because every contention-management
/// policy resolves waits in bounded rounds (the documented `cm` contract),
/// so an engine operation blocked on a thread that is itself parked on the
/// certifier mutex terminates with an abort.
pub struct CertifiedTx<'a, F: TmFactory> {
    inner: Option<<F::Thread as TmThread>::Tx<'a>>,
    shared: Arc<CertShared>,
    local: TxLocal,
}

struct TxLocal {
    ticket: Ticket,
    /// Concurrent committed writers whose versions this tx read (wr in).
    wr_in: Vec<Ticket>,
    /// Committed overwriters of versions this tx read stale (rw out).
    rw_out: Vec<Ticket>,
    /// Vars carrying this tx's SIREAD marks (scrubbed on abort).
    read_vars: Vec<u64>,
    /// Distinct vars written.
    writes: Vec<u64>,
}

impl TxLocal {
    fn new(ticket: Ticket) -> Self {
        Self {
            ticket,
            wr_in: Vec::new(),
            rw_out: Vec::new(),
            read_vars: Vec::new(),
            writes: Vec::new(),
        }
    }
}

impl<F: TmFactory> TmFactory for CertifiedFactory<F> {
    type Var<T: TxValue> = CertVar<F, T>;
    type Thread = CertifiedThread<F>;

    fn new_var<T: TxValue>(&self, init: T) -> CertVar<F, T> {
        CertVar {
            inner: self.inner.new_var(init),
            id: self.shared.next_var.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn register_thread(self: &Arc<Self>) -> CertifiedThread<F> {
        CertifiedThread {
            inner: self.inner.register_thread(),
            shared: Arc::clone(&self.shared),
        }
    }

    fn max_threads(&self) -> Option<usize> {
        self.inner.max_threads()
    }

    fn name(&self) -> &'static str {
        match self.inner.name() {
            "lsa" => "certified-lsa",
            "lsa-noreadsets" => "certified-lsa-noreadsets",
            "tl2" => "certified-tl2",
            "cs" => "certified-cs",
            "s-stm" => "certified-s-stm",
            "z-stm" => "certified-z-stm",
            _ => "certified",
        }
    }
}

impl<F: TmFactory> TmThread for CertifiedThread<F> {
    type Factory = CertifiedFactory<F>;
    type Tx<'a> = CertifiedTx<'a, F>;

    fn begin(&mut self, kind: TxKind) -> CertifiedTx<'_, F> {
        let shared = Arc::clone(&self.shared);
        // Hold the certifier mutex across the engine begin so the begin
        // seq is exact w.r.t. engine commit order (concurrency decisions
        // stay precise, not merely conservative).
        let mut state = shared.state.lock();
        let ticket = state.begin_tx();
        let inner = self.inner.begin(kind);
        drop(state);
        CertifiedTx {
            inner: Some(inner),
            shared,
            local: TxLocal::new(ticket),
        }
    }

    fn thread_id(&self) -> ThreadId {
        self.inner.thread_id()
    }

    fn stats(&self) -> &TxStats {
        self.inner.stats()
    }

    fn stats_mut(&mut self) -> Option<&mut TxStats> {
        self.inner.stats_mut()
    }

    fn take_stats(&mut self) -> TxStats {
        self.inner.take_stats()
    }
}

impl<F: TmFactory> TmTx for CertifiedTx<'_, F> {
    type Factory = CertifiedFactory<F>;

    fn read<T: TxValue>(&mut self, var: &CertVar<F, T>) -> Result<T, Abort> {
        let shared = Arc::clone(&self.shared);
        let mut state = shared.state.lock();
        shared.tap.clear_reads();
        let result = self
            .inner
            .as_mut()
            .expect("transaction finished")
            .read(&var.inner);
        if result.is_ok() {
            if let Some(version) = shared.tap.last_read() {
                state.note_read(&mut self.local, var.id, version);
            }
        }
        result
    }

    fn write<T: TxValue>(&mut self, var: &CertVar<F, T>, value: T) -> Result<(), Abort> {
        // No certifier state is touched: versions are installed at commit,
        // and the write set is tx-local. The engine synchronizes itself.
        let result = self
            .inner
            .as_mut()
            .expect("transaction finished")
            .write(&var.inner, value);
        if result.is_ok() && !self.local.writes.contains(&var.id) {
            self.local.writes.push(var.id);
        }
        result
    }

    fn commit(mut self) -> Result<(), Abort> {
        let inner = self.inner.take().expect("transaction finished");
        let shared = Arc::clone(&self.shared);
        let mut state = shared.state.lock();
        match state.certify(&self.local) {
            Err(()) => {
                state.forget(&self.local);
                drop(state);
                // The engine's rollback path records the abort in the
                // thread stats and emits the Abort event — certification
                // aborts flow through the existing machinery unchanged.
                inner.rollback(AbortReason::Certification);
                Err(Abort::new(AbortReason::Certification))
            }
            Ok(edges) => match inner.commit() {
                Ok(()) => {
                    state.finish_commit(&self.local, edges);
                    Ok(())
                }
                Err(abort) => {
                    state.forget(&self.local);
                    Err(abort)
                }
            },
        }
    }

    fn rollback(mut self, reason: AbortReason) {
        let inner = self.inner.take().expect("transaction finished");
        {
            let mut state = self.shared.state.lock();
            state.forget(&self.local);
        }
        inner.rollback(reason);
    }

    fn id(&self) -> TxId {
        self.inner.as_ref().expect("transaction finished").id()
    }

    fn kind(&self) -> TxKind {
        self.inner.as_ref().expect("transaction finished").kind()
    }
}

impl<F: TmFactory> Drop for CertifiedTx<'_, F> {
    fn drop(&mut self) {
        // Commit and rollback take the inner tx out first; a certified tx
        // dropped raw (leaked attempt) must still scrub its marks.
        if self.inner.is_some() {
            let mut state = self.shared.state.lock();
            state.forget(&self.local);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstm_core::atomically;
    use zstm_core::RetryPolicy;
    use zstm_cs::CsStm;
    use zstm_history::{check_serializable, Recorder};
    use zstm_lsa::LsaStm;

    #[test]
    fn values_flow_through_certification() {
        let stm = Arc::new(CertifiedFactory::new(StmConfig::new(1), LsaStm::new));
        let var = stm.new_var(0i64);
        let mut thread = stm.register_thread();
        let policy = RetryPolicy::default();
        for i in 1..=10 {
            let value = atomically(&mut thread, TxKind::Short, &policy, |tx| {
                let v = tx.read(&var)?;
                tx.write(&var, v + 1)?;
                Ok(v + 1)
            })
            .unwrap();
            assert_eq!(value, i);
        }
        assert_eq!(thread.take_stats().certification_aborts(), 0);
    }

    #[test]
    fn name_maps_to_certified_variant() {
        let lsa = CertifiedFactory::new(StmConfig::new(1), LsaStm::new);
        assert_eq!(lsa.name(), "certified-lsa");
        let cs = CertifiedFactory::new(StmConfig::new(1), CsStm::with_vector_clock);
        assert_eq!(cs.name(), "certified-cs");
        assert_eq!(lsa.max_threads(), Some(1));
    }

    /// Write skew on CS-STM: both transactions commit under the native
    /// causal criterion; the certifier must abort exactly the second
    /// committer (the pivot of the dangerous structure).
    #[test]
    fn write_skew_aborts_exactly_one() {
        let stm = Arc::new(CertifiedFactory::new(
            StmConfig::new(2),
            CsStm::with_vector_clock,
        ));
        let x = stm.new_var(0i64);
        let y = stm.new_var(0i64);
        let mut t0 = stm.register_thread();
        let mut t1 = stm.register_thread();

        let mut a = t0.begin(TxKind::Short);
        let mut b = t1.begin(TxKind::Short);
        let ax = a.read(&x).unwrap();
        let ay = a.read(&y).unwrap();
        let bx = b.read(&x).unwrap();
        let by = b.read(&y).unwrap();
        a.write(&x, ax + ay + 1).unwrap();
        b.write(&y, bx + by + 1).unwrap();
        a.commit().expect("first committer passes certification");
        let err = b.commit().expect_err("second committer is the pivot");
        assert_eq!(err.reason(), AbortReason::Certification);
        assert_eq!(t1.take_stats().certification_aborts(), 1);
        assert_eq!(t0.take_stats().certification_aborts(), 0);
    }

    /// A single rw antidependency is not a dangerous structure: the
    /// exact-edge certifier must not abort either transaction.
    #[test]
    fn benign_single_antidependency_commits() {
        let stm = Arc::new(CertifiedFactory::new(
            StmConfig::new(2),
            CsStm::with_vector_clock,
        ));
        let x = stm.new_var(0i64);
        let mut t0 = stm.register_thread();
        let mut t1 = stm.register_thread();

        let mut reader = t0.begin(TxKind::Short);
        let _ = reader.read(&x).unwrap();
        let mut writer = t1.begin(TxKind::Short);
        writer.write(&x, 7).unwrap();
        writer.commit().expect("writer commits");
        reader
            .commit()
            .expect("stale reader commits: one edge, no pivot");
        assert_eq!(t0.take_stats().certification_aborts(), 0);
        assert_eq!(t1.take_stats().certification_aborts(), 0);
    }

    /// Fekete et al.'s read-only anomaly: the read-only transaction makes
    /// the history non-serializable even though no two writers conflict.
    /// The certifier must abort the both-flagged pivot.
    #[test]
    fn read_only_anomaly_aborts_pivot() {
        let stm = Arc::new(CertifiedFactory::new(
            StmConfig::new(3),
            CsStm::with_vector_clock,
        ));
        let x = stm.new_var(0i64);
        let y = stm.new_var(0i64);
        let mut ta = stm.register_thread();
        let mut tb = stm.register_thread();
        let mut tc = stm.register_thread();

        // T1 snapshots x and y, will write x last.
        let mut t1 = ta.begin(TxKind::Short);
        let t1x = t1.read(&x).unwrap();
        let _ = t1.read(&y).unwrap();
        // T2 updates y and commits first.
        let mut t2 = tb.begin(TxKind::Short);
        let t2y = t2.read(&y).unwrap();
        t2.write(&y, t2y + 10).unwrap();
        t2.commit().expect("T2 commits");
        // T3 (read-only) begins after T2's commit and sees its update.
        let mut t3 = tc.begin(TxKind::Short);
        let _ = t3.read(&x).unwrap();
        let t3y = t3.read(&y).unwrap();
        assert_eq!(t3y, 10);
        t3.commit().expect("read-only T3 commits");
        // T1 now closes the dangerous structure: rw T1->T2 and rw T3->T1.
        t1.write(&x, t1x - 5).unwrap();
        let err = t1.commit().expect_err("T1 is the both-flagged pivot");
        assert_eq!(err.reason(), AbortReason::Certification);
    }

    /// The user's sink still sees the full event stream through the tap,
    /// and the recorded certified history is serializable.
    #[test]
    fn tap_forwards_events_to_recorder() {
        let recorder = Arc::new(Recorder::new());
        let mut config = StmConfig::new(2);
        config.event_sink(Arc::clone(&recorder) as Arc<dyn EventSink>);
        let stm = Arc::new(CertifiedFactory::new(config, CsStm::with_vector_clock));
        let x = stm.new_var(0i64);
        let y = stm.new_var(0i64);
        let mut t0 = stm.register_thread();
        let mut t1 = stm.register_thread();

        let mut a = t0.begin(TxKind::Short);
        let mut b = t1.begin(TxKind::Short);
        let _ = a.read(&y).unwrap();
        let _ = b.read(&x).unwrap();
        a.write(&x, 1).unwrap();
        b.write(&y, 1).unwrap();
        a.commit().expect("first committer passes");
        assert!(b.commit().is_err());

        let history = recorder.history();
        assert_eq!(history.committed().count(), 1);
        assert!(history.find_dirty_read().is_none());
        check_serializable(&history).expect("certified history is serializable");
    }

    /// Flag lifetime: once no live transaction overlaps them, committed
    /// records, SIREAD marks and ancient writer entries are collected.
    #[test]
    fn certifier_state_is_collected() {
        let stm = Arc::new(CertifiedFactory::new(StmConfig::new(1), LsaStm::new));
        let var = stm.new_var(0i64);
        let mut thread = stm.register_thread();
        let policy = RetryPolicy::default();
        for _ in 0..50 {
            atomically(&mut thread, TxKind::Short, &policy, |tx| {
                let v = tx.read(&var)?;
                tx.write(&var, v + 1)
            })
            .unwrap();
        }
        let (txns, sireads, writers) = stm.footprint();
        assert_eq!(txns, 0, "committed records outlived the GC horizon");
        assert_eq!(sireads, 0, "SIREAD marks leaked");
        assert_eq!(writers, 0, "writer history leaked");
    }
}
