use std::collections::{BTreeMap, HashMap};

use zstm_core::{AbortReason, ObjId, ThreadId, TxEvent, TxEventKind, TxId, TxKind, VersionSeq};

/// Everything the checkers need to know about one transaction attempt.
#[derive(Clone, Debug)]
pub struct TxRecord {
    /// The attempt's id.
    pub id: TxId,
    /// Logical thread that ran it.
    pub thread: ThreadId,
    /// Short/long classification.
    pub kind: TxKind,
    /// Global sequence number of the `Begin` event.
    pub begin_seq: u64,
    /// Global sequence number of the `Commit` event, if committed.
    pub commit_seq: Option<u64>,
    /// Zone number at commit (Z-STM histories).
    pub zone: Option<u64>,
    /// Abort reason, if the attempt aborted.
    pub abort: Option<AbortReason>,
    /// `(object, version)` pairs read.
    pub reads: Vec<(ObjId, VersionSeq)>,
    /// `(object, version)` pairs written (emitted at commit, so writes are
    /// only present on committed transactions).
    pub writes: Vec<(ObjId, VersionSeq)>,
}

impl TxRecord {
    /// `true` if the attempt committed.
    pub fn committed(&self) -> bool {
        self.commit_seq.is_some()
    }

    /// `true` if the committed transaction wrote nothing.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

/// A recorded transactional history.
///
/// Build one with [`crate::Recorder::history`] or
/// [`History::from_events`]; feed it to the checkers in this crate.
#[derive(Clone, Debug, Default)]
pub struct History {
    txs: BTreeMap<TxId, TxRecord>,
    /// `(obj, version) → writer` for every committed write.
    writers: HashMap<(ObjId, VersionSeq), TxId>,
    /// Highest written version per object.
    max_version: HashMap<ObjId, VersionSeq>,
}

impl History {
    /// Builds a history from a stamped event stream.
    pub fn from_events(events: impl IntoIterator<Item = (u64, TxEvent)>) -> Self {
        let mut txs: BTreeMap<TxId, TxRecord> = BTreeMap::new();
        for (seq, event) in events {
            let record = txs.entry(event.tx).or_insert_with(|| TxRecord {
                id: event.tx,
                thread: event.thread,
                kind: event.kind,
                begin_seq: seq,
                commit_seq: None,
                zone: None,
                abort: None,
                reads: Vec::new(),
                writes: Vec::new(),
            });
            match event.event {
                TxEventKind::Begin => record.begin_seq = seq,
                TxEventKind::Read { obj, version } => record.reads.push((obj, version)),
                TxEventKind::Write { obj, version } => record.writes.push((obj, version)),
                TxEventKind::Commit { zone } => {
                    record.commit_seq = Some(seq);
                    record.zone = zone;
                }
                TxEventKind::Abort { reason } => record.abort = Some(reason),
                _ => {}
            }
        }
        let mut writers = HashMap::new();
        let mut max_version: HashMap<ObjId, VersionSeq> = HashMap::new();
        for record in txs.values() {
            if !record.committed() {
                continue;
            }
            for &(obj, version) in &record.writes {
                writers.insert((obj, version), record.id);
                let entry = max_version.entry(obj).or_insert(version);
                *entry = (*entry).max(version);
            }
        }
        Self {
            txs,
            writers,
            max_version,
        }
    }

    /// Looks up one transaction attempt.
    pub fn get(&self, id: TxId) -> Option<&TxRecord> {
        self.txs.get(&id)
    }

    /// Iterates over all attempts (committed and aborted).
    pub fn iter(&self) -> impl Iterator<Item = &TxRecord> {
        self.txs.values()
    }

    /// Iterates over committed transactions only.
    pub fn committed(&self) -> impl Iterator<Item = &TxRecord> {
        self.txs.values().filter(|t| t.committed())
    }

    /// Number of recorded attempts.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// The committed writer of `(obj, version)`, if any (version 0 is the
    /// initial version and has no writer).
    pub fn writer_of(&self, obj: ObjId, version: VersionSeq) -> Option<TxId> {
        self.writers.get(&(obj, version)).copied()
    }

    /// Highest committed version of `obj` in this history.
    pub fn max_version(&self, obj: ObjId) -> Option<VersionSeq> {
        self.max_version.get(&obj).copied()
    }

    /// Sanity check used by tests: every committed read must observe
    /// either the initial version or a version some committed transaction
    /// wrote. Returns the offending `(tx, obj, version)` if violated
    /// (e.g. a dirty read of a never-committed tentative value).
    pub fn find_dirty_read(&self) -> Option<(TxId, ObjId, VersionSeq)> {
        for record in self.committed() {
            for &(obj, version) in &record.reads {
                if version == 0 {
                    continue;
                }
                if self.writer_of(obj, version).is_none() {
                    // The version may be a read-own-write placeholder
                    // (reads of the transaction's own tentative value use
                    // seq newest+1); accept it if this tx wrote the object.
                    let wrote_it = record.writes.iter().any(|&(o, _)| o == obj);
                    if !wrote_it {
                        return Some((record.id, obj, version));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstm_core::TxEvent;

    fn event(tx: TxId, kind: TxEventKind) -> TxEvent {
        TxEvent::new(tx, ThreadId::new(0), TxKind::Short, kind)
    }

    #[test]
    fn builds_records_from_events() {
        let tx = TxId::fresh();
        let obj = ObjId::fresh();
        let history = History::from_events([
            (0, event(tx, TxEventKind::Begin)),
            (1, event(tx, TxEventKind::Read { obj, version: 0 })),
            (2, event(tx, TxEventKind::Write { obj, version: 1 })),
            (3, event(tx, TxEventKind::Commit { zone: Some(7) })),
        ]);
        let record = history.get(tx).expect("present");
        assert!(record.committed());
        assert_eq!(record.zone, Some(7));
        assert_eq!(record.reads, vec![(obj, 0)]);
        assert_eq!(record.writes, vec![(obj, 1)]);
        assert_eq!(history.writer_of(obj, 1), Some(tx));
        assert_eq!(history.max_version(obj), Some(1));
        assert!(history.find_dirty_read().is_none());
    }

    #[test]
    fn aborted_attempts_do_not_write() {
        let tx = TxId::fresh();
        let obj = ObjId::fresh();
        let history = History::from_events([
            (0, event(tx, TxEventKind::Begin)),
            (1, event(tx, TxEventKind::Read { obj, version: 0 })),
            (
                2,
                event(
                    tx,
                    TxEventKind::Abort {
                        reason: AbortReason::Explicit,
                    },
                ),
            ),
        ]);
        let record = history.get(tx).expect("present");
        assert!(!record.committed());
        assert_eq!(record.abort, Some(AbortReason::Explicit));
        assert_eq!(history.committed().count(), 0);
    }

    #[test]
    fn dirty_read_detection() {
        let reader = TxId::fresh();
        let obj = ObjId::fresh();
        // Reader observes version 3 that nobody committed.
        let history = History::from_events([
            (0, event(reader, TxEventKind::Begin)),
            (1, event(reader, TxEventKind::Read { obj, version: 3 })),
            (2, event(reader, TxEventKind::Commit { zone: None })),
        ]);
        assert_eq!(history.find_dirty_read(), Some((reader, obj, 3)));
    }
}
