//! Hand-built histories reproducing the paper's example schedules
//! (Figures 1–5) plus classic anomalies, used to validate the checkers
//! and as executable documentation of the consistency criteria.

use zstm_core::{ObjId, ThreadId, TxEvent, TxEventKind, TxId, TxKind, VersionSeq};

use crate::History;

/// Fluent builder for hand-written histories.
///
/// # Examples
///
/// ```
/// use zstm_history::scenarios::ScenarioBuilder;
/// use zstm_history::check_serializable;
///
/// let mut b = ScenarioBuilder::new();
/// let o = b.object();
/// let t = b.begin(0, zstm_core::TxKind::Short);
/// b.read(t, o, 0);
/// b.write(t, o, 1);
/// b.commit(t, None);
/// assert!(check_serializable(&b.build()).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct ScenarioBuilder {
    events: Vec<(u64, TxEvent)>,
    seq: u64,
    kinds: Vec<(TxId, ThreadId, TxKind)>,
}

impl ScenarioBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh object id.
    pub fn object(&mut self) -> ObjId {
        ObjId::fresh()
    }

    fn push(&mut self, tx: TxId, event: TxEventKind) {
        let &(_, thread, kind) = self
            .kinds
            .iter()
            .find(|(id, _, _)| *id == tx)
            .expect("transaction was begun");
        self.events
            .push((self.seq, TxEvent::new(tx, thread, kind, event)));
        self.seq += 1;
    }

    /// Begins a transaction on logical thread `thread`.
    pub fn begin(&mut self, thread: usize, kind: TxKind) -> TxId {
        let tx = TxId::fresh();
        self.kinds.push((tx, ThreadId::new(thread), kind));
        self.push(tx, TxEventKind::Begin);
        tx
    }

    /// Records a read of `(obj, version)`.
    pub fn read(&mut self, tx: TxId, obj: ObjId, version: VersionSeq) {
        self.push(tx, TxEventKind::Read { obj, version });
    }

    /// Records a committed write installing `(obj, version)`.
    pub fn write(&mut self, tx: TxId, obj: ObjId, version: VersionSeq) {
        self.push(tx, TxEventKind::Write { obj, version });
    }

    /// Commits the transaction (optionally in a zone).
    pub fn commit(&mut self, tx: TxId, zone: Option<u64>) {
        self.push(tx, TxEventKind::Commit { zone });
    }

    /// Builds the [`History`].
    pub fn build(self) -> History {
        History::from_events(self.events)
    }
}

/// The paper's Figure 1: `T1: w(o1) w(o2)`, `T2: w(o3) w(o3)`,
/// `TL: r(o1) r(o2) r(o3) w(o4)` — TL reads `o1`, `o2` *before* T1's
/// commit and `o3` *after* T2's, then commits last.
///
/// Serializable as `T2 → TL → T1`, but not linearizable: real time orders
/// T1 before T2.
pub fn figure_1() -> History {
    let mut b = ScenarioBuilder::new();
    let (o1, o2, o3, o4) = (b.object(), b.object(), b.object(), b.object());
    let tl = b.begin(2, TxKind::Long);
    b.read(tl, o1, 0);
    b.read(tl, o2, 0);
    let t1 = b.begin(0, TxKind::Short);
    b.write(t1, o1, 1);
    b.write(t1, o2, 1);
    b.commit(t1, None);
    let t2 = b.begin(1, TxKind::Short);
    b.write(t2, o3, 1);
    b.commit(t2, None);
    b.read(tl, o3, 1);
    b.write(tl, o4, 1);
    b.commit(tl, None);
    b.build()
}

/// The paper's Figure 2: Figure 1 plus `T3: r(o3) w(o2)`, which imposes
/// the order T1 → T3 → T2 while TL imposes T2 → TL → T1.
///
/// Causally serializable (each thread can explain its own view) but not
/// serializable.
pub fn figure_2() -> History {
    let mut b = ScenarioBuilder::new();
    let (o1, o2, o3, o4) = (b.object(), b.object(), b.object(), b.object());
    let tl = b.begin(3, TxKind::Long);
    b.read(tl, o1, 0);
    b.read(tl, o2, 0);
    let t3 = b.begin(2, TxKind::Short);
    b.read(t3, o3, 0);
    let t1 = b.begin(0, TxKind::Short);
    b.write(t1, o1, 1);
    b.write(t1, o2, 1);
    b.commit(t1, None);
    let t2 = b.begin(1, TxKind::Short);
    b.write(t2, o3, 1);
    b.commit(t2, None);
    b.write(t3, o2, 2);
    b.commit(t3, None);
    b.read(tl, o3, 1);
    b.write(tl, o4, 1);
    b.commit(tl, None);
    b.build()
}

/// A lost update: two transactions read version 0 of the same object and
/// both commit increments (versions 1 and 2). Violates serializability
/// *and* causal serializability — no thread can explain both writes.
pub fn lost_update() -> History {
    let mut b = ScenarioBuilder::new();
    let o = b.object();
    let t1 = b.begin(0, TxKind::Short);
    let t2 = b.begin(1, TxKind::Short);
    b.read(t1, o, 0);
    b.read(t2, o, 0);
    b.write(t1, o, 1);
    b.commit(t1, None);
    b.write(t2, o, 2);
    b.commit(t2, None);
    b.build()
}

/// `n` transactions on one thread, each reading the previous version and
/// installing the next. Satisfies every criterion.
pub fn serial_chain(n: usize) -> History {
    let mut b = ScenarioBuilder::new();
    let o = b.object();
    for i in 0..n {
        let t = b.begin(0, TxKind::Short);
        b.read(t, o, i as VersionSeq);
        b.write(t, o, (i + 1) as VersionSeq);
        b.commit(t, None);
    }
    b.build()
}

/// A z-linearizable but not linearizable history, following the paper's
/// Figure 4 discussion: the long transaction `L` (zone 1) must serialize
/// after `T4` (zone 0) and before `T5` (zone 1), yet `T5` commits before
/// `T4` begins in real time.
pub fn zoned_history() -> History {
    let mut b = ScenarioBuilder::new();
    let (o1, o2) = (b.object(), b.object());
    // L reads o1 at version 0 (T5 will overwrite it) and o2 at T4's
    // version.
    let l = b.begin(2, TxKind::Long);
    b.read(l, o1, 0);
    // T5, in L's zone, overwrites o1 and commits while L runs.
    let t5 = b.begin(0, TxKind::Short);
    b.read(t5, o1, 0);
    b.write(t5, o1, 1);
    b.commit(t5, Some(1));
    // T4 begins *after* T5 committed (real time!) but belongs to zone 0:
    // it serializes before L and hence before T5.
    let t4 = b.begin(1, TxKind::Short);
    b.write(t4, o2, 1);
    b.commit(t4, Some(0));
    // L reads T4's write and commits zone 1.
    b.read(l, o2, 1);
    b.commit(l, Some(1));
    b.build()
}

/// A short transaction that "crosses" an active long transaction: it is
/// labelled zone 0 (before the long) yet reads the long transaction's
/// write. Violates z-linearizability.
pub fn zone_crossing() -> History {
    let mut b = ScenarioBuilder::new();
    let o = b.object();
    let l = b.begin(0, TxKind::Long);
    b.write(l, o, 1);
    b.commit(l, Some(1));
    let s = b.begin(1, TxKind::Short);
    b.read(s, o, 1);
    b.commit(s, Some(0));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_have_expected_shapes() {
        assert_eq!(figure_1().committed().count(), 3);
        assert_eq!(figure_2().committed().count(), 4);
        assert_eq!(lost_update().committed().count(), 2);
        assert_eq!(serial_chain(4).committed().count(), 4);
        assert_eq!(zoned_history().committed().count(), 3);
        assert_eq!(zone_crossing().committed().count(), 2);
    }

    #[test]
    fn scenarios_have_no_dirty_reads() {
        for history in [
            figure_1(),
            figure_2(),
            lost_update(),
            serial_chain(3),
            zoned_history(),
            zone_crossing(),
        ] {
            assert!(history.find_dirty_read().is_none());
        }
    }
}
