use std::collections::{HashMap, HashSet};
use std::fmt;

use zstm_core::{ObjId, TxId, TxKind, VersionSeq};

use crate::{History, TxRecord};

/// A consistency violation found by a checker.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which criterion was violated.
    pub criterion: &'static str,
    /// The committed transactions on the offending cycle.
    pub cycle: Vec<TxId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violated: {} (cycle: {:?})",
            self.criterion, self.message, self.cycle
        )
    }
}

impl std::error::Error for Violation {}

/// Node of the augmented precedence graph: a committed transaction, or a
/// point on one of the real-time chains (chains encode the quadratic
/// real-time relation with linearly many edges).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Node {
    Tx(TxId),
    /// `(lane, seq)` — a timestamp on chain `lane`.
    Time(u64, u64),
}

#[derive(Default)]
struct Graph {
    adj: HashMap<Node, Vec<Node>>,
}

impl Graph {
    fn add_edge(&mut self, from: Node, to: Node) {
        if from == to {
            return;
        }
        self.adj.entry(from).or_default().push(to);
        self.adj.entry(to).or_default();
    }

    /// Adds a chain lane over the given (sorted, deduplicated) seq values.
    fn add_chain(&mut self, lane: u64, mut seqs: Vec<u64>) {
        seqs.sort_unstable();
        seqs.dedup();
        for pair in seqs.windows(2) {
            self.add_edge(Node::Time(lane, pair[0]), Node::Time(lane, pair[1]));
        }
    }

    /// Finds a cycle with an iterative three-color DFS; returns the nodes
    /// on the cycle.
    fn find_cycle(&self) -> Option<Vec<Node>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<Node, Color> = self.adj.keys().map(|&n| (n, Color::White)).collect();
        let mut parent: HashMap<Node, Node> = HashMap::new();
        for &start in self.adj.keys() {
            if color[&start] != Color::White {
                continue;
            }
            // Stack of (node, next-child-index).
            let mut stack: Vec<(Node, usize)> = vec![(start, 0)];
            color.insert(start, Color::Gray);
            while let Some(&mut (node, ref mut index)) = stack.last_mut() {
                let children = &self.adj[&node];
                if *index < children.len() {
                    let child = children[*index];
                    *index += 1;
                    match color[&child] {
                        Color::White => {
                            color.insert(child, Color::Gray);
                            parent.insert(child, node);
                            stack.push((child, 0));
                        }
                        Color::Gray => {
                            // Found a back edge node → child: reconstruct.
                            let mut cycle = vec![child];
                            let mut current = node;
                            while current != child {
                                cycle.push(current);
                                current = parent[&current];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Returns the transactions on a cycle (time nodes filtered out).
fn cycle_txs(cycle: &[Node]) -> Vec<TxId> {
    cycle
        .iter()
        .filter_map(|n| match n {
            Node::Tx(id) => Some(*id),
            Node::Time(..) => None,
        })
        .collect()
}

/// Adds the MVSG edges of the committed transactions in `history`:
/// `writer(v) → reader(v)` (wr), `writer(v) → writer(v+1)` (ww) and, when
/// `anti_deps_of` allows the reader, `reader(v) → writer(v+1)` (rw).
fn add_mvsg_edges(graph: &mut Graph, history: &History, anti_deps_of: impl Fn(&TxRecord) -> bool) {
    // ww edges along each object's version chain.
    let mut writes_by_obj: HashMap<ObjId, Vec<(VersionSeq, TxId)>> = HashMap::new();
    for record in history.committed() {
        graph.adj.entry(Node::Tx(record.id)).or_default();
        for &(obj, version) in &record.writes {
            writes_by_obj
                .entry(obj)
                .or_default()
                .push((version, record.id));
        }
    }
    for versions in writes_by_obj.values_mut() {
        versions.sort_unstable();
        for pair in versions.windows(2) {
            if pair[1].0 == pair[0].0 + 1 {
                graph.add_edge(Node::Tx(pair[0].1), Node::Tx(pair[1].1));
            }
        }
    }
    // wr and rw edges from reads.
    for record in history.committed() {
        for &(obj, version) in &record.reads {
            // Skip reads of the transaction's own tentative write: either
            // the recorded version is the one this transaction installed,
            // or it is a read-own-write placeholder (version >= 1 with no
            // committed writer, on an object this transaction wrote).
            // Reads of the initial version 0 are always real reads.
            let own_write = history.writer_of(obj, version) == Some(record.id)
                || (version > 0
                    && history.writer_of(obj, version).is_none()
                    && record.writes.iter().any(|&(o, _)| o == obj));
            if own_write {
                continue;
            }
            if let Some(writer) = history.writer_of(obj, version) {
                if writer != record.id {
                    graph.add_edge(Node::Tx(writer), Node::Tx(record.id));
                }
            }
            if anti_deps_of(record) {
                if let Some(successor) = history.writer_of(obj, version + 1) {
                    if successor != record.id {
                        graph.add_edge(Node::Tx(record.id), Node::Tx(successor));
                    }
                }
            }
        }
    }
}

/// Adds real-time edges among the given transactions through chain `lane`:
/// a transaction that committed before another began precedes it.
fn add_real_time_edges<'a>(graph: &mut Graph, lane: u64, txs: impl Iterator<Item = &'a TxRecord>) {
    let mut seqs = Vec::new();
    for record in txs {
        let commit_seq = record.commit_seq.expect("committed transactions only");
        graph.add_edge(Node::Tx(record.id), Node::Time(lane, commit_seq));
        graph.add_edge(Node::Time(lane, record.begin_seq), Node::Tx(record.id));
        seqs.push(record.begin_seq);
        seqs.push(commit_seq);
    }
    graph.add_chain(lane, seqs);
}

/// Checks that the committed transactions are **serializable**: the
/// multiversion serialization graph over the physically installed version
/// order is acyclic.
///
/// # Errors
///
/// Returns the offending cycle as a [`Violation`].
pub fn check_serializable(history: &History) -> Result<(), Violation> {
    let mut graph = Graph::default();
    add_mvsg_edges(&mut graph, history, |_| true);
    match graph.find_cycle() {
        None => Ok(()),
        Some(cycle) => Err(Violation {
            criterion: "serializability",
            cycle: cycle_txs(&cycle),
            message: "multiversion serialization graph has a cycle".into(),
        }),
    }
}

/// Checks that the committed transactions are **linearizable** (strictly
/// serializable): serializable by [`check_serializable`]'s graph *plus*
/// real-time edges — a transaction that committed before another began
/// must serialize before it.
///
/// # Errors
///
/// Returns the offending cycle as a [`Violation`].
pub fn check_linearizable(history: &History) -> Result<(), Violation> {
    let mut graph = Graph::default();
    add_mvsg_edges(&mut graph, history, |_| true);
    add_real_time_edges(&mut graph, 0, history.committed());
    match graph.find_cycle() {
        None => Ok(()),
        Some(cycle) => Err(Violation {
            criterion: "linearizability",
            cycle: cycle_txs(&cycle),
            message: "no serialization respects the real-time order".into(),
        }),
    }
}

/// Checks **causal serializability** (Section 4.1 of the paper, after
/// Raynal et al.): every thread must be able to explain the execution with
/// a serial order that respects causality (wr/ww edges), its own program
/// order and its *own* anti-dependencies; different threads may use
/// different orders. Writers of the same object are ordered identically
/// everywhere by construction (the single-writer rule fixes the version
/// order).
///
/// # Errors
///
/// Returns the first thread-view cycle as a [`Violation`].
pub fn check_causal_serializable(history: &History) -> Result<(), Violation> {
    let threads: HashSet<_> = history.committed().map(|t| t.thread).collect();
    for thread in threads {
        let mut graph = Graph::default();
        add_mvsg_edges(&mut graph, history, |record| record.thread == thread);
        // Program order of this thread's transactions (chain by begin).
        let lane = 1 + thread.slot() as u64;
        let mut seqs = Vec::new();
        for record in history.committed().filter(|t| t.thread == thread) {
            let commit_seq = record.commit_seq.expect("committed");
            graph.add_edge(Node::Tx(record.id), Node::Time(lane, commit_seq));
            graph.add_edge(Node::Time(lane, record.begin_seq), Node::Tx(record.id));
            seqs.push(record.begin_seq);
            seqs.push(commit_seq);
        }
        graph.add_chain(lane, seqs);
        if let Some(cycle) = graph.find_cycle() {
            return Err(Violation {
                criterion: "causal serializability",
                cycle: cycle_txs(&cycle),
                message: format!("thread {thread:?} cannot explain the execution"),
            });
        }
    }
    Ok(())
}

/// Checks **z-linearizability** (Section 5 of the paper):
///
/// 1. the set of long transactions is linearizable (zone order must agree
///    with real time and with the serialization),
/// 2. short transactions within one zone are linearizable among themselves,
/// 3. the set of all transactions is serializable,
/// 4. the serialization respects each thread's program order.
///
/// Requires a history whose commits carry zone numbers (Z-STM). Long
/// transactions anchor the zones: shorts with zone `z` serialize after the
/// long transaction that opened zone `z` and before the next long
/// transaction.
///
/// # Errors
///
/// Returns the offending cycle as a [`Violation`].
pub fn check_z_linearizable(history: &History) -> Result<(), Violation> {
    // Zone discipline: no committed transaction may observe a version
    // written by a long transaction from a *later* zone than its own label
    // (the crossing rules of Algorithm 3 / the passed check of Algorithm 2
    // would have relabelled or aborted it). Note the label is only an
    // upper bound on what the transaction observed — a zone-z transaction
    // with no conflicting accesses may legitimately *serialize* on either
    // side of the zone-z long transaction, so no label-based ordering
    // edges are added beyond this read check and the MVSG.
    let long_zone: HashMap<TxId, u64> = history
        .committed()
        .filter(|t| t.kind == TxKind::Long)
        .map(|t| (t.id, t.zone.unwrap_or(0)))
        .collect();
    for record in history.committed() {
        let label = record.zone.unwrap_or(0);
        for &(obj, version) in &record.reads {
            if let Some(writer) = history.writer_of(obj, version) {
                if let Some(&writer_zone) = long_zone.get(&writer) {
                    if writer_zone > label {
                        return Err(Violation {
                            criterion: "z-linearizability",
                            cycle: vec![record.id, writer],
                            message: format!(
                                "zone-{label} transaction read a version written \
                                 by the zone-{writer_zone} long transaction"
                            ),
                        });
                    }
                }
            }
        }
    }

    let mut graph = Graph::default();
    // (3) serializability base.
    add_mvsg_edges(&mut graph, history, |_| true);

    // Long transactions, ordered by zone number.
    let mut longs: Vec<&TxRecord> = history
        .committed()
        .filter(|t| t.kind == TxKind::Long)
        .collect();
    longs.sort_by_key(|t| t.zone.unwrap_or(0));
    // (1) zone order + real time among longs.
    for pair in longs.windows(2) {
        graph.add_edge(Node::Tx(pair[0].id), Node::Tx(pair[1].id));
    }
    add_real_time_edges(&mut graph, 1, longs.iter().copied());

    // (2) real time among the short transactions sharing a zone label.
    // One lane over *all* shorts would be unsound: shorts from different
    // zones may be real-time-inverted through a long transaction (the
    // paper's Figure 4 point, encoded in the `zoned_history` scenario).
    // Within one label it is sound: a same-label pair cannot be split by
    // its own long transaction, because reading the pre-long state of an
    // object after the long committed is impossible under LSA.
    let mut shorts_by_zone: HashMap<u64, Vec<&TxRecord>> = HashMap::new();
    for record in history.committed().filter(|t| t.kind == TxKind::Short) {
        shorts_by_zone
            .entry(record.zone.unwrap_or(0))
            .or_default()
            .push(record);
    }
    for (&zone, shorts) in &shorts_by_zone {
        add_real_time_edges(&mut graph, 100 + zone, shorts.iter().copied());
    }

    // (4) per-thread program order.
    let threads: HashSet<_> = history.committed().map(|t| t.thread).collect();
    for thread in threads {
        let lane = 1_000_000 + thread.slot() as u64;
        let mut seqs = Vec::new();
        for record in history.committed().filter(|t| t.thread == thread) {
            let commit_seq = record.commit_seq.expect("committed");
            graph.add_edge(Node::Tx(record.id), Node::Time(lane, commit_seq));
            graph.add_edge(Node::Time(lane, record.begin_seq), Node::Tx(record.id));
            seqs.push(record.begin_seq);
            seqs.push(commit_seq);
        }
        graph.add_chain(lane, seqs);
    }

    match graph.find_cycle() {
        None => Ok(()),
        Some(cycle) => Err(Violation {
            criterion: "z-linearizability",
            cycle: cycle_txs(&cycle),
            message: "zone-consistent serialization does not exist".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn empty_history_satisfies_everything() {
        let history = History::default();
        assert!(check_serializable(&history).is_ok());
        assert!(check_linearizable(&history).is_ok());
        assert!(check_causal_serializable(&history).is_ok());
        assert!(check_z_linearizable(&history).is_ok());
    }

    #[test]
    fn figure_1_is_serializable_but_not_linearizable() {
        let history = scenarios::figure_1();
        assert!(check_serializable(&history).is_ok());
        assert!(check_causal_serializable(&history).is_ok());
        let violation = check_linearizable(&history).expect_err("TL breaks real time");
        assert_eq!(violation.criterion, "linearizability");
        assert!(!violation.cycle.is_empty());
    }

    #[test]
    fn figure_2_is_causally_serializable_but_not_serializable() {
        let history = scenarios::figure_2();
        let violation = check_serializable(&history).expect_err("T3 and TL conflict");
        assert_eq!(violation.criterion, "serializability");
        assert!(check_causal_serializable(&history).is_ok());
    }

    #[test]
    fn lost_update_violates_causal_serializability_too() {
        let history = scenarios::lost_update();
        assert!(check_serializable(&history).is_err());
        assert!(
            check_causal_serializable(&history).is_err(),
            "both increments read version 0 and overwrote each other; even a \
             single thread's view cannot explain it"
        );
    }

    #[test]
    fn serial_history_satisfies_everything() {
        let history = scenarios::serial_chain(5);
        assert!(check_serializable(&history).is_ok());
        assert!(check_linearizable(&history).is_ok());
        assert!(check_causal_serializable(&history).is_ok());
        assert!(check_z_linearizable(&history).is_ok());
    }

    #[test]
    fn zone_history_is_z_linearizable_but_not_linearizable() {
        let history = scenarios::zoned_history();
        assert!(check_serializable(&history).is_ok());
        assert!(check_z_linearizable(&history).is_ok());
        assert!(
            check_linearizable(&history).is_err(),
            "a short transaction violates real time while the long runs"
        );
    }

    #[test]
    fn crossing_short_violates_z_linearizability() {
        let history = scenarios::zone_crossing();
        let violation = check_z_linearizable(&history).expect_err("crossing short");
        assert_eq!(violation.criterion, "z-linearizability");
    }

    #[test]
    fn zone_discipline_is_checked_directly() {
        use crate::scenarios::ScenarioBuilder;
        use zstm_core::TxKind;
        // A short transaction labelled zone 0 reads a version written by
        // the zone-2 long transaction: forbidden regardless of graph
        // cycles.
        let mut b = ScenarioBuilder::new();
        let o = b.object();
        let long = b.begin(0, TxKind::Long);
        b.write(long, o, 1);
        b.commit(long, Some(2));
        let short = b.begin(1, TxKind::Short);
        b.read(short, o, 1);
        b.commit(short, Some(0));
        let violation = check_z_linearizable(&b.build()).expect_err("discipline");
        assert!(violation.message.contains("zone-0"));
        assert!(violation.message.contains("zone-2"));
        // The same read with a correct label (>= 2) passes.
        let mut b = ScenarioBuilder::new();
        let o = b.object();
        let long = b.begin(0, TxKind::Long);
        b.write(long, o, 1);
        b.commit(long, Some(2));
        let short = b.begin(1, TxKind::Short);
        b.read(short, o, 1);
        b.commit(short, Some(2));
        assert!(check_z_linearizable(&b.build()).is_ok());
    }

    #[test]
    fn violation_display_mentions_criterion() {
        let history = scenarios::figure_2();
        let violation = check_serializable(&history).expect_err("cycle");
        let text = violation.to_string();
        assert!(text.contains("serializability"));
    }
}
