use std::sync::atomic::{AtomicU64, Ordering};

use zstm_core::{EventSink, TxEvent};
use zstm_util::sync::Mutex;

use crate::History;

/// An [`EventSink`] that captures the event stream for offline checking.
///
/// Events are stamped with a global sequence number on arrival; because
/// STMs emit `Begin` before a transaction takes effect and `Commit` after
/// its commit point, `seq(commit A) < seq(begin B)` soundly implies that A
/// precedes B in real time (see `zstm_core::events`).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use zstm_history::Recorder;
///
/// let recorder = Arc::new(Recorder::new());
/// assert!(recorder.history().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    seq: AtomicU64,
    events: Mutex<Vec<(u64, TxEvent)>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Returns `true` if no events have been captured.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Builds a [`History`] from the events captured so far.
    pub fn history(&self) -> History {
        let events = self.events.lock();
        History::from_events(events.iter().cloned())
    }

    /// Drops all captured events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl EventSink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TxEvent) {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel);
        self.events.lock().push((seq, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstm_core::{ThreadId, TxEventKind, TxId, TxKind};

    #[test]
    fn records_in_order() {
        let recorder = Recorder::new();
        let tx = TxId::fresh();
        recorder.record(TxEvent::new(
            tx,
            ThreadId::new(0),
            TxKind::Short,
            TxEventKind::Begin,
        ));
        recorder.record(TxEvent::new(
            tx,
            ThreadId::new(0),
            TxKind::Short,
            TxEventKind::Commit { zone: None },
        ));
        assert_eq!(recorder.len(), 2);
        let history = recorder.history();
        let record = history.get(tx).expect("recorded");
        assert!(record.committed());
        recorder.clear();
        assert!(recorder.is_empty());
    }
}
