//! Transactional history recording and consistency checking.
//!
//! Every STM in this workspace reports its events to an
//! [`EventSink`](zstm_core::EventSink); the [`Recorder`] here captures them
//! into a [`History`], and the checkers verify — on real executions — the
//! exact guarantee each STM claims:
//!
//! | STM | guarantee | checker |
//! |-----|-----------|---------|
//! | LSA-STM, TL2 | linearizability | [`check_linearizable`] |
//! | CS-STM | causal serializability | [`check_causal_serializable`] |
//! | S-STM | serializability | [`check_serializable`] |
//! | Z-STM | z-linearizability | [`check_z_linearizable`] |
//!
//! The checkers are built on the multiversion serialization graph (MVSG)
//! over committed transactions: for every object, version `v+1` overwrites
//! version `v`, giving
//!
//! * **wr** edges `writer(v) → reader(v)`,
//! * **ww** edges `writer(v) → writer(v+1)`,
//! * **rw** anti-dependency edges `reader(v) → writer(v+1)`.
//!
//! Acyclicity of the MVSG certifies serializability for the given version
//! order (which our STMs fix physically, so the check is exact, not merely
//! sufficient). The stronger criteria add more edges:
//!
//! * linearizability adds *real-time* edges (`A` committed before `B`
//!   began ⇒ `A → B`);
//! * causal serializability instead checks one graph **per thread**, with
//!   anti-dependencies visible only to the thread that issued the reads —
//!   each thread must be able to explain the execution, but different
//!   threads may explain it differently (Section 4.1 of the paper);
//! * z-linearizability (Section 5) adds zone-order edges between long
//!   transactions, long↔short ordering by zone, real-time edges within
//!   each zone and among long transactions, and per-thread program order.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use zstm_history::{check_serializable, Recorder};
//!
//! let recorder = Arc::new(Recorder::new());
//! // ... configure an STM with `config.event_sink(recorder.clone())`,
//! // run transactions ...
//! let history = recorder.history();
//! assert!(check_serializable(&history).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkers;
mod history;
mod recorder;
pub mod scenarios;

pub use checkers::{
    check_causal_serializable, check_linearizable, check_serializable, check_z_linearizable,
    Violation,
};
pub use history::{History, TxRecord};
pub use recorder::Recorder;
