//! Minimal JSON writer/parser for figure series.
//!
//! The bench-smoke CI gate needs machine-readable series: `repro_figures`
//! writes each figure as one JSON document and `check_baselines` reads the
//! fresh run plus the committed `baselines/` copies back. The build
//! environment has no serde, so this module hand-rolls the tiny subset the
//! schema needs:
//!
//! ```json
//! {
//!   "name": "fig7_totals",
//!   "series": [
//!     { "label": "LSA-STM", "points": [[1, 123.5], [2, 110.0]] }
//!   ]
//! }
//! ```

use std::fmt::Write as _;

use zstm_workload::Series;

/// One figure: a name and its series, the unit stored per JSON file.
#[derive(Clone, Debug, PartialEq)]
pub struct Figure {
    /// File-stem-style figure name (e.g. `fig7_totals`).
    pub name: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Looks up a series by its legend label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

fn escape(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a figure as a JSON document (stable field order, one series per
/// line — diff-friendly for the committed baselines).
pub fn to_json(figure: &Figure) -> String {
    let mut out = String::from("{\n  \"name\": \"");
    escape(&mut out, &figure.name);
    out.push_str("\",\n  \"series\": [\n");
    for (i, series) in figure.series.iter().enumerate() {
        out.push_str("    { \"label\": \"");
        escape(&mut out, &series.label);
        out.push_str("\", \"points\": [");
        for (j, &(x, y)) in series.points.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{x}, {y}]");
        }
        out.push_str("] }");
        if i + 1 < figure.series.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("JSON parse error at byte {}: {what}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(&format!("expected '{}'", byte as char))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return self.fail("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.expect(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return self.fail("expected ',' or '}'"),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.fail("expected a value"),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.fail("bad \\u escape"),
                            }
                        }
                        _ => return self.fail("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok());
                    match chunk {
                        Some(c) => {
                            out.push_str(c);
                            self.pos += len;
                        }
                        None => return self.fail("bad UTF-8"),
                    }
                }
                None => return self.fail("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("JSON parse error at byte {start}: bad number"))
    }
}

/// Parses a figure document produced by [`to_json`].
///
/// # Errors
///
/// Returns a human-readable message when the text is not valid JSON or
/// does not follow the figure schema.
pub fn from_json(text: &str) -> Result<Figure, String> {
    let mut parser = Parser::new(text);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.fail("trailing garbage");
    }
    let Value::Obj(fields) = root else {
        return Err("figure document must be a JSON object".into());
    };
    let field =
        |key: &str| -> Option<&Value> { fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) };
    let Some(Value::Str(name)) = field("name") else {
        return Err("missing string field \"name\"".into());
    };
    let Some(Value::Arr(raw_series)) = field("series") else {
        return Err("missing array field \"series\"".into());
    };
    let mut series = Vec::with_capacity(raw_series.len());
    for entry in raw_series {
        let Value::Obj(entry) = entry else {
            return Err("series entries must be objects".into());
        };
        let get =
            |key: &str| -> Option<&Value> { entry.iter().find(|(k, _)| k == key).map(|(_, v)| v) };
        let Some(Value::Str(label)) = get("label") else {
            return Err("series entry missing string \"label\"".into());
        };
        let Some(Value::Arr(raw_points)) = get("points") else {
            return Err("series entry missing array \"points\"".into());
        };
        let mut s = Series::new(label.clone());
        for point in raw_points {
            match point {
                Value::Arr(xy) => match (xy.first(), xy.get(1), xy.len()) {
                    (Some(Value::Num(x)), Some(Value::Num(y)), 2) => s.push(*x, *y),
                    _ => return Err("points must be [x, y] number pairs".into()),
                },
                _ => return Err("points must be [x, y] number pairs".into()),
            }
        }
        series.push(s);
    }
    Ok(Figure {
        name: name.clone(),
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut a = Series::new("LSA-STM (no readsets)");
        a.push(1.0, 100.5);
        a.push(32.0, 12.25);
        let mut b = Series::new("Z-STM");
        b.push(1.0, 90.0);
        let figure = Figure {
            name: "fig6_totals".into(),
            series: vec![a, b],
        };
        let text = to_json(&figure);
        let parsed = from_json(&text).expect("round trip parses");
        assert_eq!(parsed, figure);
    }

    #[test]
    fn escapes_round_trip() {
        let mut s = Series::new("weird \"label\" \\ with\ttabs");
        s.push(-1.5, 2e9);
        let figure = Figure {
            name: "x".into(),
            series: vec![s],
        };
        let parsed = from_json(&to_json(&figure)).expect("parses");
        assert_eq!(parsed, figure);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_json("").is_err());
        assert!(from_json("[1, 2]").is_err());
        assert!(from_json("{\"name\": \"x\"}").is_err());
        assert!(from_json("{\"name\": \"x\", \"series\": []} trailing").is_err());
    }

    #[test]
    fn lookup_by_label() {
        let figure = Figure {
            name: "f".into(),
            series: vec![Series::new("a"), Series::new("b")],
        };
        assert!(figure.series("b").is_some());
        assert!(figure.series("c").is_none());
    }
}
