//! The bench-baseline regression gate.
//!
//! ```text
//! check-baselines [--fresh DIR] [--baselines DIR]
//! ```
//!
//! Reads the JSON series a fresh `repro_figures` run wrote under `--fresh`
//! (default `target/figures`) plus the committed reference series under
//! `--baselines` (default `baselines/`), and asserts that the **relative
//! shapes** still hold. Absolute throughput is machine-dependent and never
//! compared; each rule checks a ratio between two series of one figure at
//! the highest measured thread count, with a floor derived from the
//! committed baseline's ratio so a genuine regression fails while run-to-
//! run noise passes:
//!
//! * `clock_contention` — `ShardedClock` must beat `ScalarClock` (the
//!   sharded time base exists to win under contention);
//! * `fig7_totals` — Z-STM must sustain update Compute-Totals where LSA
//!   degrades (the paper's headline separation);
//! * `map` — LSA over the sharded clock must not regress against LSA over
//!   the scalar clock on the read-dominated map;
//! * `queue` — parked blocking retries (the API layer's `tx.retry()`
//!   notifier protocol) must not regress against the spin-retry shape on
//!   the bounded producer/consumer queue;
//! * `queue_async` — waker-suspended async retries (tasks multiplexed
//!   over fewer OS threads than tasks) must not regress against the
//!   busy-re-polling spin shape on the same ring;
//! * `read_hotspot` — the zero-mutex read fast path must beat the locked
//!   (fast-paths-disabled) shape on the single-hot-variable stress, for
//!   both LSA (the `ArcCell` publication path) and S-STM (the lock-free
//!   visible-read path);
//! * `certify` — the online SSI certifier serializes every begin, read
//!   and commit through one global mutex, so native CS-STM must out-run
//!   its certified wrapper; the rule bounds how *cheap* certification is
//!   allowed to look (a collapsing ratio means the native engine — not
//!   the certifier — regressed);
//! * `server` — two rules on the TCP front end's RPS figure: the
//!   fault-free link must out-run the chaos-delayed one (a per-read
//!   delay is injected, so parity means the delay is not being paid —
//!   i.e. the measured path is broken), and two pool workers must not
//!   regress against one on the transfer workload.
//!
//! A second family of rules gates whole-figure **shapes** rather than
//! series ratios (applied to the fresh run *and* to the committed
//! baseline, so a hand-edited reference fails too):
//!
//! * `overload` — the tight-limits overload sweep must show admission
//!   control working: the shed rate is monotone non-decreasing in
//!   offered load (small tolerance for run-to-run noise) and strictly
//!   positive at the top offered load, while goodput never collapses
//!   below a fixed fraction of its own peak — flat goodput under 10×
//!   load is the whole point of load shedding;
//! * `collections` — the `TMap` conflict-granularity sweep must show
//!   per-bucket conflict detection working: at a fixed key range, the
//!   fine-grained bucket count must not collapse against one coarse
//!   bucket on an update-heavy mix (disjoint keys in distinct buckets
//!   never conflict, so losing to a single serialization point means
//!   the per-bucket `TVar` layout stopped paying for itself).
//!
//! Exit status 0 when every rule passes, 1 otherwise — wire it after a
//! short `repro_figures fig7 / map / collections / clocks / read-hotspot /
//! certify / server / overload` run in CI (every gated figure's fresh
//! `.json` must exist under `--fresh`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use zstm_bench::json::{from_json, Figure};

/// One relative-shape assertion: `numerator / denominator` at the highest
/// common thread count of figure `file` must stay above a floor derived
/// from the committed baseline's ratio.
struct Rule {
    /// Figure file stem (`<file>.json` in both directories).
    file: &'static str,
    numerator: &'static str,
    denominator: &'static str,
    /// What the rule enforces, for the report.
    claim: &'static str,
    /// Floor for the fresh ratio given the baseline ratio.
    floor: fn(f64) -> f64,
}

/// The shared floor policy for "the optimization must win" rules: the
/// win is a contention effect, so a hard `>= 1.0` floor only applies on
/// machines with at least `min_cores` hardware threads (while always
/// keeping half of the committed baseline's headroom); smaller boxes —
/// the single-core paper-repro container, but also small shared CI
/// runners, where the win is too noise-prone to hard-gate — only
/// enforce the baseline-relative shape.
fn contention_gated_floor(baseline: f64, min_cores: usize) -> f64 {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= min_cores {
        (baseline * 0.5).max(1.0)
    } else {
        baseline * 0.5
    }
}

const RULES: &[Rule] = &[
    Rule {
        file: "clock_contention",
        numerator: "ShardedClock",
        denominator: "ScalarClock",
        claim: "sharded clock beats the scalar fetch-add clock at the top thread count",
        // The sharded clock's win trades a couple of extra uncontended
        // atomics per stamp for keeping the shared line read-mostly; the
        // hard floor needs >= 8 hardware threads (2-4-vCPU runners are
        // too noise-prone for it).
        floor: |baseline| contention_gated_floor(baseline, 8),
    },
    Rule {
        file: "fig7_totals",
        numerator: "Z-STM",
        denominator: "LSA-STM",
        claim: "Z-STM sustains update Compute-Totals vs LSA (Figure 7 separation)",
        floor: |baseline| (baseline * 0.25).max(1.0),
    },
    Rule {
        file: "read_hotspot",
        numerator: "LSA-STM",
        denominator: "LSA-STM (locked)",
        claim: "lock-free ArcCell publication beats the mutex read path on a hot variable",
        // PR 2 convention: hard "fast >= locked" floor from 4 hardware
        // threads up (mutex convoying already shows there).
        floor: |baseline| contention_gated_floor(baseline, 4),
    },
    Rule {
        file: "read_hotspot",
        numerator: "S-STM",
        denominator: "S-STM (locked)",
        claim: "lock-free visible reads beat the per-read object mutex on a hot variable",
        floor: |baseline| contention_gated_floor(baseline, 4),
    },
    Rule {
        file: "queue",
        numerator: "LSA-STM",
        denominator: "LSA-STM (spin)",
        claim: "parked blocking retries do not regress against spinning ones on the bounded queue",
        // Non-regression rule (same policy as `map`): when producers and
        // consumers are balanced, blocking is rare and the two shapes are
        // within noise of each other; on saturated boxes parking wins
        // outright (the spinner burns cores the workers need). The 0.8 cap
        // keeps the floor below parity so noise passes, while a parked
        // queue that deadlocks or thrashes (ratio collapsing) fails.
        floor: |baseline| (baseline * 0.7).min(0.8),
    },
    Rule {
        file: "queue_async",
        numerator: "LSA-STM (async)",
        denominator: "LSA-STM (async spin)",
        claim: "waker-suspended async retries do not regress against busy-re-polling ones \
                on the bounded queue with tasks > workers",
        // Same non-regression policy as `queue`: when pushes and pops are
        // balanced the two shapes tie within noise; when workers are
        // scarce (always, in this sweep: 4 tasks per worker) a spinning
        // task steals polls from the tasks that could make progress, so
        // suspension wins — and a suspension path that deadlocks or
        // thrashes collapses the ratio and fails.
        floor: |baseline| (baseline * 0.7).min(0.8),
    },
    Rule {
        file: "certify",
        numerator: "CS-STM",
        denominator: "CS-STM (certified)",
        claim: "native CS-STM out-runs its globally-serialized certified wrapper",
        // The certifier's single cert mutex caps the certified engine at
        // roughly single-threaded throughput, so the native/certified
        // ratio is >= 1 on any machine and grows with cores. The hard 1.0
        // floor holds everywhere; the baseline factor catches a native
        // CS-STM throughput collapse hiding behind a still-true ">= 1".
        floor: |baseline| (baseline * 0.5).max(1.0),
    },
    Rule {
        file: "server",
        numerator: "LSA-STM",
        denominator: "LSA-STM (chaos)",
        claim: "the fault-free link out-runs the chaos link with a per-read delay injected",
        // The chaos series pays a fixed sleep on every server-side read,
        // so the fault-free shape wins on any machine: a hard 1.0 floor
        // holds everywhere, and the baseline factor catches the fault-free
        // path collapsing toward the delayed one.
        floor: |baseline| (baseline * 0.25).max(1.0),
    },
    Rule {
        file: "server",
        numerator: "LSA-STM",
        denominator: "LSA-STM (serial)",
        claim: "two pool workers do not regress against one on the server transfer workload",
        // Non-regression rule (same policy as `map`/`queue`): on small
        // boxes a second worker buys nothing (the link, not the engine, is
        // the bottleneck) and the two shapes tie within noise; a pool that
        // serializes or convoys collapses the ratio and fails.
        floor: |baseline| (baseline * 0.7).min(0.8),
    },
    Rule {
        file: "map",
        numerator: "LSA-STM (sharded)",
        denominator: "LSA-STM (scalar)",
        claim: "sharded time base does not regress the read-dominated map on LSA",
        // Non-regression rule: the sharded clock must stay within noise of
        // the scalar clock even on boxes too small for it to win (the 0.8
        // cap keeps the floor below parity so run-to-run noise passes, and
        // the baseline factor keeps a real 30 %+ regression failing).
        floor: |baseline| (baseline * 0.7).min(0.8),
    },
];

/// One whole-figure shape assertion. Unlike [`Rule`] (a ratio between two
/// series at one x), a shape rule inspects a full figure — every point of
/// every series it cares about — and is applied to the committed baseline
/// as well as the fresh run, so a reference that never had the shape
/// (e.g. hand-edited) fails the gate just like a fresh regression.
struct ShapeRule {
    /// Figure file stem (`<file>.json` in both directories).
    file: &'static str,
    /// What the rule enforces, for the report.
    claim: &'static str,
    /// Returns a one-line verdict on success, the violation on failure.
    check: fn(&Figure) -> Result<String, String>,
}

/// Run-to-run tolerance for the monotone shed-rate rule: one point may
/// sit this far below its predecessor before the shape counts as broken
/// (shed rates are ratios in [0, 1], so this is 10 points of rate).
const SHED_RATE_TOLERANCE: f64 = 0.1;

/// Goodput may wobble under overload but must never collapse: every
/// point of the overload sweep has to stay above this fraction of the
/// figure's own peak goodput. A server without admission control fails
/// this as offered load grows — excess work queues behind the admission
/// slot and drags every response down with it.
const GOODPUT_FLOOR_FRACTION: f64 = 0.2;

fn overload_series<'a>(
    figure: &'a Figure,
    label: &str,
) -> Result<&'a zstm_workload::Series, String> {
    let series = figure
        .series(label)
        .ok_or_else(|| format!("no series '{label}'"))?;
    if series.points.len() < 2 {
        return Err(format!(
            "series '{label}' has {} point(s); the shape rules need a sweep of at least 2",
            series.points.len()
        ));
    }
    Ok(series)
}

fn shed_rate_monotone(figure: &Figure) -> Result<String, String> {
    let shed = overload_series(figure, "shed-rate")?;
    for pair in shed.points.windows(2) {
        let ((x0, y0), (x1, y1)) = (pair[0], pair[1]);
        if y1 < y0 - SHED_RATE_TOLERANCE {
            return Err(format!(
                "shed rate falls from {y0:.3} at x = {x0} to {y1:.3} at x = {x1} \
                 (tolerance {SHED_RATE_TOLERANCE})"
            ));
        }
    }
    let &(first_x, first_y) = shed.points.first().expect("len checked above");
    let &(top_x, top_y) = shed.points.last().expect("len checked above");
    if top_y <= 0.0 {
        return Err(format!(
            "shed rate is {top_y:.3} at the top offered load x = {top_x}; \
             an overloaded server that sheds nothing is queueing instead"
        ));
    }
    Ok(format!(
        "shed rate climbs {first_y:.3} → {top_y:.3} over x = {first_x}..{top_x}"
    ))
}

/// Run-to-run tolerance for the conflict-granularity rule: the
/// finest-grained point may sit this far below the coarsest before the
/// shape counts as broken. Below parity on purpose: on a single-core box
/// fine buckets mostly buy *absence of aborts* rather than raw speed, and
/// the extra buckets cost a little per-transaction hashing — the rule
/// exists to catch fine-grained throughput *collapsing* against the
/// one-bucket map, which would mean per-bucket `TVar`s stopped paying for
/// themselves.
const GRANULARITY_TOLERANCE: f64 = 0.85;

fn collections_granularity(figure: &Figure) -> Result<String, String> {
    if figure.series.is_empty() {
        return Err("figure has no series".to_string());
    }
    let mut verdicts = Vec::new();
    for series in &figure.series {
        if series.points.len() < 2 {
            return Err(format!(
                "series '{}' has {} point(s); the granularity rule needs a bucket sweep",
                series.label,
                series.points.len()
            ));
        }
        // Points are pushed coarse-to-fine (x = bucket count).
        let &(coarse_x, coarse_y) = series.points.first().expect("len checked above");
        let &(fine_x, fine_y) = series.points.last().expect("len checked above");
        let floor = coarse_y * GRANULARITY_TOLERANCE;
        if fine_y < floor {
            return Err(format!(
                "'{}': {fine_y:.1} ops/s at {fine_x} buckets fell below \
                 {floor:.1} ({GRANULARITY_TOLERANCE} × {coarse_y:.1} at \
                 {coarse_x} bucket(s))",
                series.label
            ));
        }
        verdicts.push(format!(
            "{} {:.2}x",
            series.label,
            fine_y / coarse_y.max(f64::MIN_POSITIVE)
        ));
    }
    Ok(format!(
        "fine-grained buckets hold against coarse ({})",
        verdicts.join(", ")
    ))
}

fn goodput_floor(figure: &Figure) -> Result<String, String> {
    let goodput = overload_series(figure, "goodput")?;
    let peak = goodput.points.iter().map(|&(_, y)| y).fold(0.0, f64::max);
    if peak <= 0.0 {
        return Err("goodput never rises above zero".to_string());
    }
    let floor = peak * GOODPUT_FLOOR_FRACTION;
    for &(x, y) in &goodput.points {
        if y < floor {
            return Err(format!(
                "goodput {y:.1} at x = {x} collapsed below {floor:.1} \
                 ({GOODPUT_FLOOR_FRACTION} × peak {peak:.1})"
            ));
        }
    }
    Ok(format!(
        "goodput stays within [{floor:.1}, {peak:.1}] across the sweep \
         (floor = {GOODPUT_FLOOR_FRACTION} × peak)"
    ))
}

const SHAPE_RULES: &[ShapeRule] = &[
    ShapeRule {
        file: "overload",
        claim: "shed rate is monotone non-decreasing in offered load and positive under overload",
        check: shed_rate_monotone,
    },
    ShapeRule {
        file: "overload",
        claim: "goodput stays flat under overload instead of collapsing below its floor",
        check: goodput_floor,
    },
    ShapeRule {
        file: "collections",
        claim: "per-bucket conflict granularity: fine-grained TMap buckets do not collapse \
                against one coarse bucket at an equal key range",
        check: collections_granularity,
    },
];

fn load_figure(dir: &Path, file: &str) -> Result<Figure, String> {
    let path = dir.join(format!("{file}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Ratio `numerator / denominator` at the highest x the two series share.
fn ratio_at_top(figure: &Figure, rule: &Rule) -> Result<(f64, f64), String> {
    let num = figure
        .series(rule.numerator)
        .ok_or_else(|| format!("{}: no series '{}'", figure.name, rule.numerator))?;
    let den = figure
        .series(rule.denominator)
        .ok_or_else(|| format!("{}: no series '{}'", figure.name, rule.denominator))?;
    let top = num
        .points
        .iter()
        .map(|&(x, _)| x)
        .filter(|x| den.points.iter().any(|&(dx, _)| dx == *x))
        .fold(f64::NEG_INFINITY, f64::max);
    if !top.is_finite() {
        return Err(format!(
            "{}: series '{}' and '{}' share no x values",
            figure.name, rule.numerator, rule.denominator
        ));
    }
    let at = |s: &zstm_workload::Series| {
        s.points
            .iter()
            .find(|&&(x, _)| x == top)
            .map(|&(_, y)| y)
            .expect("top x chosen from shared points")
    };
    let (n, d) = (at(num), at(den));
    if d <= 0.0 {
        return Err(format!(
            "{}: denominator series '{}' is zero at x = {top}",
            figure.name, rule.denominator
        ));
    }
    Ok((n / d, top))
}

fn check(rule: &Rule, fresh_dir: &Path, baseline_dir: &Path) -> Result<String, String> {
    let fresh = load_figure(fresh_dir, rule.file)?;
    let baseline = load_figure(baseline_dir, rule.file)?;
    let (fresh_ratio, fresh_x) = ratio_at_top(&fresh, rule)?;
    let (baseline_ratio, baseline_x) = ratio_at_top(&baseline, rule)?;
    let floor = (rule.floor)(baseline_ratio);
    let verdict = format!(
        "{}: {} / {} = {:.3} at x = {} (baseline {:.3} at x = {}, floor {:.3})",
        rule.file,
        rule.numerator,
        rule.denominator,
        fresh_ratio,
        fresh_x,
        baseline_ratio,
        baseline_x,
        floor
    );
    if fresh_ratio >= floor {
        Ok(verdict)
    } else {
        Err(format!("{verdict}\n    CLAIM VIOLATED: {}", rule.claim))
    }
}

fn check_shape(rule: &ShapeRule, fresh_dir: &Path, baseline_dir: &Path) -> Result<String, String> {
    let baseline = load_figure(baseline_dir, rule.file)?;
    (rule.check)(&baseline).map_err(|e| {
        format!(
            "{} (committed baseline): {e}\n    CLAIM VIOLATED: {}",
            rule.file, rule.claim
        )
    })?;
    let fresh = load_figure(fresh_dir, rule.file)?;
    let verdict = (rule.check)(&fresh)
        .map_err(|e| format!("{}: {e}\n    CLAIM VIOLATED: {}", rule.file, rule.claim))?;
    Ok(format!("{}: {verdict}", rule.file))
}

fn main() -> ExitCode {
    let mut fresh_dir = PathBuf::from("target/figures");
    let mut baseline_dir = PathBuf::from("baselines");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fresh" => fresh_dir = PathBuf::from(args.next().expect("--fresh needs a path")),
            "--baselines" => {
                baseline_dir = PathBuf::from(args.next().expect("--baselines needs a path"))
            }
            other => {
                eprintln!("unknown flag: {other} (expected --fresh DIR / --baselines DIR)");
                return ExitCode::from(2);
            }
        }
    }

    println!(
        "check-baselines: fresh = {}, baselines = {}",
        fresh_dir.display(),
        baseline_dir.display()
    );
    let mut failures = 0;
    for rule in RULES {
        match check(rule, &fresh_dir, &baseline_dir) {
            Ok(verdict) => println!("  ok   {verdict}"),
            Err(message) => {
                println!("  FAIL {message}");
                failures += 1;
            }
        }
    }
    for rule in SHAPE_RULES {
        match check_shape(rule, &fresh_dir, &baseline_dir) {
            Ok(verdict) => println!("  ok   {verdict}"),
            Err(message) => {
                println!("  FAIL {message}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!(
            "all {} relative-shape and figure-shape rules hold",
            RULES.len() + SHAPE_RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("{failures} rule(s) violated");
        ExitCode::FAILURE
    }
}
