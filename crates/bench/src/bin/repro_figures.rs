//! Regenerates the paper's figures and the ARCHITECTURE.md ablations.
//!
//! ```text
//! repro-figures [fig6|fig7|map|queue|queue-async|server|overload|clocks|certify|read-hotspot|ablation-r|ablation-overhead|ablation-longfrac|contention|all]
//!               [--duration-ms N] [--threads 1,2,8,16,32] [--out-dir DIR]
//! ```
//!
//! Prints the series as aligned tables (the same rows the paper plots) and
//! writes gnuplot-ready `.dat`, `.csv` and machine-readable `.json` data
//! files under the output directory (default `target/figures/`). The
//! `.json` files are what the CI bench-smoke gate feeds to
//! `check_baselines`.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use zstm_bench::json::{to_json, Figure};
use zstm_bench::{
    ablation_contention, ablation_long_fraction, ablation_overhead, ablation_plausible_r,
    clock_contention, figure6, figure7, figure_certify, figure_collections, figure_map,
    figure_overload, figure_queue, figure_queue_async, figure_server, read_hotspot, BankFigure,
    PAPER_THREADS,
};
use zstm_workload::{print_table, Series};

struct Options {
    command: String,
    duration: Duration,
    threads: Vec<usize>,
    out_dir: PathBuf,
}

fn parse_args() -> Options {
    let mut command = "all".to_string();
    let mut duration = Duration::from_millis(1_000);
    let mut threads: Vec<usize> = PAPER_THREADS.to_vec();
    let mut out_dir = PathBuf::from("target/figures");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--duration-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--duration-ms needs an integer");
                duration = Duration::from_millis(ms);
            }
            "--threads" => {
                let list = args.next().expect("--threads needs a list like 1,2,8");
                threads = list
                    .split(',')
                    .map(|t| t.parse().expect("thread counts are integers"))
                    .collect();
            }
            "--out-dir" => {
                out_dir = PathBuf::from(args.next().expect("--out-dir needs a path"));
            }
            other if !other.starts_with('-') => command = other.to_string(),
            other => panic!("unknown flag: {other}"),
        }
    }
    Options {
        command,
        duration,
        threads,
        out_dir,
    }
}

fn save(options: &Options, name: &str, series: &[Series]) {
    let dir = &options.out_dir;
    fs::create_dir_all(dir).expect("create figure output directory");
    let mut gnuplot = String::new();
    let mut csv = String::from("label,x,y\n");
    for s in series {
        gnuplot.push_str(&s.to_gnuplot());
        gnuplot.push('\n');
        csv.push_str(&s.to_csv());
    }
    fs::write(dir.join(format!("{name}.dat")), gnuplot).expect("write .dat");
    fs::write(dir.join(format!("{name}.csv")), csv).expect("write .csv");
    let figure = Figure {
        name: name.to_string(),
        series: series.to_vec(),
    };
    fs::write(dir.join(format!("{name}.json")), to_json(&figure)).expect("write .json");
    println!(
        "(saved {}/{name}.dat, .csv and .json)",
        dir.to_string_lossy()
    );
}

fn print_bank_figure(
    options: &Options,
    name: &str,
    title_left: &str,
    title_right: &str,
    figure: &BankFigure,
) {
    println!("{}", print_table(title_left, &figure.totals));
    println!("{}", print_table(title_right, &figure.transfers));
    save(options, &format!("{name}_totals"), &figure.totals);
    save(options, &format!("{name}_transfers"), &figure.transfers);
}

fn run_fig6(options: &Options) {
    println!("=== Figure 6: Bank benchmark, read-only Compute-Total ===");
    let figure = figure6(&options.threads, options.duration);
    print_bank_figure(
        options,
        "fig6",
        "Compute-Total transactions (read-only) [Tx/s]",
        "Transfer transactions [Tx/s]",
        &figure,
    );
}

fn run_fig7(options: &Options) {
    println!("=== Figure 7: Bank benchmark, update Compute-Total ===");
    let figure = figure7(&options.threads, options.duration);
    print_bank_figure(
        options,
        "fig7",
        "Compute-Total transactions (update) [Tx/s]",
        "Transfer transactions [Tx/s]",
        &figure,
    );
}

fn run_map(options: &Options) {
    println!("=== Map: read-dominated bucketed map, scalar vs sharded time base ===");
    let series = figure_map(&options.threads, options.duration);
    println!("{}", print_table("committed ops/s", &series));
    save(options, "map", &series);
}

fn run_collections(options: &Options) {
    println!(
        "=== Collections: TMap conflict granularity, update-heavy mix \
         (x = buckets at a fixed key range) ==="
    );
    let series = figure_collections(&options.threads, options.duration);
    println!("{}", print_table("committed ops/s", &series));
    save(options, "collections", &series);
}

fn run_queue(options: &Options) {
    println!("=== Queue: bounded blocking producer/consumer ring, all five engines ===");
    let series = figure_queue(&options.threads, options.duration);
    println!("{}", print_table("delivered items/s", &series));
    save(options, "queue", &series);
}

fn run_queue_async(options: &Options) {
    println!("=== Queue (async): producer/consumer futures multiplexed over fewer OS threads ===");
    let series = figure_queue_async(&options.threads, options.duration);
    println!("{}", print_table("delivered items/s", &series));
    save(options, "queue_async", &series);
}

fn run_server_figure(options: &Options) {
    println!("=== Server: TCP MULTI…EXEC transfers over the wire protocol (x = connections) ===");
    let series = figure_server(&options.threads, options.duration);
    println!("{}", print_table("committed transfers/s (RPS)", &series));
    save(options, "server", &series);
}

fn run_overload_figure(options: &Options) {
    println!(
        "=== Overload: goodput + shed rate vs offered load on a tight server \
         (x = saturating clients) ==="
    );
    let series = figure_overload(&options.threads, options.duration);
    println!(
        "{}",
        print_table("goodput [Tx/s] / shed rate [0..1]", &series)
    );
    save(options, "overload", &series);
}

fn run_read_hotspot(options: &Options) {
    println!("=== Read hotspot: one hot variable, fast vs locked read path ===");
    let series = read_hotspot(&options.threads, options.duration);
    println!("{}", print_table("committed reads/s", &series));
    save(options, "read_hotspot", &series);
}

fn run_certify(options: &Options) {
    println!("=== Certify: online SSI certification cost, native vs certified per engine ===");
    let (throughput, aborts) = figure_certify(&options.threads, options.duration);
    println!("{}", print_table("commits/s", &throughput));
    println!("{}", print_table("abort ratio", &aborts));
    save(options, "certify", &throughput);
    save(options, "certify_aborts", &aborts);
}

fn run_clocks(options: &Options) {
    println!("=== Clocks: commit-stamp throughput, ScalarClock vs ShardedClock ===");
    let series = clock_contention(&options.threads, options.duration);
    println!("{}", print_table("commit stamps/s", &series));
    save(options, "clock_contention", &series);
}

fn run_ablation_r(options: &Options) {
    println!("=== Ablation A: plausible-clock size r (CS-STM, array workload) ===");
    let threads = options
        .threads
        .iter()
        .copied()
        .max()
        .unwrap_or(4)
        .clamp(2, 8);
    let (throughput, aborts) = ablation_plausible_r(threads, options.duration);
    println!(
        "{}",
        print_table("commits/s over r", std::slice::from_ref(&throughput))
    );
    println!(
        "{}",
        print_table("abort ratio over r", std::slice::from_ref(&aborts))
    );
    save(options, "ablation_r", &[throughput, aborts]);
}

fn run_ablation_overhead(options: &Options) {
    println!("=== Ablation B: time-base overhead (array workload) ===");
    let series = ablation_overhead(&options.threads, options.duration);
    println!("{}", print_table("commits/s", &series));
    save(options, "ablation_overhead", &series);
}

fn run_ablation_longfrac(options: &Options) {
    println!("=== Ablation D: Compute-Total share sweep (read-only) ===");
    let threads = options.threads.iter().copied().max().unwrap_or(2).min(8);
    let figure = ablation_long_fraction(threads, options.duration);
    println!(
        "{}",
        print_table("Compute-Total [Tx/s] over long-%", &figure.totals)
    );
    println!(
        "{}",
        print_table("Transfers [Tx/s] over long-%", &figure.transfers)
    );
    save(options, "ablation_longfrac_totals", &figure.totals);
    save(options, "ablation_longfrac_transfers", &figure.transfers);
}

fn run_contention(options: &Options) {
    println!("=== Ablation C: contention managers (high-contention array) ===");
    let threads = options
        .threads
        .iter()
        .copied()
        .max()
        .unwrap_or(4)
        .clamp(2, 8);
    let rows = ablation_contention(threads, options.duration);
    println!("{:>12} {:>14} {:>12}", "policy", "commits/s", "abort ratio");
    for (policy, commits, aborts) in rows {
        println!("{policy:>12} {commits:>14.1} {aborts:>12.3}");
    }
}

fn main() {
    let options = parse_args();
    println!(
        "zstm figure reproduction — {} ms per data point, threads {:?}",
        options.duration.as_millis(),
        options.threads
    );
    println!(
        "(absolute numbers depend on this machine; the paper's claims are \
         about the relative shapes — see ARCHITECTURE.md)\n"
    );
    match options.command.as_str() {
        "fig6" => run_fig6(&options),
        "fig7" => run_fig7(&options),
        "map" => run_map(&options),
        "collections" => run_collections(&options),
        "queue" => run_queue(&options),
        "queue-async" => run_queue_async(&options),
        "server" => run_server_figure(&options),
        "overload" => run_overload_figure(&options),
        "clocks" => run_clocks(&options),
        "certify" => run_certify(&options),
        "read-hotspot" => run_read_hotspot(&options),
        "ablation-r" => run_ablation_r(&options),
        "ablation-overhead" => run_ablation_overhead(&options),
        "ablation-longfrac" => run_ablation_longfrac(&options),
        "contention" => run_contention(&options),
        "all" => {
            run_fig6(&options);
            run_fig7(&options);
            run_map(&options);
            run_collections(&options);
            run_queue(&options);
            run_queue_async(&options);
            run_server_figure(&options);
            run_overload_figure(&options);
            run_clocks(&options);
            run_certify(&options);
            run_read_hotspot(&options);
            run_ablation_r(&options);
            run_ablation_overhead(&options);
            run_ablation_longfrac(&options);
            run_contention(&options);
        }
        other => {
            eprintln!(
                "unknown command '{other}'; expected fig6 | fig7 | map | collections | queue | \
                 queue-async | server | overload | clocks | certify | read-hotspot | ablation-r | \
                 ablation-overhead | ablation-longfrac | contention | all"
            );
            std::process::exit(2);
        }
    }
}
