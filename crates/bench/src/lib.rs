//! Shared sweep logic for the figure-reproduction binary and the criterion
//! benches.
//!
//! Every public function regenerates one figure or ablation described in
//! `ARCHITECTURE.md` and returns the series the paper plots. The caller
//! chooses the measurement duration: the `repro-figures` binary uses
//! seconds per point, the criterion benches use tens of milliseconds to
//! stay fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use zstm_api::{DynStm, Stm};
use zstm_certify::CertifiedFactory;
use zstm_clock::{ScalarClock, ShardedClock, TimeBase};
use zstm_core::{CmPolicy, StmConfig, TmFactory};
use zstm_cs::CsStm;
use zstm_lsa::LsaStm;
use zstm_server::server::ServerConfig;
use zstm_server::socket::ChaosConfig;
use zstm_server::workload::{run_overload, run_server, OverloadConfig, ServerWorkloadConfig};
use zstm_sstm::SStm;
use zstm_tl2::Tl2Stm;
use zstm_workload::{
    run_array, run_bank, run_map, run_queue, run_queue_async, run_read_hotspot, ArrayConfig,
    BankConfig, BankReport, HotspotConfig, LongMode, MapConfig, QueueAsyncConfig, QueueConfig,
    QueueLoad, Series,
};
use zstm_z::ZStm;

/// Thread counts the paper sweeps in Figures 6 and 7.
pub const PAPER_THREADS: [usize; 5] = [1, 2, 8, 16, 32];

/// Output of one bank sweep: the two panels of a paper figure.
#[derive(Clone, Debug)]
pub struct BankFigure {
    /// Compute-Total throughput per system (left panel).
    pub totals: Vec<Series>,
    /// Transfer throughput per system (right panel).
    pub transfers: Vec<Series>,
}

fn bank_config(threads: usize, duration: Duration, mode: LongMode) -> BankConfig {
    let mut config = BankConfig::paper(threads);
    config.duration = duration;
    config.long_mode = mode;
    config
}

fn run_array_point<F: TmFactory>(stm: Arc<F>, config: &ArrayConfig) -> zstm_workload::ArrayReport {
    // `run_array` drives the erased facade (one compiled driver for every
    // engine); only this thin wrapper mentions the factory type.
    let stm: Arc<dyn DynStm> = Arc::new(Stm::from_arc(stm));
    run_array(&stm, config)
}

fn run_bank_point<F: TmFactory>(stm: Arc<F>, config: &BankConfig) -> BankReport {
    // `run_bank` drives the erased facade (one compiled driver for every
    // engine); only this thin wrapper mentions the factory type.
    let stm: Arc<dyn DynStm> = Arc::new(Stm::from_arc(stm));
    let report = run_bank(&stm, config);
    assert!(
        report.conserved,
        "{}: bank invariant violated at {} threads",
        report.stm, config.threads
    );
    report
}

/// One system of the Figure 6/7 sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankSystem {
    /// Plain LSA-STM (read-only transactions maintain read sets).
    Lsa,
    /// "LSA-STM (no readsets)" — the optimized read-only path.
    LsaNoReadsets,
    /// Z-STM.
    Z,
}

impl BankSystem {
    /// Label used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            BankSystem::Lsa => "LSA-STM",
            BankSystem::LsaNoReadsets => "LSA-STM (no readsets)",
            BankSystem::Z => "Z-STM",
        }
    }

    fn run(self, config: &BankConfig) -> BankReport {
        // +1 logical thread for the harness's final audit.
        let stm_config = StmConfig::new(config.threads + 1);
        match self {
            BankSystem::Lsa => run_bank_point(Arc::new(LsaStm::new(stm_config)), config),
            BankSystem::LsaNoReadsets => {
                let mut stm_config = stm_config;
                stm_config.readonly_readsets(false);
                run_bank_point(Arc::new(LsaStm::new(stm_config)), config)
            }
            BankSystem::Z => run_bank_point(Arc::new(ZStm::new(stm_config)), config),
        }
    }
}

fn bank_figure(
    systems: &[BankSystem],
    threads: &[usize],
    duration: Duration,
    mode: LongMode,
) -> BankFigure {
    let mut totals: Vec<Series> = systems.iter().map(|s| Series::new(s.label())).collect();
    let mut transfers: Vec<Series> = systems.iter().map(|s| Series::new(s.label())).collect();
    for &n in threads {
        for (i, system) in systems.iter().enumerate() {
            let report = system.run(&bank_config(n, duration, mode));
            totals[i].push(n as f64, report.totals_per_sec);
            transfers[i].push(n as f64, report.transfers_per_sec);
        }
    }
    BankFigure { totals, transfers }
}

/// **Figure 6**: bank benchmark with *read-only* Compute-Total
/// transactions — LSA-STM, LSA-STM (no readsets) and Z-STM.
pub fn figure6(threads: &[usize], duration: Duration) -> BankFigure {
    bank_figure(
        &[BankSystem::Lsa, BankSystem::LsaNoReadsets, BankSystem::Z],
        threads,
        duration,
        LongMode::ReadOnly,
    )
}

/// **Figure 7**: bank benchmark with *update* Compute-Total transactions —
/// LSA-STM collapses, Z-STM sustains.
pub fn figure7(threads: &[usize], duration: Duration) -> BankFigure {
    bank_figure(
        &[BankSystem::Lsa, BankSystem::Z],
        threads,
        duration,
        LongMode::Update,
    )
}

/// **Ablation A** (Section 4.3): CS-STM over plausible clocks with
/// r ∈ {1, 2, 4, n} entries on the random-array workload. Returns
/// (throughput series, abort-ratio series) over r.
pub fn ablation_plausible_r(threads: usize, duration: Duration) -> (Series, Series) {
    let mut throughput = Series::new("CS-STM commits/s");
    let mut aborts = Series::new("CS-STM abort ratio");
    let mut config = ArrayConfig::new(threads);
    // Contended configuration: false orderings from shared clock entries
    // only become unnecessary aborts when read/write conflicts are common.
    config.objects = 24;
    config.tx_size = 6;
    config.write_pct = 50;
    config.duration = duration;
    let mut rs: Vec<usize> = vec![1, 2, 4];
    if !rs.contains(&threads) {
        rs.push(threads);
    }
    for r in rs {
        if r > threads {
            continue;
        }
        let stm = Arc::new(CsStm::with_plausible_clock(StmConfig::new(threads), r));
        let report = run_array_point(stm, &config);
        throughput.push(r as f64, report.commits_per_sec);
        aborts.push(r as f64, report.abort_ratio());
    }
    (throughput, aborts)
}

/// **Ablation B** (Section 4.4): runtime overhead of vector time — the
/// random-array workload on every STM. Returns one throughput series per
/// system over thread counts.
pub fn ablation_overhead(threads: &[usize], duration: Duration) -> Vec<Series> {
    let mut lsa = Series::new("LSA-STM");
    let mut tl2 = Series::new("TL2");
    let mut cs = Series::new("CS-STM (vector)");
    let mut z = Series::new("Z-STM");
    for &n in threads {
        let mut config = ArrayConfig::new(n);
        config.duration = duration;
        let report = run_array_point(Arc::new(LsaStm::new(StmConfig::new(n))), &config);
        lsa.push(n as f64, report.commits_per_sec);
        let report = run_array_point(Arc::new(Tl2Stm::new(StmConfig::new(n))), &config);
        tl2.push(n as f64, report.commits_per_sec);
        let report = run_array_point(
            Arc::new(CsStm::with_vector_clock(StmConfig::new(n))),
            &config,
        );
        cs.push(n as f64, report.commits_per_sec);
        let report = run_array_point(Arc::new(ZStm::new(StmConfig::new(n))), &config);
        z.push(n as f64, report.commits_per_sec);
    }
    vec![lsa, tl2, cs, z]
}

/// **Ablation C**: contention-manager comparison on a high-contention
/// array workload (LSA-STM). Returns one (policy, commits/s, abort ratio)
/// row per policy.
pub fn ablation_contention(threads: usize, duration: Duration) -> Vec<(&'static str, f64, f64)> {
    let mut rows = Vec::new();
    for policy in CmPolicy::ALL {
        let mut stm_config = StmConfig::new(threads);
        stm_config.cm(policy);
        let stm = Arc::new(LsaStm::new(stm_config));
        let mut config = ArrayConfig::new(threads);
        config.objects = 16; // high contention
        config.write_pct = 80;
        config.duration = duration;
        let report = run_array_point(stm, &config);
        rows.push((
            policy.build().name(),
            report.commits_per_sec,
            report.abort_ratio(),
        ));
    }
    rows
}

/// **Ablation D**: long-transaction frequency sweep — Compute-Total share
/// on the mixed thread from 0 % to 50 %, read-only mode, LSA vs Z.
/// Returns (Compute-Total series, transfer series) per system.
pub fn ablation_long_fraction(threads: usize, duration: Duration) -> BankFigure {
    let mut totals = vec![Series::new("LSA-STM"), Series::new("Z-STM")];
    let mut transfers = vec![Series::new("LSA-STM"), Series::new("Z-STM")];
    for pct in [0u8, 1, 5, 20, 50] {
        for (i, system) in [BankSystem::Lsa, BankSystem::Z].iter().enumerate() {
            let mut config = bank_config(threads, duration, LongMode::ReadOnly);
            config.total_pct = pct;
            let report = system.run(&config);
            totals[i].push(pct as f64, report.totals_per_sec);
            transfers[i].push(pct as f64, report.transfers_per_sec);
        }
    }
    BankFigure { totals, transfers }
}

/// One data point of the clock-contention microbench: `threads` workers
/// hammer [`TimeBase::commit_stamp`] (with a `now` thrown in every batch,
/// the snapshot pattern) for `duration`; returns stamps drawn per second.
pub fn stamp_throughput<B: TimeBase>(clock: Arc<B>, threads: usize, duration: Duration) -> f64 {
    const BATCH: u64 = 64;
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|slot| {
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut ops = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..BATCH {
                        std::hint::black_box(clock.commit_stamp(slot));
                    }
                    std::hint::black_box(clock.now(slot));
                    ops += BATCH;
                }
                ops
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed();
    let total: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("clock worker panicked"))
        .sum();
    total as f64 / elapsed.as_secs_f64()
}

/// **Clock contention**: commit-stamp throughput of the shared-counter
/// [`ScalarClock`] vs the sharded time base over thread counts — the
/// microbench behind the "sharded/striped global clocks" scaling item.
/// Returns one series per clock.
pub fn clock_contention(threads: &[usize], duration: Duration) -> Vec<Series> {
    let mut scalar = Series::new("ScalarClock");
    let mut sharded = Series::new("ShardedClock");
    for &n in threads {
        scalar.push(
            n as f64,
            stamp_throughput(Arc::new(ScalarClock::new()), n, duration),
        );
        sharded.push(
            n as f64,
            stamp_throughput(Arc::new(ShardedClock::new(n)), n, duration),
        );
    }
    vec![scalar, sharded]
}

fn hotspot_point<F: TmFactory>(stm: Arc<F>, config: &HotspotConfig) -> f64 {
    let report = run_read_hotspot(&stm, config);
    assert!(
        report.consistent,
        "{}: hot reads must never tear at {} threads",
        report.stm, config.threads
    );
    report.reads_per_sec
}

/// **Read hotspot**: every thread hammers one hot variable with short
/// read-only transactions (plus a trickle of updates from thread 0) — the
/// pure read-path stress behind the zero-mutex fast-read work. Each STM is
/// measured in its default (fast) shape; the engines with a
/// [`StmConfig::fast_reads`] knob are also measured with the fast paths
/// disabled ("locked"), which is the pre-optimization mutex shape the
/// `check_baselines` gate compares against. LSA and Z additionally run
/// over the sharded time base. Returns one committed-reads/s series per
/// configuration.
pub fn read_hotspot(threads: &[usize], duration: Duration) -> Vec<Series> {
    let mut series: Vec<Series> = [
        "LSA-STM",
        "LSA-STM (locked)",
        "LSA-STM (sharded)",
        "Z-STM",
        "Z-STM (locked)",
        "Z-STM (sharded)",
        "CS-STM",
        "CS-STM (locked)",
        "S-STM",
        "S-STM (locked)",
        "TL2",
    ]
    .into_iter()
    .map(Series::new)
    .collect();
    for &n in threads {
        let mut config = HotspotConfig::new(n);
        config.duration = duration;
        let locked = |n: usize| {
            let mut c = StmConfig::new(n);
            c.fast_reads(false);
            c
        };
        let points = [
            hotspot_point(Arc::new(LsaStm::new(StmConfig::new(n))), &config),
            hotspot_point(Arc::new(LsaStm::new(locked(n))), &config),
            hotspot_point(
                Arc::new(LsaStm::with_clock(StmConfig::new(n), ShardedClock::new(n))),
                &config,
            ),
            hotspot_point(Arc::new(ZStm::new(StmConfig::new(n))), &config),
            hotspot_point(Arc::new(ZStm::new(locked(n))), &config),
            hotspot_point(
                Arc::new(ZStm::with_clock(StmConfig::new(n), ShardedClock::new(n))),
                &config,
            ),
            hotspot_point(
                Arc::new(CsStm::with_vector_clock(StmConfig::new(n))),
                &config,
            ),
            hotspot_point(Arc::new(CsStm::with_vector_clock(locked(n))), &config),
            hotspot_point(
                Arc::new(SStm::with_vector_clock(StmConfig::new(n))),
                &config,
            ),
            hotspot_point(Arc::new(SStm::with_vector_clock(locked(n))), &config),
            hotspot_point(Arc::new(Tl2Stm::new(StmConfig::new(n))), &config),
        ];
        for (s, y) in series.iter_mut().zip(points) {
            s.push(n as f64, y);
        }
    }
    series
}

/// Labels of [`figure_certify`]'s native/certified engine pairs, in
/// order — shared with the `check_baselines` "certify" rule so the gate
/// cannot drift from the sweep.
pub const CERTIFY_LABELS: [&str; 10] = [
    "LSA-STM",
    "LSA-STM (certified)",
    "TL2",
    "TL2 (certified)",
    "CS-STM",
    "CS-STM (certified)",
    "S-STM",
    "S-STM (certified)",
    "Z-STM",
    "Z-STM (certified)",
];

/// **Certification figure**: what the online SSI certifier costs — the
/// random-array workload on every engine, native vs wrapped in
/// [`CertifiedFactory`], at moderate contention (rw conflicts must be
/// plausible for certification aborts to appear at all). Returns
/// (throughput series, abort-ratio series), one pair of entries per
/// engine in [`CERTIFY_LABELS`] order. Native always out-runs certified
/// (the certifier serializes commit processing globally); the gate only
/// bounds *how much* the certified shape may cost relative to the
/// committed baseline.
pub fn figure_certify(threads: &[usize], duration: Duration) -> (Vec<Series>, Vec<Series>) {
    let mut throughput: Vec<Series> = CERTIFY_LABELS.into_iter().map(Series::new).collect();
    let mut aborts: Vec<Series> = CERTIFY_LABELS.into_iter().map(Series::new).collect();
    for &n in threads {
        let mut config = ArrayConfig::new(n);
        config.objects = 24;
        config.tx_size = 4;
        config.write_pct = 50;
        config.duration = duration;
        let reports = [
            run_array_point(Arc::new(LsaStm::new(StmConfig::new(n))), &config),
            run_array_point(
                Arc::new(CertifiedFactory::new(StmConfig::new(n), LsaStm::new)),
                &config,
            ),
            run_array_point(Arc::new(Tl2Stm::new(StmConfig::new(n))), &config),
            run_array_point(
                Arc::new(CertifiedFactory::new(StmConfig::new(n), Tl2Stm::new)),
                &config,
            ),
            run_array_point(
                Arc::new(CsStm::with_vector_clock(StmConfig::new(n))),
                &config,
            ),
            run_array_point(
                Arc::new(CertifiedFactory::new(
                    StmConfig::new(n),
                    CsStm::with_vector_clock,
                )),
                &config,
            ),
            run_array_point(
                Arc::new(SStm::with_vector_clock(StmConfig::new(n))),
                &config,
            ),
            run_array_point(
                Arc::new(CertifiedFactory::new(
                    StmConfig::new(n),
                    SStm::with_vector_clock,
                )),
                &config,
            ),
            run_array_point(Arc::new(ZStm::new(StmConfig::new(n))), &config),
            run_array_point(
                Arc::new(CertifiedFactory::new(StmConfig::new(n), ZStm::new)),
                &config,
            ),
        ];
        for ((t, a), report) in throughput.iter_mut().zip(aborts.iter_mut()).zip(reports) {
            t.push(n as f64, report.commits_per_sec);
            a.push(n as f64, report.abort_ratio());
        }
    }
    (throughput, aborts)
}

/// Figure-legend labels of [`dyn_engines`]'s entries, in order — shared
/// so series built from it cannot drift from the engine list.
pub const DYN_ENGINE_LABELS: [&str; 5] = ["LSA-STM", "TL2", "CS-STM", "S-STM", "Z-STM"];

/// Builds every engine as a type-erased [`DynStm`] handle — the runtime
/// registry behind the queue figure and any driver that selects an STM
/// from a flag instead of a type parameter. Labels are
/// [`DYN_ENGINE_LABELS`], zipped in order.
pub fn dyn_engines(threads: usize) -> Vec<(&'static str, Arc<dyn DynStm>)> {
    let engines: [Arc<dyn DynStm>; 5] = [
        Arc::new(Stm::new(LsaStm::new(StmConfig::new(threads)))),
        Arc::new(Stm::new(Tl2Stm::new(StmConfig::new(threads)))),
        Arc::new(Stm::new(CsStm::with_vector_clock(StmConfig::new(threads)))),
        Arc::new(Stm::new(SStm::with_vector_clock(StmConfig::new(threads)))),
        Arc::new(Stm::new(ZStm::new(StmConfig::new(threads)))),
    ];
    DYN_ENGINE_LABELS.into_iter().zip(engines).collect()
}

fn queue_point(stm: &Arc<dyn DynStm>, config: &QueueConfig) -> f64 {
    let report = run_queue(stm, config);
    assert!(
        report.correct(),
        "{}: queue invariants violated at {} producers",
        report.stm,
        config.producers
    );
    report.ops_per_sec
}

/// **Queue figure**: the bounded blocking producer/consumer queue on all
/// five engines (selected through the erased facade), plus LSA with
/// parking disabled ("LSA-STM (spin)") — the A/B pair behind the
/// `check_baselines` rule that parked retries must not regress against
/// spinning ones. `x = n` means `n` producers and `n` consumers sharing
/// one capacity-64 ring. Returns one delivered-items/s series per
/// configuration.
pub fn figure_queue(threads: &[usize], duration: Duration) -> Vec<Series> {
    // Labels come from the registry's own list so the series (and the
    // check_baselines rule keyed on "LSA-STM") can never drift from the
    // engine order.
    let mut series: Vec<Series> = DYN_ENGINE_LABELS.into_iter().map(Series::new).collect();
    let mut spin = Series::new("LSA-STM (spin)");
    for &n in threads {
        let mut config = QueueConfig::new(n);
        config.load = QueueLoad::Timed(duration);
        for (s, (_, stm)) in series.iter_mut().zip(dyn_engines(config.threads_needed())) {
            s.push(n as f64, queue_point(&stm, &config));
        }
        let spin_stm: Arc<dyn DynStm> = Arc::new(
            Stm::new(LsaStm::new(StmConfig::new(config.threads_needed()))).with_parking(false),
        );
        spin.push(n as f64, queue_point(&spin_stm, &config));
    }
    series.push(spin);
    series
}

fn queue_async_point(stm: &Arc<dyn DynStm>, config: &QueueAsyncConfig) -> f64 {
    let report = run_queue_async(stm, config);
    assert!(
        report.correct(),
        "{}: async queue invariants violated at {} producer tasks",
        report.stm,
        config.producers
    );
    report.ops_per_sec
}

/// **Async-queue figure**: the bounded blocking ring with producers and
/// consumers as *futures* multiplexed over fewer OS threads than tasks
/// (`2n` tasks over `ceil(n / 2)` executor workers; see
/// [`QueueAsyncConfig::new`]). Three series:
///
/// * `LSA-STM (async)` / `Z-STM (async)` — waker-parked suspension (the
///   `Stm::atomically_async` retry protocol);
/// * `LSA-STM (async spin)` — the same tasks with parking disabled, so a
///   blocked transaction busy-re-polls through the executor (the A/B
///   shape behind the `check_baselines` rule: suspension must not regress
///   against spinning, and wins outright whenever workers are scarce);
/// * `LSA-STM (sync)` — the OS-thread-per-worker [`run_queue`] shape at
///   the same pair count, for context (not gated: its thread count scales
///   with `n` while the async sweep holds workers at `ceil(n / 2)`).
pub fn figure_queue_async(threads: &[usize], duration: Duration) -> Vec<Series> {
    let mut lsa_async = Series::new("LSA-STM (async)");
    let mut lsa_spin = Series::new("LSA-STM (async spin)");
    let mut z_async = Series::new("Z-STM (async)");
    let mut lsa_sync = Series::new("LSA-STM (sync)");
    for &n in threads {
        let mut config = QueueAsyncConfig::new(n);
        config.load = QueueLoad::Timed(duration);
        let stm_threads = config.threads_needed();
        let parked: Arc<dyn DynStm> = Arc::new(Stm::new(LsaStm::new(StmConfig::new(stm_threads))));
        lsa_async.push(n as f64, queue_async_point(&parked, &config));
        let spinning: Arc<dyn DynStm> =
            Arc::new(Stm::new(LsaStm::new(StmConfig::new(stm_threads))).with_parking(false));
        lsa_spin.push(n as f64, queue_async_point(&spinning, &config));
        let z: Arc<dyn DynStm> = Arc::new(Stm::new(ZStm::new(StmConfig::new(stm_threads))));
        z_async.push(n as f64, queue_async_point(&z, &config));

        let mut sync_config = QueueConfig::new(n);
        sync_config.load = QueueLoad::Timed(duration);
        let sync_stm: Arc<dyn DynStm> = Arc::new(Stm::new(LsaStm::new(StmConfig::new(
            sync_config.threads_needed(),
        ))));
        lsa_sync.push(n as f64, queue_point(&sync_stm, &sync_config));
    }
    vec![lsa_async, lsa_spin, z_async, lsa_sync]
}

/// Figure-legend labels of [`figure_server`]'s series, in order — shared
/// with the `check_baselines` "server" rules so the gate cannot drift
/// from the sweep.
pub const SERVER_LABELS: [&str; 4] = ["LSA-STM", "LSA-STM (serial)", "Z-STM", "LSA-STM (chaos)"];

fn server_point(config: &ServerWorkloadConfig) -> f64 {
    let report = run_server(config);
    assert!(
        report.conserved,
        "{}: server transfers must conserve at {} connections",
        report.engine, report.connections
    );
    assert_eq!(
        report.waiters_released, config.waiters as u64,
        "{}: every parked waiter must be released",
        report.engine
    );
    report.rps
}

/// **Server figure**: committed `MULTI`…`EXEC` transfers per second over
/// real TCP round trips, swept over client connection counts — the RPS
/// figure of the network front end (`crates/server`, `PROTOCOL.md`).
/// Four series in [`SERVER_LABELS`] order:
///
/// * `LSA-STM` — two pool workers, the reference shape;
/// * `LSA-STM (serial)` — one pool worker: the A/B pair behind the
///   `check_baselines` non-regression rule (two workers must not lose to
///   one);
/// * `Z-STM` — the same sweep engine-swapped through the runtime
///   registry, showing the front end is engine-agnostic;
/// * `LSA-STM (chaos)` — a [`ChaosSocket`](zstm_server::socket::ChaosSocket)
///   read delay injected on every
///   server-side read, the degraded-link series the gate compares the
///   fault-free shape against.
///
/// Every run parks two extra `WAIT` connections for its whole window, so
/// each measured point multiplexes more server-side tasks than pool
/// workers. Each point asserts the transfer conservation invariant.
pub fn figure_server(connections: &[usize], duration: Duration) -> Vec<Series> {
    let mut series: Vec<Series> = SERVER_LABELS.into_iter().map(Series::new).collect();
    for &n in connections {
        let mut base = ServerWorkloadConfig::quick(n);
        base.duration = duration;
        base.waiters = 2;

        let mut lsa = base.clone();
        lsa.server = ServerConfig::new("lsa").with_workers(2);
        let mut serial = base.clone();
        serial.server = ServerConfig::new("lsa").with_workers(1);
        let mut z = base.clone();
        z.server = ServerConfig::new("z").with_workers(2);
        let mut chaos = base.clone();
        let mut link = ChaosConfig::quiet(0xD311 ^ n as u64);
        link.read_delay = Duration::from_micros(500);
        chaos.server = ServerConfig::new("lsa").with_workers(2).with_chaos(link);

        let points = [
            server_point(&lsa),
            server_point(&serial),
            server_point(&z),
            server_point(&chaos),
        ];
        for (s, y) in series.iter_mut().zip(points) {
            s.push(n as f64, y);
        }
    }
    series
}

/// Series labels of [`figure_overload`], in order — shared with the
/// `check_baselines` overload shape rules so the gate cannot drift from
/// the sweep.
pub const OVERLOAD_LABELS: [&str; 2] = ["goodput", "shed-rate"];

/// **Overload figure**: goodput and shed rate versus offered load on a
/// deliberately tight server (one pool worker, one admission slot — see
/// [`OverloadConfig::tight`]). The x axis is closed-loop client
/// connections, each offering transfers back-to-back, so x is offered
/// load in units of "saturating clients". Two series in
/// [`OVERLOAD_LABELS`] order:
///
/// * `goodput` — committed transfers per second. Under admission control
///   this stays roughly flat as offered load grows: excess work is
///   answered with cheap `BUSY` frames instead of queueing behind the
///   one slot and dragging every response down.
/// * `shed-rate` — `(BUSY + TIMEOUT replies) / attempts`, climbing with
///   offered load as a larger share of the excess is turned away.
///
/// Every point asserts the transfer conservation invariant: shed and
/// timed-out transfers must leave no partial effects.
pub fn figure_overload(connections: &[usize], duration: Duration) -> Vec<Series> {
    let mut series: Vec<Series> = OVERLOAD_LABELS.into_iter().map(Series::new).collect();
    for &n in connections {
        let mut config = OverloadConfig::tight(n, 1);
        config.duration = duration;
        let report = run_overload(&config);
        assert!(
            report.conserved,
            "{}: shed transfers must leave no partial effects at {} connections",
            report.engine, n
        );
        series[0].push(n as f64, report.goodput);
        series[1].push(n as f64, report.shed_rate);
    }
    series
}

fn run_map_point<F: TmFactory>(stm: Arc<F>, config: &MapConfig) -> f64 {
    // Like `run_bank_point`: the driver itself runs over the erased
    // facade, so only this wrapper mentions the factory type.
    let stm: Arc<dyn DynStm> = Arc::new(Stm::from_arc(stm));
    let report = run_map(&stm, config);
    assert!(
        report.consistent,
        "{}: map scans must observe consistent snapshots at {} threads",
        report.stm, config.threads
    );
    report.ops_per_sec
}

/// Bucket counts swept by [`figure_collections`], coarse to fine, at the
/// fixed [`COLLECTIONS_KEYS`] key range.
pub const COLLECTIONS_BUCKETS: [usize; 4] = [1, 4, 16, 64];

/// Key range of the conflict-granularity sweep: fixed while the bucket
/// count sweeps, so the x axis is purely buckets-per-key.
pub const COLLECTIONS_KEYS: usize = 256;

/// **Collections figure**: the conflict granularity of the `TMap` — the
/// update-heavy map workload at a fixed key range while the bucket count
/// sweeps from one (every update conflicts with every other) to 64
/// (disjoint keys usually commute). The workload *is* the collections
/// layer: `run_map` drives a `TMap<u64, u64>` through the erased facade,
/// so per-bucket `TVar`s are exactly what the sweep measures. Returns one
/// throughput-vs-buckets series per engine (LSA and Z). Scans are
/// disabled: a whole-map scan reads every bucket and would flatten the
/// granularity signal this figure exists to show.
pub fn figure_collections(threads: &[usize], duration: Duration) -> Vec<Series> {
    // Granularity needs concurrent updaters; sweep at the top requested
    // thread count (floored at 2 so `--threads 1` still contends).
    let n = threads.iter().copied().max().unwrap_or(2).max(2);
    let mut lsa = Series::new("LSA-STM");
    let mut z = Series::new("Z-STM");
    for &buckets in &COLLECTIONS_BUCKETS {
        let mut config = MapConfig::new(n);
        config.buckets = buckets;
        config.keys = COLLECTIONS_KEYS;
        config.lookup_pct = 10; // update-heavy: conflicts dominate
        config.scan_pct = 0;
        config.duration = duration;
        lsa.push(
            buckets as f64,
            run_map_point(Arc::new(LsaStm::new(StmConfig::new(n))), &config),
        );
        z.push(
            buckets as f64,
            run_map_point(Arc::new(ZStm::new(StmConfig::new(n))), &config),
        );
    }
    vec![lsa, z]
}

/// **Map figure**: the read-dominated map workload on LSA over the scalar
/// and sharded clocks plus Z-STM over the sharded clock — the sweep that
/// shows what the seqlock read path and the sharded time base buy on the
/// workloads they target. Returns one throughput series per system.
pub fn figure_map(threads: &[usize], duration: Duration) -> Vec<Series> {
    let mut lsa_scalar = Series::new("LSA-STM (scalar)");
    let mut lsa_sharded = Series::new("LSA-STM (sharded)");
    let mut z_sharded = Series::new("Z-STM (sharded)");
    for &n in threads {
        let mut config = MapConfig::new(n);
        config.duration = duration;
        lsa_scalar.push(
            n as f64,
            run_map_point(Arc::new(LsaStm::new(StmConfig::new(n))), &config),
        );
        lsa_sharded.push(
            n as f64,
            run_map_point(
                Arc::new(LsaStm::with_clock(StmConfig::new(n), ShardedClock::new(n))),
                &config,
            ),
        );
        z_sharded.push(
            n as f64,
            run_map_point(
                Arc::new(ZStm::with_clock(StmConfig::new(n), ShardedClock::new(n))),
                &config,
            ),
        );
    }
    vec![lsa_scalar, lsa_sharded, z_sharded]
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: Duration = Duration::from_millis(40);

    #[test]
    fn figure6_smoke() {
        let figure = figure6(&[1, 2], FAST);
        assert_eq!(figure.totals.len(), 3);
        assert_eq!(figure.transfers.len(), 3);
        for series in &figure.transfers {
            assert!(series.points.iter().all(|&(_, y)| y >= 0.0));
        }
    }

    #[test]
    fn figure7_smoke() {
        let figure = figure7(&[2], FAST);
        assert_eq!(figure.totals.len(), 2);
        // Z-STM must commit at least one update Compute-Total even in a
        // 40 ms window.
        let z = &figure.totals[1];
        assert_eq!(z.label, "Z-STM");
    }

    #[test]
    fn clock_contention_smoke() {
        let series = clock_contention(&[1, 2], FAST);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points.iter().all(|&(_, y)| y > 0.0));
        }
    }

    #[test]
    fn figure_map_smoke() {
        let series = figure_map(&[2], FAST);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert!(s.points.iter().all(|&(_, y)| y > 0.0));
        }
    }

    #[test]
    fn figure_collections_smoke() {
        let series = figure_collections(&[2], FAST);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), COLLECTIONS_BUCKETS.len());
            assert!(
                s.points.iter().all(|&(_, y)| y > 0.0),
                "{}: every bucket count must commit operations",
                s.label
            );
        }
    }

    #[test]
    fn read_hotspot_smoke() {
        let series = read_hotspot(&[2], FAST);
        assert_eq!(series.len(), 11);
        for s in &series {
            assert!(
                s.points.iter().all(|&(_, y)| y > 0.0),
                "{}: empty hotspot series",
                s.label
            );
        }
    }

    #[test]
    fn figure_queue_smoke() {
        let series = figure_queue(&[1], FAST);
        assert_eq!(series.len(), 6);
        for s in &series {
            assert!(
                s.points.iter().all(|&(_, y)| y > 0.0),
                "{}: queue series must deliver items",
                s.label
            );
        }
    }

    #[test]
    fn figure_queue_async_smoke() {
        let series = figure_queue_async(&[2], FAST);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert!(
                s.points.iter().all(|&(_, y)| y > 0.0),
                "{}: async queue series must deliver items",
                s.label
            );
        }
    }

    #[test]
    fn figure_server_smoke() {
        let series = figure_server(&[1, 2], FAST);
        assert_eq!(series.len(), SERVER_LABELS.len());
        for s in &series {
            assert!(
                s.points.iter().all(|&(_, y)| y > 0.0),
                "{}: server series must commit transfers",
                s.label
            );
        }
    }

    #[test]
    fn figure_overload_smoke() {
        let series = figure_overload(&[1, 4], FAST);
        assert_eq!(series.len(), OVERLOAD_LABELS.len());
        let goodput = &series[0];
        assert!(
            goodput.points.iter().all(|&(_, y)| y > 0.0),
            "goodput: the admitted slot must still commit transfers"
        );
        let shed = &series[1];
        assert!(
            shed.points.iter().all(|&(_, y)| (0.0..=1.0).contains(&y)),
            "shed-rate: a rate must stay within [0, 1]"
        );
    }

    #[test]
    fn figure_certify_smoke() {
        let (throughput, aborts) = figure_certify(&[2], FAST);
        assert_eq!(throughput.len(), CERTIFY_LABELS.len());
        assert_eq!(aborts.len(), CERTIFY_LABELS.len());
        for s in &throughput {
            assert!(
                s.points.iter().all(|&(_, y)| y > 0.0),
                "{}: certified engines must still commit",
                s.label
            );
        }
    }

    #[test]
    fn ablations_smoke() {
        let (throughput, aborts) = ablation_plausible_r(2, FAST);
        assert!(!throughput.points.is_empty());
        assert_eq!(throughput.points.len(), aborts.points.len());
        let overhead = ablation_overhead(&[2], FAST);
        assert_eq!(overhead.len(), 4);
        let contention = ablation_contention(2, FAST);
        assert_eq!(contention.len(), CmPolicy::ALL.len());
    }
}
