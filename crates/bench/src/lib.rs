//! Shared sweep logic for the figure-reproduction binary and the criterion
//! benches.
//!
//! Every public function regenerates one figure or ablation described in
//! `ARCHITECTURE.md` and returns the series the paper plots. The caller
//! chooses the measurement duration: the `repro-figures` binary uses
//! seconds per point, the criterion benches use tens of milliseconds to
//! stay fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use zstm_core::{CmPolicy, StmConfig, TmFactory};
use zstm_cs::CsStm;
use zstm_lsa::LsaStm;
use zstm_tl2::Tl2Stm;
use zstm_workload::{run_array, run_bank, ArrayConfig, BankConfig, BankReport, LongMode, Series};
use zstm_z::ZStm;

/// Thread counts the paper sweeps in Figures 6 and 7.
pub const PAPER_THREADS: [usize; 5] = [1, 2, 8, 16, 32];

/// Output of one bank sweep: the two panels of a paper figure.
#[derive(Clone, Debug)]
pub struct BankFigure {
    /// Compute-Total throughput per system (left panel).
    pub totals: Vec<Series>,
    /// Transfer throughput per system (right panel).
    pub transfers: Vec<Series>,
}

fn bank_config(threads: usize, duration: Duration, mode: LongMode) -> BankConfig {
    let mut config = BankConfig::paper(threads);
    config.duration = duration;
    config.long_mode = mode;
    config
}

fn run_bank_point<F: TmFactory>(stm: Arc<F>, config: &BankConfig) -> BankReport {
    let report = run_bank(&stm, config);
    assert!(
        report.conserved,
        "{}: bank invariant violated at {} threads",
        report.stm, config.threads
    );
    report
}

/// One system of the Figure 6/7 sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankSystem {
    /// Plain LSA-STM (read-only transactions maintain read sets).
    Lsa,
    /// "LSA-STM (no readsets)" — the optimized read-only path.
    LsaNoReadsets,
    /// Z-STM.
    Z,
}

impl BankSystem {
    /// Label used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            BankSystem::Lsa => "LSA-STM",
            BankSystem::LsaNoReadsets => "LSA-STM (no readsets)",
            BankSystem::Z => "Z-STM",
        }
    }

    fn run(self, config: &BankConfig) -> BankReport {
        // +1 logical thread for the harness's final audit.
        let stm_config = StmConfig::new(config.threads + 1);
        match self {
            BankSystem::Lsa => run_bank_point(Arc::new(LsaStm::new(stm_config)), config),
            BankSystem::LsaNoReadsets => {
                let mut stm_config = stm_config;
                stm_config.readonly_readsets(false);
                run_bank_point(Arc::new(LsaStm::new(stm_config)), config)
            }
            BankSystem::Z => run_bank_point(Arc::new(ZStm::new(stm_config)), config),
        }
    }
}

fn bank_figure(
    systems: &[BankSystem],
    threads: &[usize],
    duration: Duration,
    mode: LongMode,
) -> BankFigure {
    let mut totals: Vec<Series> = systems.iter().map(|s| Series::new(s.label())).collect();
    let mut transfers: Vec<Series> = systems.iter().map(|s| Series::new(s.label())).collect();
    for &n in threads {
        for (i, system) in systems.iter().enumerate() {
            let report = system.run(&bank_config(n, duration, mode));
            totals[i].push(n as f64, report.totals_per_sec);
            transfers[i].push(n as f64, report.transfers_per_sec);
        }
    }
    BankFigure { totals, transfers }
}

/// **Figure 6**: bank benchmark with *read-only* Compute-Total
/// transactions — LSA-STM, LSA-STM (no readsets) and Z-STM.
pub fn figure6(threads: &[usize], duration: Duration) -> BankFigure {
    bank_figure(
        &[BankSystem::Lsa, BankSystem::LsaNoReadsets, BankSystem::Z],
        threads,
        duration,
        LongMode::ReadOnly,
    )
}

/// **Figure 7**: bank benchmark with *update* Compute-Total transactions —
/// LSA-STM collapses, Z-STM sustains.
pub fn figure7(threads: &[usize], duration: Duration) -> BankFigure {
    bank_figure(
        &[BankSystem::Lsa, BankSystem::Z],
        threads,
        duration,
        LongMode::Update,
    )
}

/// **Ablation A** (Section 4.3): CS-STM over plausible clocks with
/// r ∈ {1, 2, 4, n} entries on the random-array workload. Returns
/// (throughput series, abort-ratio series) over r.
pub fn ablation_plausible_r(threads: usize, duration: Duration) -> (Series, Series) {
    let mut throughput = Series::new("CS-STM commits/s");
    let mut aborts = Series::new("CS-STM abort ratio");
    let mut config = ArrayConfig::new(threads);
    // Contended configuration: false orderings from shared clock entries
    // only become unnecessary aborts when read/write conflicts are common.
    config.objects = 24;
    config.tx_size = 6;
    config.write_pct = 50;
    config.duration = duration;
    let mut rs: Vec<usize> = vec![1, 2, 4];
    if !rs.contains(&threads) {
        rs.push(threads);
    }
    for r in rs {
        if r > threads {
            continue;
        }
        let stm = Arc::new(CsStm::with_plausible_clock(StmConfig::new(threads), r));
        let report = run_array(&stm, &config);
        throughput.push(r as f64, report.commits_per_sec);
        aborts.push(r as f64, report.abort_ratio());
    }
    (throughput, aborts)
}

/// **Ablation B** (Section 4.4): runtime overhead of vector time — the
/// random-array workload on every STM. Returns one throughput series per
/// system over thread counts.
pub fn ablation_overhead(threads: &[usize], duration: Duration) -> Vec<Series> {
    let mut lsa = Series::new("LSA-STM");
    let mut tl2 = Series::new("TL2");
    let mut cs = Series::new("CS-STM (vector)");
    let mut z = Series::new("Z-STM");
    for &n in threads {
        let mut config = ArrayConfig::new(n);
        config.duration = duration;
        let report = run_array(&Arc::new(LsaStm::new(StmConfig::new(n))), &config);
        lsa.push(n as f64, report.commits_per_sec);
        let report = run_array(&Arc::new(Tl2Stm::new(StmConfig::new(n))), &config);
        tl2.push(n as f64, report.commits_per_sec);
        let report = run_array(
            &Arc::new(CsStm::with_vector_clock(StmConfig::new(n))),
            &config,
        );
        cs.push(n as f64, report.commits_per_sec);
        let report = run_array(&Arc::new(ZStm::new(StmConfig::new(n))), &config);
        z.push(n as f64, report.commits_per_sec);
    }
    vec![lsa, tl2, cs, z]
}

/// **Ablation C**: contention-manager comparison on a high-contention
/// array workload (LSA-STM). Returns one (policy, commits/s, abort ratio)
/// row per policy.
pub fn ablation_contention(threads: usize, duration: Duration) -> Vec<(&'static str, f64, f64)> {
    let mut rows = Vec::new();
    for policy in CmPolicy::ALL {
        let mut stm_config = StmConfig::new(threads);
        stm_config.cm(policy);
        let stm = Arc::new(LsaStm::new(stm_config));
        let mut config = ArrayConfig::new(threads);
        config.objects = 16; // high contention
        config.write_pct = 80;
        config.duration = duration;
        let report = run_array(&stm, &config);
        rows.push((
            policy.build().name(),
            report.commits_per_sec,
            report.abort_ratio(),
        ));
    }
    rows
}

/// **Ablation D**: long-transaction frequency sweep — Compute-Total share
/// on the mixed thread from 0 % to 50 %, read-only mode, LSA vs Z.
/// Returns (Compute-Total series, transfer series) per system.
pub fn ablation_long_fraction(threads: usize, duration: Duration) -> BankFigure {
    let mut totals = vec![Series::new("LSA-STM"), Series::new("Z-STM")];
    let mut transfers = vec![Series::new("LSA-STM"), Series::new("Z-STM")];
    for pct in [0u8, 1, 5, 20, 50] {
        for (i, system) in [BankSystem::Lsa, BankSystem::Z].iter().enumerate() {
            let mut config = bank_config(threads, duration, LongMode::ReadOnly);
            config.total_pct = pct;
            let report = system.run(&config);
            totals[i].push(pct as f64, report.totals_per_sec);
            transfers[i].push(pct as f64, report.transfers_per_sec);
        }
    }
    BankFigure { totals, transfers }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: Duration = Duration::from_millis(40);

    #[test]
    fn figure6_smoke() {
        let figure = figure6(&[1, 2], FAST);
        assert_eq!(figure.totals.len(), 3);
        assert_eq!(figure.transfers.len(), 3);
        for series in &figure.transfers {
            assert!(series.points.iter().all(|&(_, y)| y >= 0.0));
        }
    }

    #[test]
    fn figure7_smoke() {
        let figure = figure7(&[2], FAST);
        assert_eq!(figure.totals.len(), 2);
        // Z-STM must commit at least one update Compute-Total even in a
        // 40 ms window.
        let z = &figure.totals[1];
        assert_eq!(z.label, "Z-STM");
    }

    #[test]
    fn ablations_smoke() {
        let (throughput, aborts) = ablation_plausible_r(2, FAST);
        assert!(!throughput.points.is_empty());
        assert_eq!(throughput.points.len(), aborts.points.len());
        let overhead = ablation_overhead(&[2], FAST);
        assert_eq!(overhead.len(), 4);
        let contention = ablation_contention(2, FAST);
        assert_eq!(contention.len(), CmPolicy::ALL.len());
    }
}
