//! Per-operation cost of each STM (single-threaded): a read-modify-write
//! transaction over two variables, plus a read-only scan — the per-access
//! overhead comparison behind ARCHITECTURE.md ablation B.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use zstm_clock::RevClock;
use zstm_core::{atomically, RetryPolicy, StmConfig, TmFactory, TmTx, TxKind};
use zstm_cs::CsStm;
use zstm_lsa::LsaStm;
use zstm_sstm::SStm;
use zstm_tl2::Tl2Stm;
use zstm_z::ZStm;

fn bench_stm<F: TmFactory>(c: &mut Criterion, label: &str, stm: Arc<F>) {
    let vars: Vec<F::Var<i64>> = (0..16).map(|_| stm.new_var(0i64)).collect();
    let mut thread = stm.register_thread();
    let policy = RetryPolicy::default();

    let mut group = c.benchmark_group(format!("stm_ops/{label}"));
    group.bench_function("rmw_2vars", |b| {
        b.iter(|| {
            atomically(&mut thread, TxKind::Short, &policy, |tx| {
                let a = tx.read(&vars[0])?;
                let c = tx.read(&vars[1])?;
                tx.write(&vars[0], a + 1)?;
                tx.write(&vars[1], c - 1)
            })
            .expect("commit")
        })
    });
    group.bench_function("readonly_scan_16", |b| {
        b.iter(|| {
            let sum = atomically(&mut thread, TxKind::Short, &policy, |tx| {
                let mut sum = 0i64;
                for var in &vars {
                    sum += tx.read(var)?;
                }
                Ok(sum)
            })
            .expect("commit");
            black_box(sum)
        })
    });
    group.bench_function("long_scan_16", |b| {
        b.iter(|| {
            let sum = atomically(&mut thread, TxKind::Long, &policy, |tx| {
                let mut sum = 0i64;
                for var in &vars {
                    sum += tx.read(var)?;
                }
                Ok(sum)
            })
            .expect("commit");
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_stm_ops(c: &mut Criterion) {
    bench_stm(c, "lsa", Arc::new(LsaStm::new(StmConfig::new(1))));
    bench_stm(c, "tl2", Arc::new(Tl2Stm::new(StmConfig::new(1))));
    bench_stm(
        c,
        "cs-vector",
        Arc::new(CsStm::with_vector_clock(StmConfig::new(1))),
    );
    bench_stm(
        c,
        "cs-rev1",
        Arc::new(CsStm::with_plausible_clock(StmConfig::new(1), 1)),
    );
    bench_stm(
        c,
        "s-stm",
        Arc::new(SStm::<RevClock>::with_vector_clock(StmConfig::new(1))),
    );
    bench_stm(c, "z-stm", Arc::new(ZStm::new(StmConfig::new(1))));
}

criterion_group!(benches, bench_stm_ops);
criterion_main!(benches);
