//! Figure 7 (update Compute-Total): LSA-STM collapses to ~0 Compute-Total
//! throughput, Z-STM sustains it without hurting transfers.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use zstm_api::{DynStm, Stm};
use zstm_bench::figure7;
use zstm_core::StmConfig;
use zstm_workload::{print_table, run_bank, BankConfig};
use zstm_z::ZStm;

fn bench_fig7(c: &mut Criterion) {
    let threads = [1, 2, 8];
    let figure = figure7(&threads, Duration::from_millis(150));
    println!(
        "\n{}",
        print_table(
            "Figure 7 left: Compute-Total (update) [Tx/s]",
            &figure.totals
        )
    );
    println!(
        "{}",
        print_table("Figure 7 right: Transfers [Tx/s]", &figure.transfers)
    );

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("bank_zstm_update_totals_50ms", |b| {
        b.iter(|| {
            let mut config = BankConfig::quick(2).with_update_totals();
            config.duration = Duration::from_millis(50);
            let stm: Arc<dyn DynStm> =
                Arc::new(Stm::new(ZStm::new(StmConfig::new(config.threads + 1))));
            let report = run_bank(&stm, &config);
            assert!(report.conserved);
            report.total_commits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
