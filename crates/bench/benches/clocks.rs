//! Micro-benchmarks of the time bases (Sections 2 and 4.3): shared-counter
//! stamps vs vector/plausible-clock operations of different sizes — the
//! space/accuracy/runtime trade-off behind the paper's "the overheads of
//! vector clocks ... are quite high".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use zstm_clock::{
    CausalStamp, CausalTimeBase, RevClock, ScalarClock, ShardedClock, SimRealTimeClock, TimeBase,
};

fn bench_clocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("clocks");

    let scalar = ScalarClock::new();
    group.bench_function("scalar_now", |b| b.iter(|| black_box(scalar.now(0))));
    group.bench_function("scalar_commit_stamp", |b| {
        b.iter(|| black_box(scalar.commit_stamp(0)))
    });

    let sharded = ShardedClock::new(16);
    group.bench_function("sharded_now", |b| b.iter(|| black_box(sharded.now(0))));
    group.bench_function("sharded_commit_stamp", |b| {
        b.iter(|| black_box(sharded.commit_stamp(0)))
    });

    let realtime = SimRealTimeClock::new(4, 1_000, 42);
    group.bench_function("realtime_now", |b| b.iter(|| black_box(realtime.now(0))));
    group.bench_function("realtime_commit_stamp", |b| {
        b.iter(|| black_box(realtime.commit_stamp(0)))
    });

    for r in [1usize, 4, 32] {
        let clock = RevClock::new(32, r);
        group.bench_function(format!("rev{r}_advance"), |b| {
            b.iter_batched(
                || clock.zero(),
                |mut stamp| {
                    clock.advance(0, &mut stamp);
                    stamp
                },
                BatchSize::SmallInput,
            )
        });
        let mut a = clock.zero();
        let mut b_stamp = clock.zero();
        clock.advance(0, &mut a);
        clock.advance(r.min(31), &mut b_stamp);
        group.bench_function(format!("rev{r}_cmp"), |b| {
            b.iter(|| black_box(a.causal_cmp(&b_stamp)))
        });
        group.bench_function(format!("rev{r}_join"), |b| {
            b.iter_batched(
                || a.clone(),
                |mut stamp| {
                    stamp.join(&b_stamp);
                    stamp
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_clocks);
criterion_main!(benches);
