//! Ablation C: contention-manager comparison under a high-contention
//! array workload (the "liveness of the system" knob of Section 4.1).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use zstm_bench::{ablation_contention, ablation_plausible_r};
use zstm_workload::print_table;

fn bench_contention(c: &mut Criterion) {
    let rows = ablation_contention(2, Duration::from_millis(150));
    println!("\n## Ablation C: contention managers (2 threads, 16 objects, 80% writes)");
    println!("{:>12} {:>14} {:>12}", "policy", "commits/s", "abort ratio");
    for (policy, commits, aborts) in &rows {
        println!("{policy:>12} {commits:>14.1} {aborts:>12.3}");
    }

    let (throughput, aborts) = ablation_plausible_r(2, Duration::from_millis(150));
    println!(
        "\n{}",
        print_table(
            "Ablation A: CS-STM over plausible clocks (x = r)",
            &[throughput, aborts]
        )
    );

    // A nominal criterion measurement so the bench integrates with
    // `cargo bench` regression tracking.
    let mut group = c.benchmark_group("contention");
    group.sample_size(10);
    group.bench_function("polite_highcontention_50ms", |b| {
        b.iter(|| {
            let rows = ablation_contention(2, Duration::from_millis(50));
            rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);
