//! Figure 6 (read-only Compute-Total): prints the paper's two panels with
//! a short per-point duration, then lets criterion measure one
//! representative Z-STM bank round for regression tracking.
//!
//! For publication-quality numbers run
//! `cargo run --release -p zstm-bench --bin repro-figures -- fig6`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use zstm_api::{DynStm, Stm};
use zstm_bench::figure6;
use zstm_core::StmConfig;
use zstm_workload::{print_table, run_bank, BankConfig};
use zstm_z::ZStm;

fn bench_fig6(c: &mut Criterion) {
    let threads = [1, 2, 8];
    let figure = figure6(&threads, Duration::from_millis(150));
    println!(
        "\n{}",
        print_table(
            "Figure 6 left: Compute-Total (read-only) [Tx/s]",
            &figure.totals
        )
    );
    println!(
        "{}",
        print_table("Figure 6 right: Transfers [Tx/s]", &figure.transfers)
    );

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("bank_zstm_2threads_50ms", |b| {
        b.iter(|| {
            let mut config = BankConfig::quick(2);
            config.duration = Duration::from_millis(50);
            let stm: Arc<dyn DynStm> =
                Arc::new(Stm::new(ZStm::new(StmConfig::new(config.threads + 1))));
            let report = run_bank(&stm, &config);
            assert!(report.conserved);
            report.transfer_commits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
