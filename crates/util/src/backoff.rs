use core::fmt;
use std::hint;
use std::thread;

/// Bounded exponential backoff used on transactional conflicts and contended
/// compare-and-swap loops.
///
/// The first few rounds spin with [`core::hint::spin_loop`]; once the
/// exponent crosses [`Backoff::SPIN_LIMIT`] the calling thread yields to the
/// OS scheduler instead, which matters on the oversubscribed configurations
/// the paper benchmarks (32 logical threads on 8 cores).
///
/// This is the mechanism behind the *Polite* contention manager and the
/// retry loop of `zstm_core::atomically`.
///
/// # Examples
///
/// ```
/// use zstm_util::Backoff;
///
/// let mut backoff = Backoff::new();
/// for _attempt in 0..4 {
///     // ... try a CAS, it failed ...
///     backoff.spin();
/// }
/// assert!(backoff.rounds() >= 4);
/// ```
#[derive(Clone)]
pub struct Backoff {
    exponent: u32,
    rounds: u64,
}

impl Backoff {
    /// Exponent after which [`Backoff::spin`] yields instead of busy-waiting.
    pub const SPIN_LIMIT: u32 = 6;
    /// Maximum exponent; waits stop growing beyond `2^YIELD_LIMIT` units.
    pub const YIELD_LIMIT: u32 = 12;

    /// Creates a fresh backoff in the "no conflicts seen yet" state.
    pub const fn new() -> Self {
        Self {
            exponent: 0,
            rounds: 0,
        }
    }

    /// Total number of backoff rounds performed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Returns `true` once spinning has escalated to yielding, i.e. the
    /// conflict has persisted long enough that the caller should consider a
    /// stronger measure (such as aborting the opponent transaction).
    pub fn is_saturated(&self) -> bool {
        self.exponent >= Self::YIELD_LIMIT
    }

    /// Performs one backoff round: busy-spins for `2^n` iterations while the
    /// exponent is small and yields the thread afterwards.
    pub fn spin(&mut self) {
        self.rounds += 1;
        if self.exponent <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.exponent) {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if self.exponent < Self::YIELD_LIMIT {
            self.exponent += 1;
        }
    }

    /// Resets the exponential schedule (e.g. after a successful commit).
    pub fn reset(&mut self) {
        self.exponent = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff")
            .field("exponent", &self.exponent)
            .field("rounds", &self.rounds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_saturates() {
        let mut backoff = Backoff::new();
        assert!(!backoff.is_saturated());
        for _ in 0..=Backoff::YIELD_LIMIT {
            backoff.spin();
        }
        assert!(backoff.is_saturated());
        assert_eq!(backoff.rounds(), u64::from(Backoff::YIELD_LIMIT) + 1);
    }

    #[test]
    fn reset_restarts_schedule() {
        let mut backoff = Backoff::new();
        for _ in 0..20 {
            backoff.spin();
        }
        backoff.reset();
        assert!(!backoff.is_saturated());
        // Rounds are cumulative across resets.
        assert_eq!(backoff.rounds(), 20);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", Backoff::new()).contains("Backoff"));
    }
}
