use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that neighbouring values never
/// share a cache line.
///
/// Shared-counter time bases (see `zstm-clock`) and per-thread statistics
/// slots are the prime users: without padding, logically independent atomic
/// counters false-share a line and the "contention on the time base" effect
/// the paper discusses in Section 2 is badly distorted.
///
/// 128 bytes (not 64) because modern x86 prefetches cache lines in pairs and
/// Apple/ARM big cores use 128-byte lines; this matches what `crossbeam`
/// does.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use zstm_util::CachePadded;
///
/// let slots: Vec<CachePadded<AtomicU64>> =
///     (0..4).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
/// slots[1].store(7, Ordering::Relaxed);
/// assert_eq!(slots[1].load(Ordering::Relaxed), 7);
/// ```
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned cell.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding wrapper and returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        Self::new(self.value.clone())
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem::{align_of, size_of};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn alignment_is_128() {
        assert_eq!(align_of::<CachePadded<u8>>(), 128);
        assert!(size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_reads_and_writes() {
        let mut cell = CachePadded::new(5u32);
        assert_eq!(*cell, 5);
        *cell = 6;
        assert_eq!(cell.into_inner(), 6);
    }

    #[test]
    fn atomic_inside_padding() {
        let cell = CachePadded::new(AtomicU64::new(1));
        cell.fetch_add(2, Ordering::Relaxed);
        assert_eq!(cell.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn debug_is_nonempty() {
        let cell = CachePadded::new(42u8);
        assert!(format!("{cell:?}").contains("42"));
    }

    #[test]
    fn from_and_clone() {
        let cell: CachePadded<i32> = 9.into();
        let copy = cell.clone();
        assert_eq!(*copy, 9);
    }
}
