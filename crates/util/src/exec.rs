//! A minimal offline async executor: [`block_on`] and an N-worker
//! [`ThreadPool`].
//!
//! The build environment has no crates registry, so the async transaction
//! front end (`zstm-api`) cannot lean on `tokio` or `futures`. This module
//! provides the two primitives its tests, examples and benchmarks need,
//! built from `std` plus the crate's own [`sync`](crate::sync) wrappers:
//!
//! * [`block_on`] — drive one future to completion on the calling thread,
//!   parking on a [`Condvar`] between polls;
//! * [`ThreadPool`] — a fixed set of worker threads multiplexing any
//!   number of spawned tasks, so harnesses can run *more tasks than OS
//!   threads* (the shape that makes waker-based transaction parking
//!   observable: a parked task releases its worker instead of blocking
//!   it).
//!
//! Wakers are the standard-library [`Wake`] machinery — no unsafe vtable
//! construction. A task that is woken while running is re-queued once it
//! yields (the classic `NOTIFIED` state), so wakeups are never lost; a
//! task woken multiple times is queued at most once.
//!
//! This is a test/benchmark harness, not a production runtime: there is no
//! work stealing and no IO reactor. It is deliberately small enough to
//! audit. The one concession to real deployments is **timed parking**: a
//! single lazy timer thread ([`wake_at`]) and the [`timeout`] combinator
//! built on it, which is what turns "a parked `WAIT` holds a resource
//! forever" into "a parked `WAIT` resolves at its deadline" one layer up
//! in `zstm-server`.
//!
//! # Examples
//!
//! ```
//! use zstm_util::exec::{block_on, ThreadPool};
//!
//! // block_on drives simple futures (and everything zstm-api returns).
//! assert_eq!(block_on(async { 6 * 7 }), 42);
//!
//! // Four tasks multiplexed over two workers.
//! let pool = ThreadPool::new(2);
//! let handles: Vec<_> = (0..4)
//!     .map(|i| pool.spawn(async move { i * 2 }))
//!     .collect();
//! let sum: i32 = handles.into_iter().map(|h| h.join()).sum();
//! assert_eq!(sum, 12);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};

use crate::sync::{Condvar, Mutex};

/// Parker behind [`block_on`]: the waker sets the flag and notifies, the
/// driving thread sleeps on the condvar until then.
struct Parker {
    woken: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    fn park(&self) {
        let mut woken = self.woken.lock();
        while !*woken {
            woken = self.cv.wait(woken);
        }
        *woken = false;
    }
}

impl Wake for Parker {
    fn wake(self: Arc<Self>) {
        *self.woken.lock() = true;
        self.cv.notify_one();
    }
}

/// Runs `future` to completion on the calling thread.
///
/// Between polls the thread parks on a condvar; any clone of the waker
/// handed to the future unparks it. Wakes that arrive *during* a poll are
/// not lost — the flag stays set and the next park returns immediately.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let parker = Arc::new(Parker {
        woken: Mutex::new(false),
        cv: Condvar::new(),
    });
    let waker = Waker::from(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);
    let mut future = Box::pin(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => parker.park(),
        }
    }
}

/// One pending timed wakeup on the shared timer thread.
struct TimerEntry {
    deadline: std::time::Instant,
    /// Tie-breaker so the heap never compares wakers.
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // deadline on top.
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

struct TimerShared {
    entries: Mutex<std::collections::BinaryHeap<TimerEntry>>,
    cv: Condvar,
    seq: std::sync::atomic::AtomicU64,
}

/// The process-wide timer thread, spawned on first use and never joined
/// (it parks forever when idle, like the retry fallback ticker).
fn timer() -> &'static TimerShared {
    static TIMER: std::sync::OnceLock<&'static TimerShared> = std::sync::OnceLock::new();
    TIMER.get_or_init(|| {
        let shared: &'static TimerShared = Box::leak(Box::new(TimerShared {
            entries: Mutex::new(std::collections::BinaryHeap::new()),
            cv: Condvar::new(),
            seq: std::sync::atomic::AtomicU64::new(0),
        }));
        std::thread::Builder::new()
            .name("zstm-timer".into())
            .spawn(move || timer_loop(shared))
            .expect("spawn timer thread");
        shared
    })
}

fn timer_loop(shared: &TimerShared) {
    loop {
        let mut due: Vec<Waker> = Vec::new();
        {
            let mut entries = shared.entries.lock();
            loop {
                let now = std::time::Instant::now();
                while entries.peek().is_some_and(|head| head.deadline <= now) {
                    due.push(entries.pop().expect("peeked entry").waker);
                }
                if !due.is_empty() {
                    break;
                }
                match entries.peek().map(|head| head.deadline) {
                    // Head is strictly in the future (the drain above ran
                    // under the same lock), so the subtraction is safe.
                    Some(deadline) => {
                        let (guard, _) = shared.cv.wait_timeout(entries, deadline - now);
                        entries = guard;
                    }
                    None => entries = shared.cv.wait(entries),
                }
            }
        }
        // Wake outside the lock: a waker may re-register immediately.
        for waker in due {
            waker.wake();
        }
    }
}

/// Schedules `waker` to be woken at `deadline` by the shared timer thread
/// (immediately if the deadline already passed).
///
/// This is the primitive behind [`timeout`]; it is also usable directly by
/// futures that implement their own deadline or backoff logic (the async
/// retry-budget path in `zstm-api` sleeps between attempts this way
/// without blocking an executor worker).
pub fn wake_at(deadline: std::time::Instant, waker: Waker) {
    let shared = timer();
    let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
    shared.entries.lock().push(TimerEntry {
        deadline,
        seq,
        waker,
    });
    shared.cv.notify_one();
}

/// The error [`Timeout`] resolves to when its deadline passes first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline elapsed before the future resolved")
    }
}

impl std::error::Error for Elapsed {}

/// Bounds `future` to `duration`: resolves with `Ok(output)` if the inner
/// future finishes first, `Err(`[`Elapsed`]`)` otherwise.
///
/// On timeout the inner future is **dropped** — normal async
/// cancellation, which is exactly what makes this safe to wrap around a
/// transaction future: between attempts the transaction holds nothing,
/// and its drop path deregisters any parked wakeup (nothing was
/// committed). The deadline is only checked when this future is polled,
/// so a suspended inner future relies on the timer registration made on
/// the previous poll — wakeups cannot be lost, merely early (a stale
/// timer wake re-polls a still-pending future harmlessly).
pub fn timeout<F>(duration: std::time::Duration, future: F) -> Timeout<F>
where
    F: Future + Unpin,
{
    Timeout {
        inner: Some(future),
        deadline: std::time::Instant::now() + duration,
    }
}

/// Future returned by [`timeout`].
#[must_use = "futures do nothing unless polled"]
pub struct Timeout<F> {
    inner: Option<F>,
    deadline: std::time::Instant,
}

impl<F: Future + Unpin> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let inner = this
            .inner
            .as_mut()
            .expect("Timeout polled after completion");
        // Poll the inner future first: a result that is ready *now* beats
        // reporting a deadline that passed while we were queued.
        if let Poll::Ready(output) = Pin::new(&mut *inner).poll(cx) {
            this.inner = None;
            return Poll::Ready(Ok(output));
        }
        if std::time::Instant::now() >= this.deadline {
            // Cancellation: dropping the inner future runs its cleanup
            // (for transaction futures, waker deregistration).
            this.inner = None;
            return Poll::Ready(Err(Elapsed));
        }
        wake_at(this.deadline, cx.waker().clone());
        Poll::Pending
    }
}
enum Outcome<T> {
    /// The future completed with its output.
    Finished(T),
    /// The future (or the body it drove) panicked while being polled; the
    /// payload is re-thrown by [`JoinHandle::join`].
    Panicked(Box<dyn Any + Send>),
    /// The future was dropped before completing (pool shut down first).
    Cancelled,
}

/// Shared completion slot between a spawned task and its [`JoinHandle`].
struct JoinSlot<T> {
    outcome: Mutex<Option<Outcome<T>>>,
    cv: Condvar,
}

impl<T> JoinSlot<T> {
    fn complete(&self, outcome: Outcome<T>) {
        let mut slot = self.outcome.lock();
        // First completion wins (the cancel guard stands down during
        // panics, so the paths never race for the slot).
        if slot.is_none() {
            *slot = Some(outcome);
            self.cv.notify_all();
        }
    }
}

/// Completes the slot with [`Outcome::Cancelled`] if the wrapped future is
/// dropped without finishing — the executor shut down, or the task was
/// dropped from the queue.
struct CancelGuard<T> {
    slot: Arc<JoinSlot<T>>,
    armed: bool,
}

impl<T> Drop for CancelGuard<T> {
    fn drop(&mut self) {
        // During a panic the worker records the payload right after the
        // unwind (a more informative outcome than Cancelled); writing
        // Cancelled here would let a racing join() observe it first.
        if self.armed && !std::thread::panicking() {
            self.slot.complete(Outcome::Cancelled);
        }
    }
}

/// Handle to a task spawned on a [`ThreadPool`].
///
/// Dropping the handle detaches the task (it keeps running); [`join`]
/// blocks the calling thread until the task completes.
///
/// [`join`]: JoinHandle::join
pub struct JoinHandle<T> {
    slot: Arc<JoinSlot<T>>,
}

impl<T> JoinHandle<T> {
    /// Blocks until the task completes and returns its output.
    ///
    /// # Panics
    ///
    /// Re-throws the task's panic payload if the task panicked, and panics
    /// with a descriptive message if the task was cancelled (its pool was
    /// dropped before the task could finish).
    pub fn join(self) -> T {
        let mut outcome = self.slot.outcome.lock();
        loop {
            match outcome.take() {
                Some(Outcome::Finished(value)) => return value,
                Some(Outcome::Panicked(payload)) => std::panic::resume_unwind(payload),
                Some(Outcome::Cancelled) => {
                    panic!("joined a task that was cancelled (its ThreadPool was dropped)")
                }
                None => outcome = self.slot.cv.wait(outcome),
            }
        }
    }

    /// Whether the task has completed (finished, panicked or cancelled)
    /// without blocking.
    pub fn is_finished(&self) -> bool {
        self.slot.outcome.lock().is_some()
    }
}

/// Task lifecycle states (see `Task::wake_task` and `run_one`).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// One spawned task: the erased future plus the state machine that makes
/// wakeups exact (woken-while-running tasks re-queue exactly once).
struct Task {
    state: AtomicU8,
    /// The future, present while the task is alive. Taken out for the
    /// duration of a poll so a re-entrant wake cannot alias it.
    future: Mutex<Option<BoxFuture>>,
    /// Type-erased hook delivering a caught panic payload to the task's
    /// [`JoinSlot`] (the worker cannot name the output type).
    panic_sink: Mutex<Option<PanicSink>>,
    pool: Weak<PoolShared>,
}

type PanicSink = Box<dyn FnOnce(Box<dyn Any + Send>) + Send>;

impl Task {
    /// The waker protocol. Transitions:
    /// `IDLE → QUEUED` (push to the pool), `RUNNING → NOTIFIED` (the
    /// worker re-queues after the poll), `QUEUED`/`NOTIFIED`/`DONE` →
    /// no-op (already pending or finished).
    fn wake_task(self: &Arc<Self>) {
        loop {
            match self.state.load(Ordering::SeqCst) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        if let Some(pool) = self.pool.upgrade() {
                            pool.push(Arc::clone(self));
                        }
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                _ => return,
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.wake_task();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.wake_task();
    }
}

struct PoolQueue {
    ready: VecDeque<Arc<Task>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    cv: Condvar,
}

impl PoolShared {
    fn push(&self, task: Arc<Task>) {
        let mut queue = self.queue.lock();
        // After shutdown the workers are gone; dropping the task here runs
        // the future's destructor (cancellation) instead of queueing it
        // forever.
        if !queue.shutdown {
            queue.ready.push_back(task);
            drop(queue);
            self.cv.notify_one();
        }
    }
}

/// A fixed-size worker pool multiplexing spawned futures.
///
/// Workers poll ready tasks; a task returning `Pending` releases its
/// worker until woken. Dropping the pool stops the workers after the
/// currently queued tasks are drained **without** waiting for parked
/// tasks: unfinished futures are dropped (their `Drop` impls run — which
/// is what cancels in-flight transactions cleanly) and their
/// [`JoinHandle::join`] panics with a cancellation message.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `workers` OS worker threads (at least one).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                ready: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("zstm-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of OS worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Spawns a future onto the pool, returning a handle to its output.
    ///
    /// The future starts running as soon as a worker is free; dropping the
    /// returned handle detaches it.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let slot = Arc::new(JoinSlot {
            outcome: Mutex::new(None),
            cv: Condvar::new(),
        });
        let task_slot = Arc::clone(&slot);
        let wrapped = async move {
            // The guard turns "dropped before completion" into a visible
            // Cancelled outcome; disarmed on the successful path.
            let mut guard = CancelGuard {
                slot: task_slot,
                armed: true,
            };
            let value = future.await;
            guard.armed = false;
            guard.slot.complete(Outcome::Finished(value));
        };
        // A panic while polling unwinds through `wrapped`, dropping the
        // armed guard (Cancelled); the worker then upgrades the outcome to
        // Panicked with the payload it caught.
        let panic_slot = Arc::clone(&slot);
        let task = Arc::new(Task {
            state: AtomicU8::new(QUEUED),
            future: Mutex::new(Some(Box::pin(wrapped))),
            panic_sink: Mutex::new(Some(Box::new(move |payload| {
                panic_slot.complete(Outcome::Panicked(payload));
            }))),
            pool: Arc::downgrade(&self.shared),
        });
        self.shared.push(Arc::clone(&task));
        JoinHandle { slot }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock();
            queue.shutdown = true;
            // Cancel everything still queued: dropping the tasks drops
            // their futures, firing the CancelGuards.
            queue.ready.clear();
        }
        self.shared.cv.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("executor worker exited cleanly");
        }
    }
}

fn worker_loop(shared: &Arc<PoolShared>) {
    loop {
        let task = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(task) = queue.ready.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.cv.wait(queue);
            }
        };
        run_one(&task);
    }
}

/// Polls one task to `Pending` or completion, honouring wakes that raced
/// with the poll.
fn run_one(task: &Arc<Task>) {
    task.state.store(RUNNING, Ordering::SeqCst);
    let Some(mut future) = task.future.lock().take() else {
        // Already completed (a stale wake re-queued a finished task).
        task.state.store(DONE, Ordering::SeqCst);
        return;
    };
    let waker = Waker::from(Arc::clone(task));
    let mut cx = Context::from_waker(&waker);
    let poll = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        future.as_mut().poll(&mut cx)
    }));
    match poll {
        Ok(Poll::Ready(())) => {
            task.state.store(DONE, Ordering::SeqCst);
        }
        Ok(Poll::Pending) => {
            *task.future.lock() = Some(future);
            // RUNNING → IDLE unless a wake arrived mid-poll (NOTIFIED), in
            // which case re-queue immediately so the wake is not lost.
            if task
                .state
                .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                task.state.store(QUEUED, Ordering::SeqCst);
                if let Some(pool) = task.pool.upgrade() {
                    pool.push(Arc::clone(task));
                }
            }
        }
        Err(payload) => {
            // The unwind already dropped the future's locals (running
            // their Drop impls — transaction rollback, waker
            // deregistration); record the payload for join().
            task.state.store(DONE, Ordering::SeqCst);
            if let Some(sink) = task.panic_sink.lock().take() {
                sink(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    /// A future that stays pending `remaining` times, waking itself via a
    /// helper thread to exercise the cross-thread wake path.
    struct YieldTimes {
        remaining: usize,
    }

    impl Future for YieldTimes {
        type Output = usize;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
            if self.remaining == 0 {
                return Poll::Ready(0);
            }
            self.remaining -= 1;
            let waker = cx.waker().clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(1));
                waker.wake();
            });
            Poll::Pending
        }
    }

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 1 + 2 }), 3);
    }

    #[test]
    fn block_on_parks_between_polls() {
        assert_eq!(block_on(YieldTimes { remaining: 5 }), 0);
    }

    #[test]
    fn pool_runs_more_tasks_than_workers() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let counter = Arc::clone(&counter);
                pool.spawn(async move {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for handle in handles {
            handle.join();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn pending_task_releases_its_worker() {
        // One worker, two tasks: the first parks until the second (which
        // must therefore get the worker) wakes it.
        let pool = ThreadPool::new(1);
        let flag = Arc::new(Mutex::new(None::<Waker>));
        let released = Arc::new(AtomicUsize::new(0));

        struct WaitForSignal {
            slot: Arc<Mutex<Option<Waker>>>,
            released: Arc<AtomicUsize>,
        }
        impl Future for WaitForSignal {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.released.load(Ordering::SeqCst) == 1 {
                    return Poll::Ready(());
                }
                *self.slot.lock() = Some(cx.waker().clone());
                Poll::Pending
            }
        }

        let waiter = pool.spawn(WaitForSignal {
            slot: Arc::clone(&flag),
            released: Arc::clone(&released),
        });
        let signal = {
            let (flag, released) = (Arc::clone(&flag), Arc::clone(&released));
            pool.spawn(async move {
                // Busy-wait for the waiter's registration; it can only
                // appear if the waiter's Pending released the sole worker.
                loop {
                    if let Some(waker) = flag.lock().take() {
                        released.store(1, Ordering::SeqCst);
                        waker.wake();
                        return;
                    }
                    std::thread::yield_now();
                }
            })
        };
        signal.join();
        waiter.join();
    }

    #[test]
    fn join_propagates_panics() {
        let pool = ThreadPool::new(1);
        let handle = pool.spawn(async { panic!("task blew up") });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.join()))
            .expect_err("join must re-throw");
        let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "task blew up");
        // The worker survives the panic and runs later tasks.
        assert_eq!(pool.spawn(async { 7 }).join(), 7);
    }

    #[test]
    fn wake_during_poll_requeues_instead_of_losing_the_wakeup() {
        // The future wakes itself *synchronously inside poll* and returns
        // Pending; the NOTIFIED transition must re-queue it.
        struct SelfWake {
            polls: usize,
        }
        impl Future for SelfWake {
            type Output = usize;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
                if self.polls >= 3 {
                    return Poll::Ready(self.polls);
                }
                self.polls += 1;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
        let pool = ThreadPool::new(1);
        assert_eq!(pool.spawn(SelfWake { polls: 0 }).join(), 3);
    }

    #[test]
    fn dropping_the_pool_cancels_parked_tasks() {
        struct Forever;
        impl Future for Forever {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                // Never registers a waker: stays parked until cancelled.
                Poll::Pending
            }
        }
        let pool = ThreadPool::new(1);
        // Let the task reach its parked state before shutting down.
        let parked = pool.spawn(Forever);
        pool.spawn(async {}).join();
        drop(pool);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| parked.join()))
            .expect_err("cancelled task must not join cleanly");
        let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("cancelled"), "got: {message}");
    }

    #[test]
    fn timeout_passes_through_a_ready_future() {
        assert_eq!(
            block_on(timeout(Duration::from_secs(10), Box::pin(async { 5 }))),
            Ok(5)
        );
    }

    #[test]
    fn timeout_elapses_on_a_stuck_future() {
        struct Stuck;
        impl Future for Stuck {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                // Registers nothing: only the timeout's timer wake can
                // re-poll the composition.
                Poll::Pending
            }
        }
        let started = std::time::Instant::now();
        let result = block_on(timeout(Duration::from_millis(50), Stuck));
        assert_eq!(result, Err(Elapsed));
        let elapsed = started.elapsed();
        assert!(
            elapsed >= Duration::from_millis(50),
            "woke early: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "woke far too late: {elapsed:?}"
        );
    }

    #[test]
    fn timeout_drops_the_inner_future_on_expiry() {
        struct DropFlag(Arc<AtomicUsize>);
        impl Future for DropFlag {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicUsize::new(0));
        let result = block_on(timeout(
            Duration::from_millis(20),
            DropFlag(Arc::clone(&dropped)),
        ));
        assert_eq!(result, Err(Elapsed));
        assert_eq!(
            dropped.load(Ordering::SeqCst),
            1,
            "expiry must cancel (drop) the inner future"
        );
    }

    #[test]
    fn wake_at_fires_in_deadline_order() {
        // Two sleeps on the shared timer from one thread; the shorter one
        // must resolve first even though it was scheduled second.
        struct SleepUntil(std::time::Instant);
        impl Future for SleepUntil {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if std::time::Instant::now() >= self.0 {
                    return Poll::Ready(());
                }
                wake_at(self.0, cx.waker().clone());
                Poll::Pending
            }
        }
        let pool = ThreadPool::new(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let now = std::time::Instant::now();
        let slow = {
            let order = Arc::clone(&order);
            pool.spawn(async move {
                SleepUntil(now + Duration::from_millis(80)).await;
                order.lock().push("slow");
            })
        };
        let fast = {
            let order = Arc::clone(&order);
            pool.spawn(async move {
                SleepUntil(now + Duration::from_millis(20)).await;
                order.lock().push("fast");
            })
        };
        fast.join();
        slow.join();
        assert_eq!(*order.lock(), vec!["fast", "slow"]);
    }

    #[test]
    fn is_finished_reports_completion() {
        let pool = ThreadPool::new(1);
        let handle = pool.spawn(async { 1 });
        while !handle.is_finished() {
            std::thread::yield_now();
        }
        assert_eq!(handle.join(), 1);
    }
}
