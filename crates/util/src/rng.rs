use core::fmt;

/// Minimal xorshift64* pseudo-random generator.
///
/// The workload generators need a PRNG that is (a) deterministic given a
/// seed, so experiments are reproducible run-to-run, and (b) cheap enough
/// that drawing two random account indices does not dominate a bank-transfer
/// transaction. `rand`'s `StdRng` satisfies (a) but its setup cost and the
/// trait plumbing are overkill inside the STM hot paths (contention-manager
/// jitter, plausible-clock tests), so the tiny generator lives here and the
/// heavyweight one stays in the harness.
///
/// Not cryptographically secure; do not use for anything security-relevant.
///
/// # Examples
///
/// ```
/// use zstm_util::XorShift64;
///
/// let mut a = XorShift64::new(7);
/// let mut b = XorShift64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let pick = a.next_range(10);
/// assert!(pick < 10);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed`. A zero seed is remapped to a fixed
    /// non-zero constant because the all-zero state is a fixed point of the
    /// xorshift recurrence.
    pub const fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        Self { state }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a value uniformly-ish distributed in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded mapping; bias is negligible for the bounds
        // used in the workloads (< 2^20).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns `true` with probability `percent / 100`.
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn next_percent(&mut self, percent: u8) -> bool {
        assert!(percent <= 100, "percent must be at most 100");
        self.next_range(100) < u64::from(percent)
    }

    /// Derives an independent-ish stream for a child context (e.g. one per
    /// worker thread from a single experiment seed).
    pub fn fork(&mut self, stream: u64) -> Self {
        let mixed = self
            .next_u64()
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self::new(mixed | 1)
    }
}

impl fmt::Debug for XorShift64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XorShift64")
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift64::new(123);
        let mut b = XorShift64::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShift64::new(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }

    #[test]
    fn range_respects_bound() {
        let mut rng = XorShift64::new(9);
        for _ in 0..1000 {
            assert!(rng.next_range(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        XorShift64::new(1).next_range(0);
    }

    #[test]
    fn percent_edges() {
        let mut rng = XorShift64::new(5);
        for _ in 0..100 {
            assert!(!rng.next_percent(0));
            assert!(rng.next_percent(100));
        }
    }

    #[test]
    fn percent_is_roughly_calibrated() {
        let mut rng = XorShift64::new(77);
        let hits = (0..10_000).filter(|_| rng.next_percent(20)).count();
        assert!((1_500..2_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn forked_streams_diverge() {
        let mut root = XorShift64::new(42);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let equal = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn range_covers_all_values_eventually() {
        let mut rng = XorShift64::new(3);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.next_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
