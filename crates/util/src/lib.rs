//! Low-level concurrency utilities shared by every `zstm` crate.
//!
//! This crate deliberately has no dependencies: it provides the tiny
//! primitives — cache-line padding, bounded exponential backoff, a fast
//! deterministic PRNG and the lock-free [`ArcCell`]/[`ArcSlots`]
//! publication cells — that the time bases, the STM runtimes and the
//! benchmark harness all build on.
//!
//! # Examples
//!
//! ```
//! use zstm_util::{Backoff, CachePadded, XorShift64};
//!
//! let counter = CachePadded::new(std::sync::atomic::AtomicU64::new(0));
//! counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
//!
//! let mut rng = XorShift64::new(42);
//! let _die = rng.next_range(6);
//!
//! let mut backoff = Backoff::new();
//! backoff.spin(); // first conflict: spin briefly
//! ```

// `unsafe` is denied (not forbidden) crate-wide: the `arc_cell` module
// alone opts back in — a lock-free `Arc` cell cannot be built without raw
// refcount surgery — and documents the safety argument for every block.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arc_cell;
mod backoff;
pub mod exec;
mod pad;
mod rng;
pub mod sync;

pub use arc_cell::{ArcCell, ArcSlots};
pub use backoff::Backoff;
pub use pad::CachePadded;
pub use rng::XorShift64;
