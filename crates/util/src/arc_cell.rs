//! Lock-free [`Arc`] publication: [`ArcCell`] and [`ArcSlots`].
//!
//! The build environment cannot fetch `arc-swap`, so this module builds the
//! primitive the STM read fast paths need from scratch: a cell holding an
//! `Arc<T>` that readers can clone without ever taking a mutex and writers
//! can replace without ever blocking readers.
//!
//! # The hazard-slot protocol
//!
//! A global, fixed array of *hazard slots* (shared by every cell in the
//! process) protects readers from use-after-free:
//!
//! 1. **load** — the reader loads the cell's current pointer, *announces*
//!    it by claiming a free hazard slot (one compare-and-swap, started at a
//!    per-thread slot hint so the claim is uncontended in the common case),
//!    and then **revalidates** that the cell still holds the same pointer.
//!    If it does, the announcement is visible to every writer that could
//!    retire the pointer, so bumping the strong count is safe; the slot is
//!    released immediately after. If the pointer changed, the reader backs
//!    out and retries with the new value.
//! 2. **swap** — the writer atomically swaps the cell's pointer and then
//!    waits (bounded exponential [`Backoff`]) until no hazard slot contains
//!    the old pointer before reclaiming the old `Arc` reference.
//!
//! The announce/revalidate pair and the swap/scan pair form a classic
//! store-buffering (Dekker) race, so all four operations use sequentially
//! consistent ordering: either the reader's re-check observes the swap (and
//! the reader retries without touching the count), or the writer's scan
//! observes the announcement (and waits the reader out). A republished
//! pointer (A-B-A) is harmless: publication always transfers a strong count
//! *into* the cell, so the count a protected reader bumps is never the last
//! one.
//!
//! Readers perform no mutex acquisition and no unbounded CAS loop: the only
//! CAS is the slot claim, which retries solely on genuine slot collisions
//! (bounded probing, then backoff).
//!
//! [`ArcSlots`] is the simpler cousin used by S-STM's visible reads: a
//! bounded set of `Arc`-holding slots with lock-free insert/remove/drain.
//! It needs no hazards because slots *own* their reference: whoever
//! atomically empties a slot receives the count, so no reference is ever
//! touched without ownership.
#![allow(unsafe_code)]

use core::marker::PhantomData;
use core::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::ptr;
use std::sync::Arc;

use crate::{Backoff, CachePadded};

/// Number of global hazard slots. More than the typical number of live
/// threads, so claim collisions stay rare; readers that find every slot
/// busy back off and retry (the window a slot is held for is a handful of
/// instructions).
const HAZARD_SLOTS: usize = 64;

/// Slots probed past the per-thread hint before backing off.
const CLAIM_PROBES: usize = 8;

/// The process-wide hazard-slot array, shared by every [`ArcCell`]. Padded
/// so concurrent announcements do not false-share.
static SLOTS: [CachePadded<AtomicPtr<()>>; HAZARD_SLOTS] =
    [const { CachePadded::new(AtomicPtr::new(ptr::null_mut())) }; HAZARD_SLOTS];

/// Monotonic counter handing out per-thread slot hints.
static NEXT_HINT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread starts probing at its own slot, so uncontended loads
    /// claim on the first compare-and-swap.
    static SLOT_HINT: usize = NEXT_HINT.fetch_add(1, Ordering::Relaxed) % HAZARD_SLOTS;
}

/// Claims a free hazard slot and announces `ptr` in it. Returns the slot
/// on success, `None` when every probed slot is busy.
fn announce(ptr: *mut (), hint: usize) -> Option<&'static AtomicPtr<()>> {
    for probe in 0..CLAIM_PROBES {
        let slot = &SLOTS[(hint + probe) % HAZARD_SLOTS];
        if slot
            .compare_exchange(ptr::null_mut(), ptr, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            return Some(slot);
        }
    }
    None
}

/// Spins until no hazard slot announces `old` (writer-side reclamation
/// barrier). Uses the shared [`Backoff`] schedule rather than ad-hoc
/// spinning.
fn wait_unprotected(old: *mut ()) {
    let mut backoff = Backoff::new();
    for slot in &SLOTS {
        while ptr::eq(slot.load(Ordering::SeqCst), old) {
            backoff.spin();
        }
    }
}

/// A lock-free cell holding an `Arc<T>`.
///
/// [`ArcCell::load`] clones the current `Arc` without a mutex (hazard-slot
/// announce + revalidate); [`ArcCell::store`]/[`ArcCell::swap`] replace it
/// and reclaim the previous reference once no reader still protects it.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use zstm_util::ArcCell;
///
/// let cell = ArcCell::new(Arc::new(1u64));
/// assert_eq!(*cell.load(), 1);
/// cell.store(Arc::new(2));
/// assert_eq!(*cell.load(), 2);
/// ```
pub struct ArcCell<T> {
    /// The published pointer, produced by [`Arc::into_raw`]; never null.
    current: AtomicPtr<T>,
    /// The cell logically owns one `Arc<T>` strong count.
    _marker: PhantomData<Arc<T>>,
}

impl<T> ArcCell<T> {
    /// Creates a cell publishing `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            current: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            _marker: PhantomData,
        }
    }

    /// Clones the currently published `Arc` without locking.
    ///
    /// Wait-free against writers in the common case (one pointer load, one
    /// slot claim, one revalidating load); retries only when the published
    /// value changes mid-read or every probed hazard slot is busy.
    pub fn load(&self) -> Arc<T> {
        let hint = SLOT_HINT.with(|hint| *hint);
        let mut backoff = Backoff::new();
        loop {
            let ptr = self.current.load(Ordering::Acquire);
            let Some(slot) = announce(ptr.cast::<()>(), hint) else {
                backoff.spin();
                continue;
            };
            // Dekker pair with `swap`: the announcement (SeqCst CAS) is
            // ordered against this SeqCst re-check, so either we see the
            // writer's swap here, or the writer's scan sees our slot and
            // waits before reclaiming.
            if self.current.load(Ordering::SeqCst) == ptr {
                // The pointer is protected: a strong count is held by the
                // cell (or a pending writer that must wait for our slot),
                // so taking another count is safe.
                unsafe { Arc::increment_strong_count(ptr) };
                slot.store(ptr::null_mut(), Ordering::Release);
                // We own the count just taken.
                return unsafe { Arc::from_raw(ptr) };
            }
            slot.store(ptr::null_mut(), Ordering::Release);
            // A writer replaced the value between the load and the
            // announcement; retry against the new pointer.
        }
    }

    /// Publishes `value`, returning the previously published `Arc`.
    ///
    /// Blocks only for readers inside their few-instruction announce
    /// window (bounded [`Backoff`]); safe to call from several writers
    /// concurrently, though callers in this workspace serialize writes
    /// under their object lock anyway.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        let new = Arc::into_raw(value).cast_mut();
        let old = self.current.swap(new, Ordering::SeqCst);
        wait_unprotected(old.cast::<()>());
        // No hazard slot protects `old` any more and the cell's count for
        // it is now ours to reclaim.
        unsafe { Arc::from_raw(old) }
    }

    /// Publishes `value`, dropping the previously published `Arc`.
    pub fn store(&self, value: Arc<T>) {
        drop(self.swap(value));
    }
}

impl<T> Drop for ArcCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no reader can be inside `load`, so no hazard slot
        // refers to this cell's pointer.
        let ptr = *self.current.get_mut();
        drop(unsafe { Arc::from_raw(ptr) });
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_tuple("ArcCell").field(&self.load()).finish()
    }
}

/// A bounded set of lock-free slots each holding an `Arc<T>`.
///
/// Built for S-STM's visible reads: a reader inserts its transaction
/// record without taking the object lock; the overwriting transaction
/// drains the slots (under its own lock) to collect the readers. Ownership
/// of each reference is unambiguous — it belongs to the slot while the
/// slot is non-null, and to whoever atomically empties the slot — so no
/// hazard machinery is needed.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use zstm_util::ArcSlots;
///
/// let slots: ArcSlots<u64> = ArcSlots::new(4);
/// let value = Arc::new(7u64);
/// let index = slots.try_insert(Arc::clone(&value)).expect("slot free");
/// assert!(slots.try_remove(index, &value));
/// assert!(slots.drain().is_empty());
/// ```
pub struct ArcSlots<T> {
    slots: Box<[AtomicPtr<T>]>,
    /// Each occupied slot owns one `Arc<T>` strong count.
    _marker: PhantomData<Arc<T>>,
}

impl<T> ArcSlots<T> {
    /// Creates `capacity` empty slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1))
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
            _marker: PhantomData,
        }
    }

    /// Inserts `value` into a free slot (transferring one strong count into
    /// it) and returns the slot index.
    ///
    /// # Errors
    ///
    /// Returns the value back when every slot is occupied — the caller
    /// falls back to its locked registration path.
    pub fn try_insert(&self, value: Arc<T>) -> Result<usize, Arc<T>> {
        let ptr = Arc::into_raw(value).cast_mut();
        for (index, slot) in self.slots.iter().enumerate() {
            if slot
                .compare_exchange(ptr::null_mut(), ptr, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Ok(index);
            }
        }
        // Full: take the count back out of raw form.
        Err(unsafe { Arc::from_raw(ptr) })
    }

    /// Empties slot `index` iff it still holds `value`, dropping the
    /// slot's reference. Returns `false` when a concurrent [`drain`]
    /// already collected it (the drainer then owns the reference).
    ///
    /// [`drain`]: ArcSlots::drain
    pub fn try_remove(&self, index: usize, value: &Arc<T>) -> bool {
        let ptr = Arc::as_ptr(value).cast_mut();
        if self.slots[index]
            .compare_exchange(ptr, ptr::null_mut(), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            // The slot's count is ours now; release it.
            drop(unsafe { Arc::from_raw(ptr) });
            true
        } else {
            false
        }
    }

    /// Empties every occupied slot, returning the collected `Arc`s (the
    /// caller receives each slot's strong count).
    pub fn drain(&self) -> Vec<Arc<T>> {
        self.slots
            .iter()
            .filter_map(|slot| {
                let ptr = slot.swap(ptr::null_mut(), Ordering::SeqCst);
                (!ptr.is_null()).then(|| unsafe { Arc::from_raw(ptr) })
            })
            .collect()
    }

    /// Number of slots (occupied or not).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<T> Drop for ArcSlots<T> {
    fn drop(&mut self) {
        drop(self.drain());
    }
}

impl<T> core::fmt::Debug for ArcSlots<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ArcSlots")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_returns_published_value() {
        let cell = ArcCell::new(Arc::new(41u64));
        assert_eq!(*cell.load(), 41);
        let old = cell.swap(Arc::new(42));
        assert_eq!(*old, 41);
        assert_eq!(*cell.load(), 42);
    }

    #[test]
    fn drop_releases_the_published_reference() {
        let value = Arc::new(5u64);
        {
            let cell = ArcCell::new(Arc::clone(&value));
            assert_eq!(Arc::strong_count(&value), 2);
            let loaded = cell.load();
            assert_eq!(Arc::strong_count(&value), 3);
            drop(loaded);
        }
        assert_eq!(Arc::strong_count(&value), 1);
    }

    #[test]
    fn swap_hands_back_exactly_one_count() {
        let first = Arc::new(1u64);
        let second = Arc::new(2u64);
        let cell = ArcCell::new(Arc::clone(&first));
        let returned = cell.swap(Arc::clone(&second));
        assert!(Arc::ptr_eq(&returned, &first));
        drop(returned);
        assert_eq!(Arc::strong_count(&first), 1);
        drop(cell);
        assert_eq!(Arc::strong_count(&second), 1);
    }

    #[test]
    fn concurrent_loads_and_swaps_never_tear() {
        let cell = Arc::new(ArcCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let pair = cell.load();
                        assert_eq!(pair.1, pair.0 * 3, "published pair torn");
                        assert!(pair.0 >= last, "reader went back in time");
                        last = pair.0;
                    }
                })
            })
            .collect();
        for i in 1..=10_000u64 {
            cell.store(Arc::new((i, i * 3)));
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().expect("reader panicked");
        }
        assert_eq!(cell.load().0, 10_000);
    }

    #[test]
    fn slots_insert_remove_round_trip() {
        let slots: ArcSlots<u64> = ArcSlots::new(2);
        let a = Arc::new(1u64);
        let b = Arc::new(2u64);
        let ia = slots.try_insert(Arc::clone(&a)).expect("free slot");
        let _ib = slots.try_insert(Arc::clone(&b)).expect("free slot");
        // Full now.
        let c = Arc::new(3u64);
        let back = slots.try_insert(Arc::clone(&c)).expect_err("full");
        assert!(Arc::ptr_eq(&back, &c));
        assert_eq!(Arc::strong_count(&c), 2);
        assert!(slots.try_remove(ia, &a));
        assert!(!slots.try_remove(ia, &a), "already empty");
        assert_eq!(Arc::strong_count(&a), 1);
        let drained = slots.drain();
        assert_eq!(drained.len(), 1);
        assert!(Arc::ptr_eq(&drained[0], &b));
    }

    #[test]
    fn slots_drop_releases_occupants() {
        let a = Arc::new(9u64);
        {
            let slots: ArcSlots<u64> = ArcSlots::new(4);
            slots.try_insert(Arc::clone(&a)).expect("free slot");
            assert_eq!(Arc::strong_count(&a), 2);
        }
        assert_eq!(Arc::strong_count(&a), 1);
    }

    /// Flags its drop so readers can detect use-after-free.
    struct Canary {
        value: u64,
        dropped: AtomicUsize,
        drops: Arc<AtomicUsize>,
    }

    impl Canary {
        fn new(value: u64, drops: &Arc<AtomicUsize>) -> Arc<Self> {
            Arc::new(Self {
                value,
                dropped: AtomicUsize::new(0),
                drops: Arc::clone(drops),
            })
        }
    }

    impl Drop for Canary {
        fn drop(&mut self) {
            self.dropped.store(1, Ordering::SeqCst);
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn every_published_value_is_reclaimed_exactly_once() {
        const PUBLISHES: u64 = 4_000;
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(ArcCell::new(Canary::new(0, &drops)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let canary = cell.load();
                        assert_eq!(
                            canary.dropped.load(Ordering::SeqCst),
                            0,
                            "reader observed a reclaimed value"
                        );
                        std::hint::black_box(canary.value);
                    }
                })
            })
            .collect();
        for i in 1..=PUBLISHES {
            cell.store(Canary::new(i, &drops));
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().expect("reader panicked");
        }
        // Everything but the still-published value has been dropped
        // exactly once.
        assert_eq!(drops.load(Ordering::SeqCst) as u64, PUBLISHES);
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst) as u64, PUBLISHES + 1);
    }
}
