//! Poison-free lock wrappers with the `parking_lot` API shape.
//!
//! The build environment cannot fetch `parking_lot`, so the STM runtimes
//! use these thin wrappers over [`std::sync`] instead: `lock()` returns
//! the guard directly rather than a `Result`. Lock poisoning is resolved
//! by taking the inner guard anyway — the STMs never leave shared state
//! inconsistent across a panic (every critical section is a short,
//! non-panicking metadata update), so recovering the guard is safe and
//! matches `parking_lot`'s no-poisoning semantics.

use std::sync;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking;
    /// the `&mut self` receiver guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a reader-writer lock holding `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`], with the same poison-free
/// guard handling: waits return the guard directly.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing `guard` while waiting.
    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0
            .wait(guard)
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapsed; returns the guard and
    /// whether the wait timed out.
    #[inline]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) = self
            .0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        (guard, result.timed_out())
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trips() {
        let l = Arc::new(RwLock::new(5));
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().expect("waiter finished");
        // And the timeout path reports expiry without a notification.
        let (lock, cv) = &*pair;
        let guard = lock.lock();
        let (_guard, timed_out) = cv.wait_timeout(guard, std::time::Duration::from_millis(1));
        assert!(timed_out);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
