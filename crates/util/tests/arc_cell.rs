//! Stress and property tests for the lock-free [`ArcCell`] publication
//! cell and the [`ArcSlots`] visible-reader set.
//!
//! The properties under test are the ones the STM read fast paths lean on:
//!
//! * **publish/read linearizability** — with a single writer publishing a
//!   monotone sequence, every reader observes a non-decreasing subsequence
//!   of exactly the published values (the cell behaves as an atomic
//!   register);
//! * **no use-after-free** — a loaded value is never one whose `Drop` has
//!   already run, across many concurrent publish/load cycles;
//! * **reclamation accounting** — every published `Arc` is dropped exactly
//!   once, verified by strong-count accounting and a drop counter.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use zstm_util::{ArcCell, ArcSlots};

/// Drop-flagged payload: readers assert the flag is unset on every load.
struct Tracked {
    value: u64,
    dropped: AtomicBool,
    drops: Arc<AtomicUsize>,
}

impl Tracked {
    fn new(value: u64, drops: &Arc<AtomicUsize>) -> Arc<Self> {
        Arc::new(Self {
            value,
            dropped: AtomicBool::new(false),
            drops: Arc::clone(drops),
        })
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        assert!(
            !self.dropped.swap(true, Ordering::SeqCst),
            "double drop of a published value"
        );
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

/// Runs `publishes` single-writer publications against `readers` concurrent
/// loaders; returns the highest value each reader observed.
fn single_writer_stress(readers: usize, publishes: u64) -> Vec<u64> {
    let drops = Arc::new(AtomicUsize::new(0));
    let cell = Arc::new(ArcCell::new(Tracked::new(0, &drops)));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0u64;
                loop {
                    let seen = cell.load();
                    assert!(
                        !seen.dropped.load(Ordering::SeqCst),
                        "load returned a reclaimed value"
                    );
                    assert!(
                        seen.value >= last,
                        "reads went backwards: {} after {last}",
                        seen.value
                    );
                    last = seen.value;
                    if stop.load(Ordering::Relaxed) {
                        return last;
                    }
                }
            })
        })
        .collect();
    for i in 1..=publishes {
        cell.store(Tracked::new(i, &drops));
    }
    stop.store(true, Ordering::Relaxed);
    let finals: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().expect("reader panicked"))
        .collect();
    // All but the currently published value have been reclaimed, each
    // exactly once (the Tracked drop asserts single-drop itself).
    assert_eq!(drops.load(Ordering::SeqCst) as u64, publishes);
    drop(cell);
    assert_eq!(drops.load(Ordering::SeqCst) as u64, publishes + 1);
    finals
}

#[test]
fn many_reader_reclaim_stress() {
    let finals = single_writer_stress(4, 20_000);
    for last in finals {
        assert!(last <= 20_000);
    }
}

#[test]
fn multi_writer_values_are_never_torn_or_stale_freed() {
    // Several writers republish concurrently; readers only require that
    // loaded values are live and internally consistent (pair invariant).
    let cell = Arc::new(ArcCell::new(Arc::new((0u64, 0u64))));
    let stop = Arc::new(AtomicBool::new(false));
    let next = Arc::new(AtomicU64::new(1));
    let writers: Vec<_> = (0..2)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    cell.store(Arc::new((i, i.wrapping_mul(7))));
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let pair = cell.load();
                    assert_eq!(pair.1, pair.0.wrapping_mul(7), "torn publication");
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().expect("reader panicked");
    }
}

#[test]
fn slots_concurrent_insert_remove_drain_accounting() {
    let slots = Arc::new(ArcSlots::<u64>::new(8));
    let drained_total = Arc::new(AtomicUsize::new(0));
    let removed_total = Arc::new(AtomicUsize::new(0));
    let inserted_total = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let inserters: Vec<_> = (0..3)
        .map(|_| {
            let slots = Arc::clone(&slots);
            let removed = Arc::clone(&removed_total);
            let inserted = Arc::clone(&inserted_total);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    let value = Arc::new(i);
                    if let Ok(index) = slots.try_insert(Arc::clone(&value)) {
                        inserted.fetch_add(1, Ordering::SeqCst);
                        if i % 2 == 0 && slots.try_remove(index, &value) {
                            removed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    // The local `value` reference is dropped here; slot
                    // references survive independently until collected.
                }
            })
        })
        .collect();
    let drainer = {
        let slots = Arc::clone(&slots);
        let drained = Arc::clone(&drained_total);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                drained.fetch_add(slots.drain().len(), Ordering::SeqCst);
            }
        })
    };
    for inserter in inserters {
        inserter.join().expect("inserter panicked");
    }
    stop.store(true, Ordering::Relaxed);
    drainer.join().expect("drainer panicked");
    let leftover = slots.drain().len();
    // Every successful insert was collected exactly once: by its remover,
    // a drain, or the final sweep.
    assert_eq!(
        inserted_total.load(Ordering::SeqCst),
        removed_total.load(Ordering::SeqCst) + drained_total.load(Ordering::SeqCst) + leftover
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Publish/read linearizability: any reader/publish-count mix keeps
    /// reads monotone over a single writer's monotone publications, with
    /// full reclamation.
    #[test]
    fn publish_read_is_linearizable(readers in 1usize..4, publishes in 1u64..2_000) {
        let finals = single_writer_stress(readers, publishes);
        for last in finals {
            prop_assert!(last <= publishes);
        }
    }

    /// A serial op sequence behaves as a plain register: load always
    /// returns the last stored value, swap returns the one before.
    #[test]
    fn serial_register_semantics(ops in proptest::collection::vec(0u64..1_000, 1..40)) {
        let cell = ArcCell::new(Arc::new(u64::MAX));
        let mut expected = u64::MAX;
        for op in ops {
            if op % 3 == 0 {
                prop_assert_eq!(*cell.load(), expected);
            } else {
                let old = cell.swap(Arc::new(op));
                prop_assert_eq!(*old, expected);
                expected = op;
            }
        }
        prop_assert_eq!(*cell.load(), expected);
    }
}
