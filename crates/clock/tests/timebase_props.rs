//! Property and concurrency tests for the linearizable time bases: commit
//! stamps are globally unique and strictly increasing, and `now` never
//! runs ahead of future stamps by more than the advertised slack.

use std::sync::Arc;

use proptest::prelude::*;
use zstm_clock::{ScalarClock, SimRealTimeClock, TimeBase};

fn stamps_are_unique_and_monotone<B: TimeBase>(clock: Arc<B>, threads: usize, per_thread: usize) {
    let handles: Vec<_> = (0..threads)
        .map(|slot| {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                let mut local = Vec::with_capacity(per_thread);
                for _ in 0..per_thread {
                    local.push(clock.commit_stamp(slot));
                }
                local
            })
        })
        .collect();
    let mut all = Vec::new();
    for handle in handles {
        let local = handle.join().expect("stamping thread panicked");
        // Per-thread monotonicity.
        for pair in local.windows(2) {
            assert!(pair[0] < pair[1], "per-thread stamps must increase");
        }
        all.extend(local);
    }
    let len = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), len, "global uniqueness");
}

#[test]
fn scalar_stamps_unique_across_threads() {
    stamps_are_unique_and_monotone(Arc::new(ScalarClock::new()), 4, 2_000);
}

#[test]
fn realtime_stamps_unique_across_threads_with_skew() {
    stamps_are_unique_and_monotone(Arc::new(SimRealTimeClock::new(4, 1_000_000, 99)), 4, 2_000);
}

#[test]
fn scalar_now_is_exact() {
    let clock = ScalarClock::new();
    assert_eq!(clock.snapshot_slack(), 0);
    let stamp = clock.commit_stamp(0);
    assert_eq!(clock.now(1), stamp, "now reflects the latest stamp exactly");
}

#[test]
fn realtime_slack_bounds_the_lag() {
    // A snapshot taken at now(slot) - slack can never be invalidated by a
    // stamp drawn later: stamp >= true_now - deviation >= now(slot) - deviation.
    let deviation = 500_000u64;
    let clock = Arc::new(SimRealTimeClock::new(8, deviation, 7));
    assert_eq!(clock.snapshot_slack(), deviation);
    for _ in 0..200 {
        let snapshot = clock.now(3).saturating_sub(clock.snapshot_slack());
        let stamp = clock.commit_stamp(5);
        assert!(
            stamp >= snapshot,
            "stamp {stamp} invalidated snapshot {snapshot}"
        );
    }
}

proptest! {
    /// Scalar clocks: any interleaving of now/commit_stamp calls keeps
    /// `now` equal to the number of stamps drawn.
    #[test]
    fn scalar_counts_commits(ops in proptest::collection::vec(any::<bool>(), 1..100)) {
        let clock = ScalarClock::new();
        let mut commits = 0u64;
        for is_commit in ops {
            if is_commit {
                let stamp = clock.commit_stamp(0);
                commits += 1;
                prop_assert_eq!(stamp, commits);
            } else {
                prop_assert_eq!(clock.now(0), commits);
            }
        }
    }

    /// Starting offsets carry through.
    #[test]
    fn scalar_starting_at_offsets(start in 0u64..1_000_000) {
        let clock = ScalarClock::starting_at(start);
        prop_assert_eq!(clock.now(0), start);
        prop_assert_eq!(clock.commit_stamp(0), start + 1);
    }
}
