//! Property and concurrency tests for [`ShardedClock`]: global uniqueness,
//! monotonicity along happens-before, the `now`-vs-future-stamps snapshot
//! invariant, and an observable-commit-order comparison against
//! [`ScalarClock`].

use std::sync::mpsc;
use std::sync::Arc;

use proptest::prelude::*;
use zstm_clock::{CausalStamp, CausalTimeBase, ClockOrd, ScalarClock, ShardedClock, TimeBase};

#[test]
fn sharded_stamps_unique_across_threads() {
    // More threads than shards, so slot wrapping and same-shard CAS races
    // are exercised.
    let clock = Arc::new(ShardedClock::new(4));
    let handles: Vec<_> = (0..8)
        .map(|slot| {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                let mut local = Vec::with_capacity(2_000);
                for _ in 0..2_000 {
                    local.push(clock.commit_stamp(slot));
                }
                local
            })
        })
        .collect();
    let mut all = Vec::new();
    for handle in handles {
        let local = handle.join().expect("stamping thread panicked");
        for pair in local.windows(2) {
            assert!(pair[0] < pair[1], "per-thread stamps must increase");
        }
        all.extend(local);
    }
    let len = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), len, "global uniqueness");
}

#[test]
fn sharded_snapshot_invariant_under_concurrency() {
    // `now` must never be invalidated by a stamp drawn after it was read —
    // the property every snapshot-at-`ub` read path in the workspace
    // relies on (ShardedClock advertises snapshot_slack() == 0).
    let clock = Arc::new(ShardedClock::new(4));
    assert_eq!(clock.snapshot_slack(), 0);
    let stampers: Vec<_> = (0..3)
        .map(|slot| {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                for _ in 0..30_000 {
                    clock.commit_stamp(slot);
                }
            })
        })
        .collect();
    for _ in 0..30_000 {
        let snapshot = clock.now(3);
        let stamp = clock.commit_stamp(3);
        assert!(
            stamp > snapshot,
            "stamp {stamp} must exceed the earlier now() reading {snapshot}"
        );
    }
    for s in stampers {
        s.join().expect("stamper panicked");
    }
}

/// The observable-commit-order stress: a token carrying the last observed
/// (scalar, sharded) stamp pair hops between threads; every hop draws a
/// fresh stamp from both clocks. Along this happens-before chain the two
/// clocks must agree: both strictly increase, in the same order.
#[test]
fn sharded_orders_happens_before_chains_like_scalar() {
    const THREADS: usize = 4;
    const HOPS: usize = 5_000;
    let scalar = Arc::new(ScalarClock::new());
    let sharded = Arc::new(ShardedClock::new(THREADS));
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..THREADS)
        .map(|_| mpsc::channel::<(usize, u64, u64)>())
        .unzip();
    let handles: Vec<_> = receivers
        .into_iter()
        .enumerate()
        .map(|(slot, rx)| {
            let scalar = Arc::clone(&scalar);
            let sharded = Arc::clone(&sharded);
            let next = senders[(slot + 1) % THREADS].clone();
            std::thread::spawn(move || {
                while let Ok((hops_left, last_scalar, last_sharded)) = rx.recv() {
                    if hops_left == 0 {
                        // Shutdown token: pass it around the ring once.
                        let _ = next.send((0, last_scalar, last_sharded));
                        return;
                    }
                    let s = scalar.commit_stamp(slot);
                    let sh = sharded.commit_stamp(slot);
                    assert!(
                        s > last_scalar && sh > last_sharded,
                        "both clocks must advance along the happens-before chain \
                         (scalar {last_scalar} -> {s}, sharded {last_sharded} -> {sh})"
                    );
                    let _ = next.send((hops_left - 1, s, sh));
                }
            })
        })
        .collect();
    senders[0].send((HOPS, 0, 0)).expect("seed the ring");
    drop(senders);
    for handle in handles {
        handle.join().expect("ring thread panicked");
    }
}

#[test]
fn causal_view_matches_scalar_order() {
    // As a CausalTimeBase, ShardedClock is a Lamport clock: the causal
    // comparison of any two stamps equals their numeric order.
    let clock = ShardedClock::new(2);
    let a = clock.commit_stamp(0);
    let b = clock.commit_stamp(1);
    assert_eq!(a.causal_cmp(&b), ClockOrd::Before);
    assert_eq!(b.causal_cmp(&a), ClockOrd::After);
    let mut joined = CausalTimeBase::zero(&clock);
    joined.join(&a);
    joined.join(&b);
    assert_eq!(joined, b, "join is max for scalar stamps");
}

proptest! {
    /// Stamps drawn sequentially from arbitrary slots strictly increase
    /// (program order is happens-before), and every stamp decomposes into
    /// the shard the slot maps to.
    #[test]
    fn program_order_is_strictly_increasing(
        slots in proptest::collection::vec(0usize..16, 1..200),
        shard_count in 1usize..9,
    ) {
        let clock = ShardedClock::new(shard_count);
        let shards = clock.shards();
        prop_assert!(shards.is_power_of_two());
        let mut last = 0u64;
        for slot in slots {
            let snapshot = clock.now(slot);
            let stamp = clock.commit_stamp(slot);
            prop_assert!(stamp > last, "stamp {} after {}", stamp, last);
            prop_assert!(stamp > snapshot, "stamp {} vs snapshot {}", stamp, snapshot);
            let (_, shard) = clock.decompose(stamp);
            prop_assert_eq!(shard, slot % shards);
            last = stamp;
        }
    }

    /// `now` is monotone and never decreases as stamps are drawn.
    #[test]
    fn now_is_monotone(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let clock = ShardedClock::new(4);
        let mut last_now = 0u64;
        for (i, is_commit) in ops.into_iter().enumerate() {
            if is_commit {
                clock.commit_stamp(i % 7);
            }
            let now = clock.now(i % 7);
            prop_assert!(now >= last_now, "now went backwards: {} -> {}", last_now, now);
            last_now = now;
        }
    }
}
