use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use zstm_util::CachePadded;

use crate::{CausalStamp, CausalTimeBase, ClockOrd};

/// An r-entry-vector ("REV") plausible clock for `n` logical threads
/// (Section 4.3 of the paper, after Torres-Rojas & Ahamad).
///
/// Timestamps are vectors of `r ≤ n` entries; thread `i` owns entry
/// `i mod r` (the *modulo-r mapping* the paper studies). Because entries may
/// be shared between threads, advancing a component uses an atomic
/// get-and-increment on a shared counter so that two threads can never
/// generate the same timestamp.
///
/// The two extremes recover the other time bases of the paper:
///
/// * `r = n` ([`RevClock::vector`]) is a classical Fidge/Mattern **vector
///   clock**: `causal_cmp` characterizes causality exactly;
/// * `r = 1` ([`RevClock::scalar`]) degenerates to a single shared counter,
///   i.e. a Lamport-style scalar logical clock — exactly the single-clock
///   TBTM of Section 2, which orders *everything* and therefore reports no
///   concurrency at all.
///
/// For `1 < r < n` the clock is *plausible*: causally related events are
/// always ordered correctly, but some concurrent events are reported as
/// ordered, which in an STM shows up as unnecessary aborts (tested in this
/// module and measured by the `clocks` benchmark).
///
/// # Examples
///
/// ```
/// use zstm_clock::{CausalStamp, CausalTimeBase, ClockOrd, RevClock};
///
/// let clock = RevClock::new(4, 2); // 4 threads share 2 entries
/// let mut a = clock.zero();
/// clock.advance(0, &mut a);        // thread 0 → entry 0
/// let mut b = clock.zero();
/// clock.advance(1, &mut b);        // thread 1 → entry 1
/// assert_eq!(a.causal_cmp(&b), ClockOrd::Concurrent);
///
/// let mut c = a.clone();
/// c.join(&b);                      // c has seen both
/// clock.advance(0, &mut c);
/// assert!(a.precedes(&c) && b.precedes(&c));
/// ```
pub struct RevClock {
    entries: Vec<CachePadded<AtomicU64>>,
    slots: usize,
}

impl RevClock {
    /// Creates a REV clock for `slots` logical threads with `entries`
    /// shared vector entries (`r = entries`).
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `entries` is zero, or if `entries > slots`
    /// (extra entries could never be advanced and would be dead weight).
    pub fn new(slots: usize, entries: usize) -> Self {
        assert!(slots > 0, "a clock needs at least one thread slot");
        assert!(entries > 0, "a REV clock needs at least one entry");
        assert!(
            entries <= slots,
            "r = {entries} entries exceeds n = {slots} threads"
        );
        Self {
            entries: (0..entries)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            slots,
        }
    }

    /// A full vector clock: one entry per thread (`r = n`).
    pub fn vector(slots: usize) -> Self {
        Self::new(slots, slots)
    }

    /// A single-entry clock (`r = 1`): the Lamport/scalar degenerate case.
    pub fn scalar(slots: usize) -> Self {
        Self::new(slots, 1)
    }

    /// Number of vector entries (`r`).
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// The entry owned by thread `slot` under the modulo-r mapping.
    pub fn entry_of(&self, slot: usize) -> usize {
        slot % self.entries.len()
    }
}

impl fmt::Debug for RevClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RevClock")
            .field("slots", &self.slots)
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl CausalTimeBase for RevClock {
    type Stamp = RevStamp;

    fn slots(&self) -> usize {
        self.slots
    }

    fn zero(&self) -> RevStamp {
        RevStamp {
            components: vec![0; self.entries.len()].into_boxed_slice(),
        }
    }

    /// Advances thread `slot`'s entry with a get-and-increment on the shared
    /// counter, storing the fresh (globally unique for this entry) value in
    /// `stamp`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.slots()` or if `stamp` was created by a clock
    /// with a different entry count.
    fn advance(&self, slot: usize, stamp: &mut RevStamp) {
        assert!(slot < self.slots, "slot {slot} out of range");
        assert_eq!(
            stamp.components.len(),
            self.entries.len(),
            "stamp entry count does not match this clock"
        );
        let entry = self.entry_of(slot);
        let fresh = self.entries[entry].fetch_add(1, Ordering::AcqRel) + 1;
        // The shared counter only grows, so `fresh` exceeds every value any
        // stamp can have observed for this entry, including ours.
        debug_assert!(fresh > stamp.components[entry]);
        stamp.components[entry] = fresh;
    }
}

/// A timestamp produced by a [`RevClock`].
///
/// Comparison follows the vector-timestamp rules (1)–(3) of Section 4; with
/// shared entries the result is *plausible* rather than exact (concurrent
/// events may be reported ordered, never the reverse).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RevStamp {
    components: Box<[u64]>,
}

impl RevStamp {
    /// Read-only view of the vector components.
    pub fn components(&self) -> &[u64] {
        &self.components
    }

    /// Size of this timestamp in vector entries (`r`).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the timestamp has no vector entries (`r == 0`,
    /// never the case for stamps produced by a [`RevClock`]).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Returns `true` for the zero timestamp.
    pub fn is_zero(&self) -> bool {
        self.components.iter().all(|&c| c == 0)
    }
}

impl fmt::Debug for RevStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RevStamp{:?}", self.components)
    }
}

impl CausalStamp for RevStamp {
    fn causal_cmp(&self, other: &Self) -> ClockOrd {
        assert_eq!(
            self.components.len(),
            other.components.len(),
            "comparing stamps from different clocks"
        );
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.components.iter().zip(other.components.iter()) {
            if a < b {
                less = true;
            } else if a > b {
                greater = true;
            }
        }
        match (less, greater) {
            (false, false) => ClockOrd::Equal,
            (true, false) => ClockOrd::Before,
            (false, true) => ClockOrd::After,
            (true, true) => ClockOrd::Concurrent,
        }
    }

    fn join(&mut self, other: &Self) {
        assert_eq!(
            self.components.len(),
            other.components.len(),
            "joining stamps from different clocks"
        );
        for (a, b) in self.components.iter_mut().zip(other.components.iter()) {
            *a = (*a).max(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(values: &[u64]) -> RevStamp {
        RevStamp {
            components: values.to_vec().into_boxed_slice(),
        }
    }

    #[test]
    fn comparison_rules_of_section_4() {
        // Rule (1): equality is component-wise.
        assert_eq!(stamp(&[1, 2]).causal_cmp(&stamp(&[1, 2])), ClockOrd::Equal);
        // Rule (3): strict precedence.
        assert_eq!(stamp(&[1, 2]).causal_cmp(&stamp(&[1, 3])), ClockOrd::Before);
        assert_eq!(stamp(&[4, 2]).causal_cmp(&stamp(&[1, 2])), ClockOrd::After);
        // Concurrency.
        assert_eq!(
            stamp(&[1, 0]).causal_cmp(&stamp(&[0, 1])),
            ClockOrd::Concurrent
        );
    }

    #[test]
    fn join_is_elementwise_max() {
        let mut a = stamp(&[1, 5, 0]);
        a.join(&stamp(&[3, 2, 0]));
        assert_eq!(a.components(), &[3, 5, 0]);
    }

    #[test]
    fn advance_makes_stamp_strictly_greater() {
        let clock = RevClock::vector(3);
        let mut a = clock.zero();
        clock.advance(1, &mut a);
        let before = a.clone();
        clock.advance(1, &mut a);
        assert!(before.precedes(&a));
    }

    #[test]
    fn vector_clock_detects_concurrency() {
        let clock = RevClock::vector(2);
        let mut a = clock.zero();
        let mut b = clock.zero();
        clock.advance(0, &mut a);
        clock.advance(1, &mut b);
        assert!(a.concurrent_with(&b));
    }

    #[test]
    fn scalar_clock_orders_everything() {
        let clock = RevClock::scalar(4);
        let mut a = clock.zero();
        let mut b = clock.zero();
        clock.advance(0, &mut a);
        clock.advance(3, &mut b); // same shared entry
        assert!(a.causal_cmp(&b).is_ordered());
    }

    #[test]
    fn shared_entries_never_generate_equal_stamps() {
        let clock = RevClock::new(4, 2);
        let mut a = clock.zero();
        let mut b = clock.zero();
        clock.advance(0, &mut a); // entry 0
        clock.advance(2, &mut b); // entry 0 as well
        assert_ne!(a, b);
    }

    #[test]
    fn entry_mapping_is_modulo_r() {
        let clock = RevClock::new(5, 2);
        assert_eq!(clock.entry_of(0), 0);
        assert_eq!(clock.entry_of(1), 1);
        assert_eq!(clock.entry_of(2), 0);
        assert_eq!(clock.entry_of(4), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn more_entries_than_slots_rejected() {
        let _ = RevClock::new(2, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn advance_checks_slot() {
        let clock = RevClock::vector(2);
        let mut stamp = clock.zero();
        clock.advance(2, &mut stamp);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        let clock = RevClock::new(3, 2);
        assert!(format!("{clock:?}").contains("RevClock"));
        assert!(format!("{:?}", clock.zero()).contains("RevStamp"));
    }
}

/// Property tests: the plausibility conditions of Torres-Rojas & Ahamad as
/// quoted in Section 4.3, checked against an exact vector clock run in
/// lockstep over randomly generated communication histories.
#[cfg(test)]
mod plausibility_props {
    use super::*;
    use proptest::prelude::*;

    /// One step of a simulated execution: a thread either performs a local
    /// event or receives (joins) the current stamp of another thread.
    #[derive(Clone, Debug)]
    enum Step {
        Local { thread: usize },
        Receive { thread: usize, from: usize },
    }

    fn steps(threads: usize) -> impl Strategy<Value = Vec<Step>> {
        let step =
            (0..threads, 0..threads, any::<bool>()).prop_map(move |(thread, from, local)| {
                if local || thread == from {
                    Step::Local { thread }
                } else {
                    Step::Receive { thread, from }
                }
            });
        proptest::collection::vec(step, 1..60)
    }

    /// Runs `steps` under both an exact vector clock and an `r`-entry REV
    /// clock, producing for every *event* the pair of stamps.
    fn run(threads: usize, r: usize, steps: &[Step]) -> Vec<(RevStamp, RevStamp)> {
        let exact = RevClock::vector(threads);
        let plausible = RevClock::new(threads, r);
        let mut exact_state: Vec<RevStamp> = (0..threads).map(|_| exact.zero()).collect();
        let mut plaus_state: Vec<RevStamp> = (0..threads).map(|_| plausible.zero()).collect();
        let mut events = Vec::new();
        for step in steps {
            match *step {
                Step::Local { thread } => {
                    let mut e = exact_state[thread].clone();
                    exact.advance(thread, &mut e);
                    exact_state[thread] = e;
                    let mut p = plaus_state[thread].clone();
                    plausible.advance(thread, &mut p);
                    plaus_state[thread] = p;
                }
                Step::Receive { thread, from } => {
                    let sender_exact = exact_state[from].clone();
                    let sender_plaus = plaus_state[from].clone();
                    exact_state[thread].join(&sender_exact);
                    let mut e = exact_state[thread].clone();
                    exact.advance(thread, &mut e);
                    exact_state[thread] = e;
                    plaus_state[thread].join(&sender_plaus);
                    let mut p = plaus_state[thread].clone();
                    plausible.advance(thread, &mut p);
                    plaus_state[thread] = p;
                }
            }
            events.push((
                exact_state[match *step {
                    Step::Local { thread } | Step::Receive { thread, .. } => thread,
                }]
                .clone(),
                plaus_state[match *step {
                    Step::Local { thread } | Step::Receive { thread, .. } => thread,
                }]
                .clone(),
            ));
        }
        events
    }

    proptest! {
        /// P1/P2/P3: the plausible clock orders causally related events
        /// correctly, and never *reverses* an order — `ei → ej` implies the
        /// REV comparison is Before (it may not report Concurrent for truly
        /// ordered events generated by join-then-advance chains, because the
        /// shared counters only grow along causal paths).
        #[test]
        fn plausible_never_contradicts_causality(
            steps in steps(5),
            r in 1usize..=5,
        ) {
            let events = run(5, r, &steps);
            for (i, (exact_i, plaus_i)) in events.iter().enumerate() {
                for (exact_j, plaus_j) in events.iter().skip(i + 1) {
                    match exact_i.causal_cmp(exact_j) {
                        ClockOrd::Before => {
                            prop_assert_eq!(
                                plaus_i.causal_cmp(plaus_j), ClockOrd::Before,
                                "causally ordered events must stay ordered"
                            );
                        }
                        ClockOrd::After => {
                            prop_assert_eq!(plaus_i.causal_cmp(plaus_j), ClockOrd::After);
                        }
                        _ => {}
                    }
                }
            }
        }

        /// P4: if the plausible clock says Concurrent, the events really are
        /// concurrent.
        #[test]
        fn plausible_concurrency_is_sound(
            steps in steps(5),
            r in 1usize..=5,
        ) {
            let events = run(5, r, &steps);
            for (i, (exact_i, plaus_i)) in events.iter().enumerate() {
                for (exact_j, plaus_j) in events.iter().skip(i + 1) {
                    if plaus_i.causal_cmp(plaus_j) == ClockOrd::Concurrent {
                        prop_assert_eq!(
                            exact_i.causal_cmp(exact_j), ClockOrd::Concurrent,
                            "plausible Concurrent must imply true concurrency"
                        );
                    }
                }
            }
        }

        /// With r = n the REV clock *is* a vector clock: the verdicts agree
        /// exactly on every pair of events.
        #[test]
        fn full_rev_equals_vector_clock(steps in steps(4)) {
            let events = run(4, 4, &steps);
            for (i, (exact_i, plaus_i)) in events.iter().enumerate() {
                for (exact_j, plaus_j) in events.iter().skip(i + 1) {
                    prop_assert_eq!(
                        exact_i.causal_cmp(exact_j),
                        plaus_i.causal_cmp(plaus_j)
                    );
                }
            }
        }

        /// Join laws: idempotent, commutative, associative, monotone.
        #[test]
        fn join_lattice_laws(
            a in proptest::collection::vec(0u64..50, 4),
            b in proptest::collection::vec(0u64..50, 4),
            c in proptest::collection::vec(0u64..50, 4),
        ) {
            let s = |v: &Vec<u64>| RevStamp { components: v.clone().into_boxed_slice() };
            let (sa, sb, sc) = (s(&a), s(&b), s(&c));

            let mut idem = sa.clone();
            idem.join(&sa);
            prop_assert_eq!(&idem, &sa);

            let mut ab = sa.clone();
            ab.join(&sb);
            let mut ba = sb.clone();
            ba.join(&sa);
            prop_assert_eq!(&ab, &ba);

            let mut ab_c = ab.clone();
            ab_c.join(&sc);
            let mut bc = sb.clone();
            bc.join(&sc);
            let mut a_bc = sa.clone();
            a_bc.join(&bc);
            prop_assert_eq!(&ab_c, &a_bc);

            // a ⊑ a ⊔ b
            let cmp = sa.causal_cmp(&ab);
            prop_assert!(cmp == ClockOrd::Equal || cmp == ClockOrd::Before);
        }

        /// Antisymmetry of the comparison: cmp(a, b) is always the reverse
        /// of cmp(b, a).
        #[test]
        fn cmp_antisymmetry(
            a in proptest::collection::vec(0u64..10, 3),
            b in proptest::collection::vec(0u64..10, 3),
        ) {
            let s = |v: &Vec<u64>| RevStamp { components: v.clone().into_boxed_slice() };
            let (sa, sb) = (s(&a), s(&b));
            prop_assert_eq!(sa.causal_cmp(&sb), sb.causal_cmp(&sa).reverse());
        }
    }
}
