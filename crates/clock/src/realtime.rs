use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use zstm_util::{CachePadded, XorShift64};

use crate::TimeBase;

/// Synchronized real-time clocks with a bounded deviation between them
/// (Section 2 and reference \[9\] of the paper), *simulated* in software.
///
/// The paper observes that real-time clocks scale much better than a shared
/// counter because threads do not contend on a single cache line, but that
/// software clocks can only be *internally* synchronized: each thread's
/// clock may deviate from true time by up to a bound, and "the probability
/// of spurious aborts increases with the deviation of clocks".
///
/// Real deployments would read a hardware clock per core. We do not have
/// per-core hardware clocks (nor the paper's UltraSPARC T1), so this type
/// substitutes them with:
///
/// * one process-wide monotonic nanosecond source ([`Instant`]) as "true"
///   time, and
/// * a fixed per-slot offset drawn uniformly from `[-deviation, 0]`, so a
///   thread's [`TimeBase::now`] may *lag* true time by up to the deviation
///   bound (a lagging snapshot time is what causes spurious aborts; a clock
///   running ahead would instead delay commit visibility, which the fetch-max
///   in [`TimeBase::commit_stamp`] already rules out).
///
/// This preserves exactly the behaviour that matters to a TBTM: snapshot
/// times may be stale by at most the deviation, and commit stamps remain
/// unique and monotonic. The substitution is recorded in `ARCHITECTURE.md` (design notes).
///
/// # Examples
///
/// ```
/// use zstm_clock::{SimRealTimeClock, TimeBase};
///
/// let clock = SimRealTimeClock::new(4, 0, 42); // 4 threads, no skew
/// let t1 = clock.commit_stamp(0);
/// let t2 = clock.commit_stamp(2);
/// assert!(t2 > t1);
/// ```
#[derive(Debug)]
pub struct SimRealTimeClock {
    origin: Instant,
    /// Per-slot clock lag in nanoseconds (`now` = true time − lag).
    lags: Vec<CachePadded<u64>>,
    /// Largest commit stamp handed out so far; enforces uniqueness.
    last_commit: CachePadded<AtomicU64>,
    deviation_ns: u64,
}

impl SimRealTimeClock {
    /// Creates a clock set for `slots` logical threads whose per-thread
    /// deviation from true time is bounded by `deviation_ns` nanoseconds.
    /// `seed` makes the per-thread offsets reproducible.
    pub fn new(slots: usize, deviation_ns: u64, seed: u64) -> Self {
        let mut rng = XorShift64::new(seed);
        let lags = (0..slots)
            .map(|_| {
                let lag = if deviation_ns == 0 {
                    0
                } else {
                    rng.next_range(deviation_ns + 1)
                };
                CachePadded::new(lag)
            })
            .collect();
        Self {
            origin: Instant::now(),
            lags,
            last_commit: CachePadded::new(AtomicU64::new(0)),
            deviation_ns,
        }
    }

    /// The configured bound on clock deviation, in nanoseconds.
    pub fn deviation_ns(&self) -> u64 {
        self.deviation_ns
    }

    /// Number of logical threads this clock serves.
    pub fn slots(&self) -> usize {
        self.lags.len()
    }

    fn true_now(&self) -> u64 {
        // Nanoseconds since clock creation; a u64 lasts ~584 years.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl TimeBase for SimRealTimeClock {
    /// Reads thread `slot`'s (possibly lagging) clock.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    fn now(&self, slot: usize) -> u64 {
        let lag = *self.lags[slot];
        self.true_now().saturating_sub(lag)
    }

    /// Waits for the local clock to tick past the last observed commit time,
    /// mirroring the "wait one clock tick" rule of Section 2, and returns a
    /// unique stamp.
    fn commit_stamp(&self, slot: usize) -> u64 {
        let local = self.now(slot);
        // A commit stamp must exceed every earlier one even if this thread's
        // clock lags; the fetch-max loop stands in for waiting out the tick.
        let mut last = self.last_commit.load(Ordering::Acquire);
        loop {
            let candidate = local.max(last + 1);
            match self.last_commit.compare_exchange_weak(
                last,
                candidate,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return candidate,
                Err(seen) => last = seen,
            }
        }
    }

    fn snapshot_slack(&self) -> u64 {
        self.deviation_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_deviation_clock_is_monotonic() {
        let clock = SimRealTimeClock::new(2, 0, 1);
        let a = clock.now(0);
        let b = clock.now(1);
        assert!(b + 1_000_000_000 > a); // same time source, no skew
        let c1 = clock.commit_stamp(0);
        let c2 = clock.commit_stamp(1);
        assert!(c2 > c1);
    }

    #[test]
    fn skewed_clock_lags_by_at_most_the_bound() {
        let deviation = 1_000_000; // 1 ms
        let clock = SimRealTimeClock::new(8, deviation, 7);
        for slot in 0..8 {
            let observed = clock.now(slot);
            let truth = clock.now_truth_for_test();
            assert!(truth >= observed);
            assert!(
                truth - observed <= deviation + 1_000_000,
                "slack for elapsed time"
            );
        }
    }

    #[test]
    fn commit_stamps_unique_across_threads() {
        let clock = Arc::new(SimRealTimeClock::new(4, 10_000, 3));
        let handles: Vec<_> = (0..4)
            .map(|slot| {
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || {
                    (0..500)
                        .map(|_| clock.commit_stamp(slot))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut stamps: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("clock thread panicked"))
            .collect();
        stamps.sort_unstable();
        let len = stamps.len();
        stamps.dedup();
        assert_eq!(stamps.len(), len, "duplicate commit stamps");
    }

    impl SimRealTimeClock {
        fn now_truth_for_test(&self) -> u64 {
            self.true_now()
        }
    }
}
