use core::fmt::Debug;

use crate::ClockOrd;

/// A linearizable scalar time base for a TBTM (Section 2 of the paper).
///
/// Implementations must guarantee that
/// * [`TimeBase::commit_stamp`] returns globally unique, strictly increasing
///   values (this is what makes the time base linearizable), and
/// * [`TimeBase::now`] never runs ahead of the latest commit stamp *plus the
///   implementation's advertised deviation bound* — a perfectly synchronized
///   implementation such as [`crate::ScalarClock`] simply never runs ahead.
///
/// The `slot` argument identifies the calling logical thread so that
/// implementations with per-thread state (skewed real-time clocks) can look
/// up their component; implementations with one global notion of time ignore
/// it.
pub trait TimeBase: Send + Sync + 'static {
    /// Reads the current time as perceived by logical thread `slot`.
    fn now(&self, slot: usize) -> u64;

    /// Acquires a fresh commit timestamp for an update transaction committed
    /// by logical thread `slot`.
    ///
    /// The returned value is strictly greater than every previously returned
    /// commit stamp, which models the "acquire a new commit time or wait one
    /// clock tick" step of Section 2.
    fn commit_stamp(&self, slot: usize) -> u64;

    /// Upper bound on how far a [`TimeBase::now`] reading may lag behind a
    /// commit stamp drawn later by another thread.
    ///
    /// Perfectly synchronized time bases return 0. Internally synchronized
    /// real-time clocks return their deviation bound; STMs subtract this
    /// slack from snapshot times so that versions committed "in the skew
    /// window" cannot invalidate an already-taken snapshot (the cost is the
    /// paper's higher spurious-abort probability under skew).
    fn snapshot_slack(&self) -> u64 {
        0
    }
}

/// A timestamp drawn from a partially ordered (vector-like) time base.
///
/// The operations mirror what Algorithm 1 of the paper needs: element-wise
/// maximum (`join`), the four-way comparison of Section 4, and the derived
/// strict order `≺`.
pub trait CausalStamp: Clone + Debug + PartialEq + Eq + Send + Sync + 'static {
    /// Compares two timestamps under the partial order of the time base.
    fn causal_cmp(&self, other: &Self) -> ClockOrd;

    /// In-place element-wise maximum: `self ← max(self, other)` (line 8 of
    /// Algorithm 1).
    fn join(&mut self, other: &Self);

    /// Returns `true` iff `self ≺ other` (strictly precedes).
    fn precedes(&self, other: &Self) -> bool {
        self.causal_cmp(other) == ClockOrd::Before
    }

    /// Returns `true` iff neither timestamp precedes the other.
    fn concurrent_with(&self, other: &Self) -> bool {
        self.causal_cmp(other) == ClockOrd::Concurrent
    }
}

/// A causality-tracking time base (Section 4 of the paper).
///
/// A `CausalTimeBase` is shared by `slots()` logical threads. Each thread
/// carries timestamps of type [`CausalTimeBase::Stamp`] and advances *its
/// own component* when it commits; components may be shared between threads
/// (plausible clocks), in which case the implementation must use an atomic
/// get-and-increment so two threads never generate the same timestamp
/// (Section 4.3).
pub trait CausalTimeBase: Send + Sync + 'static {
    /// Timestamp type produced by this time base.
    type Stamp: CausalStamp;

    /// Number of logical threads sharing this time base.
    fn slots(&self) -> usize;

    /// The all-zero timestamp that precedes or equals every other stamp.
    fn zero(&self) -> Self::Stamp;

    /// Advances the component owned by `slot` within `stamp`, making the
    /// stamp strictly greater than any stamp previously generated for that
    /// component (line 29 of Algorithm 1).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `slot >= self.slots()`.
    fn advance(&self, slot: usize, stamp: &mut Self::Stamp);
}
