use std::sync::atomic::{AtomicU64, Ordering};

use zstm_util::CachePadded;

use crate::TimeBase;

/// The simplest linearizable time base: a global shared integer counter
/// (Section 2 of the paper).
///
/// Reading the counter yields the current time; acquiring a commit stamp
/// atomically increments it, which models progress in the TBTM. The paper
/// notes that this scheme "does not scale well in larger systems because of
/// contention and cache misses" — the counter is cache-padded so that the
/// contention benchmarks measure the inherent cost of the shared counter,
/// not incidental false sharing with neighbouring data.
///
/// # Examples
///
/// ```
/// use zstm_clock::{ScalarClock, TimeBase};
///
/// let clock = ScalarClock::new();
/// assert_eq!(clock.now(0), 0);
/// let commit = clock.commit_stamp(0);
/// assert_eq!(commit, 1);
/// assert_eq!(clock.now(3), 1); // every thread sees the same time
/// ```
#[derive(Debug, Default)]
pub struct ScalarClock {
    counter: CachePadded<AtomicU64>,
}

impl ScalarClock {
    /// Creates a counter starting at time zero.
    pub fn new() -> Self {
        Self::starting_at(0)
    }

    /// Creates a counter starting at an arbitrary time, useful in tests that
    /// need to place versions "in the past".
    pub fn starting_at(time: u64) -> Self {
        Self {
            counter: CachePadded::new(AtomicU64::new(time)),
        }
    }
}

impl TimeBase for ScalarClock {
    fn now(&self, _slot: usize) -> u64 {
        self.counter.load(Ordering::Acquire)
    }

    fn commit_stamp(&self, _slot: usize) -> u64 {
        self.counter.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn commit_stamps_are_unique_and_increasing() {
        let clock = ScalarClock::new();
        let a = clock.commit_stamp(0);
        let b = clock.commit_stamp(1);
        let c = clock.commit_stamp(0);
        assert!(a < b && b < c);
    }

    #[test]
    fn now_reflects_commits() {
        let clock = ScalarClock::starting_at(10);
        assert_eq!(clock.now(0), 10);
        clock.commit_stamp(0);
        assert_eq!(clock.now(1), 11);
    }

    #[test]
    fn concurrent_commit_stamps_never_collide() {
        let clock = Arc::new(ScalarClock::new());
        let threads: Vec<_> = (0..4)
            .map(|slot| {
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || {
                    (0..1000)
                        .map(|_| clock.commit_stamp(slot))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().expect("clock thread panicked"))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
