use core::fmt;

/// Outcome of comparing two (possibly partially ordered) timestamps.
///
/// For vector timestamps these are exactly the comparison rules of Section 4
/// of the paper: equality is component-wise equality, `Before`/`After` are
/// the strict component-wise orders, and everything else is `Concurrent`
/// (`ti ⊀ tj ∧ tj ⊀ ti`).
///
/// # Examples
///
/// ```
/// use zstm_clock::ClockOrd;
///
/// assert!(ClockOrd::Before.is_ordered());
/// assert!(!ClockOrd::Concurrent.is_ordered());
/// assert_eq!(ClockOrd::Before.reverse(), ClockOrd::After);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClockOrd {
    /// The timestamps are identical.
    Equal,
    /// The left timestamp strictly precedes the right one (`ti ≺ tj`).
    Before,
    /// The left timestamp strictly follows the right one (`tj ≺ ti`).
    After,
    /// Neither precedes the other: the events are (reported as) concurrent.
    Concurrent,
}

impl ClockOrd {
    /// Returns `true` unless the comparison is [`ClockOrd::Concurrent`].
    pub fn is_ordered(self) -> bool {
        !matches!(self, ClockOrd::Concurrent)
    }

    /// Swaps the roles of the two compared timestamps.
    pub fn reverse(self) -> Self {
        match self {
            ClockOrd::Before => ClockOrd::After,
            ClockOrd::After => ClockOrd::Before,
            other => other,
        }
    }
}

impl fmt::Display for ClockOrd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let symbol = match self {
            ClockOrd::Equal => "=",
            ClockOrd::Before => "<",
            ClockOrd::After => ">",
            ClockOrd::Concurrent => "||",
        };
        f.write_str(symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involutive() {
        for ord in [
            ClockOrd::Equal,
            ClockOrd::Before,
            ClockOrd::After,
            ClockOrd::Concurrent,
        ] {
            assert_eq!(ord.reverse().reverse(), ord);
        }
    }

    #[test]
    fn ordered_classification() {
        assert!(ClockOrd::Equal.is_ordered());
        assert!(ClockOrd::Before.is_ordered());
        assert!(ClockOrd::After.is_ordered());
        assert!(!ClockOrd::Concurrent.is_ordered());
    }

    #[test]
    fn display_symbols() {
        assert_eq!(ClockOrd::Concurrent.to_string(), "||");
        assert_eq!(ClockOrd::Before.to_string(), "<");
    }
}
