//! Time bases for time-based transactional memories (TBTMs).
//!
//! Section 2 of the paper surveys the design space of *global time bases*
//! that TBTMs reason with, and Section 4 extends it towards causality
//! tracking. This crate implements all of them behind two small traits:
//!
//! * [`TimeBase`] — a *linearizable scalar* notion of time: reading the
//!   current time and acquiring a fresh, globally unique commit stamp.
//!   Implementations:
//!   * [`ScalarClock`] — the classic shared integer counter (cheap, but
//!     contended; used by LSA, TL2 and Z-STM's underlying LSA),
//!   * [`ShardedClock`] — per-shard epoch counters with a cheap global
//!     bound: commit stamps are `(epoch, shard)` pairs packed into one
//!     `u64`, so the hot read-modify-write lands on a shard-private cache
//!     line while snapshot reads still see one global notion of time. It
//!     also implements [`CausalTimeBase`] with scalar stamps (a Lamport
//!     clock), so all five STMs accept it,
//!   * [`SimRealTimeClock`] — synchronized real-time clocks with bounded
//!     deviation, as proposed in the paper's reference \[9\]. Real systems
//!     would use hardware clocks; we *simulate* them with a monotonic
//!     process-wide nanosecond source plus a configurable per-thread skew,
//!     which preserves the interface and the skew-vs-spurious-abort
//!     trade-off.
//! * [`CausalTimeBase`] — *partially ordered* time built from per-thread
//!   components. The single implementation is [`RevClock`], the r-entry
//!   vector ("REV") plausible clock of Torres-Rojas & Ahamad that the paper
//!   adopts in Section 4.3, with the modulo-r mapping from threads to
//!   entries:
//!   * `RevClock::vector(n)` (r = n) is a classical Fidge/Mattern vector
//!     clock: causality is characterized exactly;
//!   * `RevClock::new(n, r)` with `r < n` shares entries and may order
//!     concurrent events (plausibility), trading accuracy for size;
//!   * `r = 1` degenerates to a single shared counter, i.e. a Lamport-style
//!     scalar logical clock and thus exactly the single-clock TBTM.
//!
//! Timestamp comparison returns a [`ClockOrd`], the four-valued outcome of
//! the vector-timestamp rules (1)–(3) in Section 4.
//!
//! # Examples
//!
//! ```
//! use zstm_clock::{CausalStamp, CausalTimeBase, ClockOrd, RevClock, ScalarClock, TimeBase};
//!
//! // Scalar time base: commit stamps are unique and increasing.
//! let clock = ScalarClock::new();
//! let t1 = clock.commit_stamp(0);
//! let t2 = clock.commit_stamp(1);
//! assert!(t2 > t1);
//!
//! // Vector time base: independent threads are concurrent.
//! let vc = RevClock::vector(2);
//! let mut a = vc.zero();
//! let mut b = vc.zero();
//! vc.advance(0, &mut a);
//! vc.advance(1, &mut b);
//! assert_eq!(a.causal_cmp(&b), ClockOrd::Concurrent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod order;
mod realtime;
mod rev;
mod scalar;
mod sharded;
mod traits;

pub use order::ClockOrd;
pub use realtime::SimRealTimeClock;
pub use rev::{RevClock, RevStamp};
pub use scalar::ScalarClock;
pub use sharded::ShardedClock;
pub use traits::{CausalStamp, CausalTimeBase, TimeBase};
