use std::sync::atomic::{AtomicU64, Ordering};

use zstm_util::CachePadded;

use crate::{CausalStamp, CausalTimeBase, ClockOrd, TimeBase};

/// A sharded linearizable time base: per-shard epoch counters plus one
/// cheap global epoch bound.
///
/// [`crate::ScalarClock`] serializes every commit on a single `fetch_add`
/// word, which the paper already flags as the scalability limit of
/// single-clock TBTMs ("does not scale well in larger systems because of
/// contention and cache misses"). `ShardedClock` splits the counter:
///
/// * every logical thread maps to one of `shards()` cache-padded *shard*
///   counters (`slot % shards()`), so the read-modify-write of a commit
///   stamp lands on a line that is private to the shard in the common
///   1-thread-per-shard configuration;
/// * a stamp is the pair `(epoch, shard)` packed into one `u64` as
///   `epoch << shard_bits | shard`, which makes stamps globally unique
///   without any cross-shard coordination;
/// * a single *global bound* tracks the highest published epoch. Drawing a
///   stamp picks `epoch = max(own shard epoch, bound) + 1` and then raises
///   the bound to `epoch` with a compare-exchange loop whose fast path is a
///   plain load (when the bound has already caught up, nothing is written).
///   Under contention many shards draw stamps in the same epoch window and
///   only one of them actually writes the bound, so the shared line is
///   mostly read — in contrast to `fetch_add`, which dirties it on every
///   commit.
///
/// # Why this is still a valid [`TimeBase`]
///
/// * **Uniqueness** — the shard bits differ between shards, and within a
///   shard the epoch is advanced with a compare-exchange loop, so no two
///   `commit_stamp` calls return the same value.
/// * **Monotonicity along happens-before** — `commit_stamp` returns an
///   epoch strictly greater than the bound it read, and publishes that
///   epoch to the bound *before returning*. Any later stamp draw that
///   happens-after it (same thread, or through the STM's per-object
///   synchronization: a writer only draws its stamp while holding the
///   object's reservation) therefore reads a bound at least as large and
///   returns a strictly larger stamp. This is exactly the property the
///   STMs' version lists need: commit times strictly increase along every
///   object's version chain.
/// * **`now` never runs ahead** — `now` returns the largest stamp of the
///   current bound epoch (`bound << shard_bits | shard_mask`). Every stamp
///   drawn after that read uses an epoch strictly above the bound, so a
///   snapshot taken at `now()` can never be invalidated by a later commit;
///   the slack is 0, like [`crate::ScalarClock`]. The returned value may
///   exceed the largest stamp *issued so far* by up to `shards() - 1`
///   sub-epoch steps, which is harmless: no commit stamp ever lands in
///   that gap.
///
/// # As a causal time base
///
/// `ShardedClock` also implements [`CausalTimeBase`] with plain `u64`
/// stamps under their total order, so CS-STM and S-STM accept it directly.
/// Semantically this is a Lamport-style scalar logical clock — the
/// degenerate `r = 1` point of the REV-clock design space (Section 4.3 of
/// the paper): every pair of stamps is ordered, which is always *safe*
/// (ordering concurrent transactions costs spurious aborts, never
/// correctness) while commits scale across shards.
///
/// # Examples
///
/// ```
/// use zstm_clock::{ShardedClock, TimeBase};
///
/// let clock = ShardedClock::new(4);
/// let a = clock.commit_stamp(0);
/// let b = clock.commit_stamp(3); // different shard, same time base
/// assert!(b > a, "stamps drawn in sequence strictly increase");
/// assert!(clock.now(1) < clock.commit_stamp(1));
/// ```
#[derive(Debug)]
pub struct ShardedClock {
    /// Highest epoch any shard has published.
    bound: CachePadded<AtomicU64>,
    /// Last epoch issued per shard.
    shards: Box<[CachePadded<AtomicU64>]>,
    /// `log2(shards.len())`: stamps are `epoch << shard_bits | shard`.
    shard_bits: u32,
}

impl ShardedClock {
    /// Creates a clock serving at least `slots` logical threads.
    ///
    /// The shard count is `slots` rounded up to a power of two so the
    /// slot-to-shard mapping is a mask; each shard counter lives on its own
    /// cache line. `slots = 0` is treated as 1.
    pub fn new(slots: usize) -> Self {
        let shards = slots.max(1).next_power_of_two();
        Self {
            bound: CachePadded::new(AtomicU64::new(0)),
            shards: (0..shards)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            shard_bits: shards.trailing_zeros(),
        }
    }

    /// Number of shards (a power of two).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The current global epoch bound (diagnostics).
    pub fn bound_epoch(&self) -> u64 {
        self.bound.load(Ordering::Acquire)
    }

    /// Splits a stamp into `(epoch, shard)` (diagnostics, tests).
    pub fn decompose(&self, stamp: u64) -> (u64, usize) {
        (
            stamp >> self.shard_bits,
            (stamp & self.shard_mask()) as usize,
        )
    }

    fn shard_mask(&self) -> u64 {
        (1u64 << self.shard_bits) - 1
    }

    /// Raises the global bound to `epoch`. The fast path (bound already
    /// caught up) is a single load, which keeps the shared line in the
    /// read-mostly state that makes the clock scale.
    fn publish(&self, epoch: u64) {
        let mut current = self.bound.load(Ordering::Acquire);
        while current < epoch {
            match self.bound.compare_exchange_weak(
                current,
                epoch,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

impl TimeBase for ShardedClock {
    fn now(&self, _slot: usize) -> u64 {
        (self.bound.load(Ordering::Acquire) << self.shard_bits) | self.shard_mask()
    }

    fn commit_stamp(&self, slot: usize) -> u64 {
        let shard_idx = slot & (self.shards.len() - 1);
        let shard = &self.shards[shard_idx];
        let mut local = shard.load(Ordering::Relaxed);
        loop {
            let bound = self.bound.load(Ordering::Acquire);
            let epoch = local.max(bound) + 1;
            match shard.compare_exchange_weak(local, epoch, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.publish(epoch);
                    return (epoch << self.shard_bits) | shard_idx as u64;
                }
                Err(observed) => local = observed,
            }
        }
    }
}

/// Scalar commit stamps under their total order: `join` is `max`, and no
/// pair is ever concurrent. This is the `r = 1` corner of the plausible
/// clock design space (a Lamport clock), used to plug scalar time bases
/// such as [`ShardedClock`] into the causally-typed STMs.
impl CausalStamp for u64 {
    fn causal_cmp(&self, other: &Self) -> ClockOrd {
        match self.cmp(other) {
            std::cmp::Ordering::Less => ClockOrd::Before,
            std::cmp::Ordering::Equal => ClockOrd::Equal,
            std::cmp::Ordering::Greater => ClockOrd::After,
        }
    }

    fn join(&mut self, other: &Self) {
        *self = (*self).max(*other);
    }
}

impl CausalTimeBase for ShardedClock {
    type Stamp = u64;

    fn slots(&self) -> usize {
        self.shards.len()
    }

    fn zero(&self) -> u64 {
        0
    }

    fn advance(&self, slot: usize, stamp: &mut u64) {
        // A fresh commit stamp exceeds every stamp joined into `stamp` so
        // far: each of those was published to the bound before it became
        // visible, and `commit_stamp` always goes strictly above the bound.
        *stamp = (*stamp).max(self.commit_stamp(slot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn stamps_increase_along_program_order_across_shards() {
        let clock = ShardedClock::new(8);
        let mut last = 0;
        for slot in [0usize, 7, 3, 3, 5, 1, 0] {
            let stamp = clock.commit_stamp(slot);
            assert!(stamp > last, "stamp {stamp} after {last}");
            last = stamp;
        }
    }

    #[test]
    fn now_is_never_invalidated_by_later_stamps() {
        let clock = ShardedClock::new(4);
        for i in 0..100 {
            let snapshot = clock.now(i % 4);
            let stamp = clock.commit_stamp((i + 1) % 4);
            assert!(stamp > snapshot);
        }
    }

    #[test]
    fn slots_beyond_shard_count_wrap() {
        let clock = ShardedClock::new(2);
        let a = clock.commit_stamp(0);
        let b = clock.commit_stamp(2); // same shard as slot 0
        let c = clock.commit_stamp(1);
        let mut stamps = [a, b, c];
        stamps.sort_unstable();
        stamps.windows(2).for_each(|w| assert!(w[0] < w[1]));
    }

    #[test]
    fn concurrent_commit_stamps_never_collide() {
        let clock = Arc::new(ShardedClock::new(4));
        let threads: Vec<_> = (0..8)
            .map(|slot| {
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || {
                    (0..2_000)
                        .map(|_| clock.commit_stamp(slot))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().expect("clock thread panicked"))
            .collect();
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len);
    }

    #[test]
    fn causal_scalar_stamps_are_totally_ordered() {
        let clock = ShardedClock::new(2);
        let mut a = CausalTimeBase::zero(&clock);
        let mut b = CausalTimeBase::zero(&clock);
        assert_eq!(a.causal_cmp(&b), ClockOrd::Equal);
        clock.advance(0, &mut a);
        assert_eq!(b.causal_cmp(&a), ClockOrd::Before);
        b.join(&a);
        clock.advance(1, &mut b);
        assert_eq!(a.causal_cmp(&b), ClockOrd::Before);
        assert!(a.precedes(&b));
    }
}
