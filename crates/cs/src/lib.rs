//! CS-STM — the causally serializable STM of the paper's Algorithm 1,
//! generic over the causal time base (exact vector clocks or plausible REV
//! clocks, Section 4.3).
//!
//! The algorithm, line for line:
//!
//! * **Start** — the tentative commit timestamp `T.ct` is initialized from
//!   the thread's vector clock `VC_p`, i.e. the timestamp of the last
//!   transaction committed by this thread (line 3);
//! * **Open** — every access joins the accessed version's timestamp into
//!   `T.ct` (element-wise maximum, line 8); writes acquire the single
//!   writer reservation, arbitrated by the contention manager
//!   (lines 10–13); reads are invisible and return the current committed
//!   version (old versions are not kept, matching the paper's footnote 1);
//! * **Validate** — at commit, for every version `vᵢ` in the read set the
//!   transaction checks that no successor `vᵢ₊₁` exists with
//!   `vᵢ₊₁.ct ≺ T.ct` (line 22): such a successor would mean the
//!   transaction both causally follows the overwrite (its timestamp
//!   dominates it) and precedes it (it read the overwritten version);
//! * **Commit** — on success the thread's component of the vector clock is
//!   incremented with an atomic get-and-increment on the (possibly shared)
//!   clock entry and the thread remembers `T.ct` as its new `VC_p`
//!   (lines 29–31).
//!
//! Because timestamps are only partially ordered, transactions that touch
//! disjoint objects commit *unordered* — this is what lets the long
//! transaction of the paper's Figure 1 commit where a single-clock TBTM
//! must abort it (see `tests/paper_figures.rs` at the workspace root).
//!
//! With a plausible clock (`r < n` entries) some concurrent transactions
//! appear ordered and abort unnecessarily, but correctness is preserved —
//! exactly the accuracy/size trade-off of Section 4.3.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use zstm_clock::RevClock;
//! use zstm_core::{atomically, RetryPolicy, StmConfig, TmFactory, TmThread, TmTx, TxKind};
//! use zstm_cs::CsStm;
//!
//! # fn main() -> Result<(), zstm_core::RetryExhausted> {
//! // Vector clock with one entry per thread:
//! let stm = Arc::new(CsStm::new(StmConfig::new(2), RevClock::vector(2)));
//! let var = stm.new_var(0i64);
//! let mut thread = stm.register_thread();
//! atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
//!     let v = tx.read(&var)?;
//!     tx.write(&var, v + 1)
//! })?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use zstm_clock::{CausalStamp, CausalTimeBase, RevClock};
use zstm_core::{
    Abort, AbortReason, ContentionManager, ObjId, StmConfig, ThreadId, TmFactory, TmThread, TmTx,
    TxEvent, TxEventKind, TxId, TxKind, TxShared, TxStats, TxStatus, TxValue, VersionSeq,
};
use zstm_util::sync::Mutex;
use zstm_util::{ArcCell, Backoff};

/// Transaction record shared through object reservations: the generic
/// descriptor plus the (vector) commit timestamp, which is published just
/// before the transaction enters its commit protocol.
pub struct StampRec<S> {
    shared: TxShared,
    stamp: Mutex<Option<S>>,
}

impl<S: Clone> StampRec<S> {
    /// Creates a record in the `Active` state (used by CS-STM and S-STM).
    pub fn new_for(thread: ThreadId, kind: TxKind, karma: u64) -> Self {
        Self {
            shared: TxShared::start(thread, kind, karma),
            stamp: Mutex::new(None),
        }
    }

    fn new(thread: ThreadId, kind: TxKind, karma: u64) -> Self {
        Self::new_for(thread, kind, karma)
    }

    /// The plain transaction descriptor.
    pub fn shared(&self) -> &TxShared {
        &self.shared
    }

    /// The committing/committed timestamp, if already published.
    pub fn stamp(&self) -> Option<S> {
        self.stamp.lock().clone()
    }

    /// Publishes the (tentative or final) commit timestamp so concurrent
    /// validators can compare against it.
    pub fn publish_stamp(&self, stamp: S) {
        *self.stamp.lock() = Some(stamp);
    }
}

struct Reservation<T, S> {
    rec: Arc<StampRec<S>>,
    tentative: T,
}

struct Inner<T, S> {
    value: T,
    ct: S,
    seq: VersionSeq,
    /// Timestamps of recent versions (seq, ct), oldest first, for the
    /// validation successor test; bounded by the STM's `max_versions`.
    ct_history: VecDeque<(VersionSeq, S)>,
    writer: Option<Reservation<T, S>>,
}

/// Snapshot of the current committed version, published for the seqlock
/// read fast path (see [`VarShared::read_fast`]).
struct Published<T, S> {
    value: T,
    ct: S,
    seq: VersionSeq,
}

/// A transactional variable managed by [`CsStm`]. Cheap to clone.
pub struct CsVar<T: TxValue, C: CausalTimeBase> {
    shared: Arc<VarShared<T, C::Stamp>>,
}

/// Bit of `VarShared::meta` set while a writer reservation exists.
const WRITER_BIT: u64 = 1;

struct VarShared<T, S> {
    id: ObjId,
    max_history: usize,
    sink: Arc<dyn zstm_core::EventSink>,
    /// Seqlock word: `committed seq << 1 | WRITER_BIT`, updated (release)
    /// under the `inner` lock after every reservation or promotion change.
    meta: AtomicU64,
    /// Lock-free publication cell for the committed version; refreshed
    /// under the `inner` lock before `meta` advertises the new sequence
    /// and loaded without any lock on the read path.
    latest: ArcCell<Published<T, S>>,
    /// Whether the mutex-free read fast path is enabled
    /// ([`zstm_core::StmConfig::fast_reads`]).
    fast: bool,
    inner: Mutex<Inner<T, S>>,
}

impl<T: TxValue, C: CausalTimeBase> Clone for CsVar<T, C> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: TxValue, C: CausalTimeBase> CsVar<T, C> {
    /// The object's id in recorded histories.
    pub fn id(&self) -> ObjId {
        self.shared.id
    }
}

impl<T: TxValue, C: CausalTimeBase> std::fmt::Debug for CsVar<T, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsVar")
            .field("id", &self.shared.id)
            .finish()
    }
}

impl<T: TxValue, S: CausalStamp> VarShared<T, S> {
    /// Re-derives the seqlock word from `inner`; call while still holding
    /// the lock after any mutation of the reservation or the version.
    fn publish_meta(&self, inner: &Inner<T, S>) {
        let writer = if inner.writer.is_some() {
            WRITER_BIT
        } else {
            0
        };
        self.meta.store(inner.seq << 1 | writer, Ordering::Release);
    }

    /// Seqlock fast read: the committed version, iff the whole sampling
    /// window saw no writer reservation and no promotion (same protocol as
    /// `VarCore::read_latest_fast` in `zstm-lsa`; the only tolerated A-B-A
    /// is a reservation taken and released *aborted* inside the window,
    /// which never changes committed state).
    fn read_fast(&self) -> Option<Arc<Published<T, S>>> {
        if !self.fast {
            return None;
        }
        let before = self.meta.load(Ordering::Acquire);
        if before & WRITER_BIT != 0 {
            return None;
        }
        let published = self.latest.load();
        if published.seq << 1 != before || self.meta.load(Ordering::Acquire) != before {
            return None;
        }
        Some(published)
    }

    /// Locks the object with a settled writer: dead reservations cleaned,
    /// committed reservations promoted. Committing writers are waited out
    /// *only* when their published timestamp precedes `my_ct` (only those
    /// can affect the caller's validation; waiting only on strictly smaller
    /// timestamps keeps the wait relation acyclic). When `my_ct` is `None`
    /// committing writers are always waited out.
    fn lock_settled(
        &self,
        me: Option<&Arc<StampRec<S>>>,
        my_ct: Option<&S>,
    ) -> zstm_util::sync::MutexGuard<'_, Inner<T, S>> {
        let mut backoff = Backoff::new();
        loop {
            let mut guard = self.inner.lock();
            let wait = match &guard.writer {
                None => false,
                Some(w) if me.is_some_and(|m| Arc::ptr_eq(m, &w.rec)) => false,
                Some(w) => match w.rec.shared.status() {
                    TxStatus::Active => false,
                    TxStatus::Aborted => {
                        guard.writer = None;
                        self.publish_meta(&guard);
                        false
                    }
                    TxStatus::Committed => {
                        self.promote_locked(&mut guard);
                        false
                    }
                    TxStatus::Committing => match (my_ct, w.rec.stamp()) {
                        // Published pre-commit stamp not ≺ my_ct: the final
                        // stamp only grows, so it cannot precede my_ct
                        // either — ignore.
                        (Some(mine), Some(theirs)) => theirs.precedes(mine),
                        // Stamp not yet published (a short window) or no
                        // comparison point: wait.
                        _ => true,
                    },
                },
            };
            if !wait {
                return guard;
            }
            drop(guard);
            backoff.spin();
        }
    }

    fn promote_locked(&self, inner: &mut Inner<T, S>) {
        let Some(reservation) = inner.writer.take() else {
            return;
        };
        debug_assert_eq!(reservation.rec.shared.status(), TxStatus::Committed);
        let stamp = reservation
            .rec
            .stamp()
            .expect("committed writers have published stamps");
        let seq = inner.seq + 1;
        inner.ct_history.push_back((inner.seq, inner.ct.clone()));
        while inner.ct_history.len() > self.max_history {
            inner.ct_history.pop_front();
        }
        inner.value = reservation.tentative;
        inner.ct = stamp;
        inner.seq = seq;
        // Publication order matters for the fast path: the cell first, the
        // seqlock word second (see `read_fast`).
        self.latest.store(Arc::new(Published {
            value: inner.value.clone(),
            ct: inner.ct.clone(),
            seq,
        }));
        self.publish_meta(inner);
        // Write events are emitted at promotion time so lazily promoted
        // reservations are not lost from recorded histories.
        if self.sink.enabled() {
            self.sink.record(zstm_core::TxEvent::new(
                reservation.rec.shared.id(),
                reservation.rec.shared.thread(),
                reservation.rec.shared.kind(),
                zstm_core::TxEventKind::Write {
                    obj: self.id,
                    version: seq,
                },
            ));
        }
    }
}

/// The causally serializable STM (Algorithm 1). See the crate docs.
pub struct CsStm<C: CausalTimeBase = RevClock> {
    config: StmConfig,
    clock: C,
    cm: Arc<dyn ContentionManager>,
    registered: AtomicUsize,
}

impl<C: CausalTimeBase> CsStm<C> {
    /// Creates a CS-STM over the given causal time base.
    ///
    /// # Panics
    ///
    /// Panics if the clock serves fewer slots than the configured thread
    /// count.
    pub fn new(config: StmConfig, clock: C) -> Self {
        assert!(
            clock.slots() >= config.threads(),
            "clock has {} slots for {} threads",
            clock.slots(),
            config.threads()
        );
        let cm = config.cm_policy().build();
        Self {
            config,
            clock,
            cm,
            registered: AtomicUsize::new(0),
        }
    }

    /// The configuration this STM was built with.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// The underlying causal time base.
    pub fn clock(&self) -> &C {
        &self.clock
    }
}

impl<C: CausalTimeBase> CsStm<C> {
    /// Creates a CS-STM over an explicit causal time base — the same
    /// constructor shape as the scalar-clocked STMs, so factories can be
    /// built uniformly (e.g. `CsStm::with_clock(config,
    /// ShardedClock::new(n))`, since scalar time bases implement
    /// [`CausalTimeBase`] under the total order of their stamps).
    ///
    /// # Panics
    ///
    /// Panics if the clock serves fewer slots than the configured threads.
    pub fn with_clock(config: StmConfig, clock: C) -> Self {
        Self::new(config, clock)
    }
}

impl CsStm<RevClock> {
    /// Convenience constructor: CS-STM over an exact vector clock with one
    /// entry per configured thread.
    pub fn with_vector_clock(config: StmConfig) -> Self {
        let threads = config.threads();
        Self::new(config, RevClock::vector(threads))
    }

    /// Convenience constructor: CS-STM over a plausible REV clock with `r`
    /// entries shared by the configured threads (Section 4.3).
    pub fn with_plausible_clock(config: StmConfig, r: usize) -> Self {
        let threads = config.threads();
        Self::new(config, RevClock::new(threads, r.min(threads)))
    }
}

impl<C: CausalTimeBase> TmFactory for CsStm<C> {
    type Var<T: TxValue> = CsVar<T, C>;
    type Thread = CsThread<C>;

    fn new_var<T: TxValue>(&self, init: T) -> CsVar<T, C> {
        CsVar {
            shared: Arc::new(VarShared {
                id: ObjId::fresh(),
                max_history: self.config.max_versions_per_object(),
                sink: Arc::clone(self.config.sink()),
                meta: AtomicU64::new(0),
                latest: ArcCell::new(Arc::new(Published {
                    value: init.clone(),
                    ct: self.clock.zero(),
                    seq: 0,
                })),
                fast: self.config.fast_reads_enabled(),
                inner: Mutex::new(Inner {
                    value: init,
                    ct: self.clock.zero(),
                    seq: 0,
                    ct_history: VecDeque::new(),
                    writer: None,
                }),
            }),
        }
    }

    fn register_thread(self: &Arc<Self>) -> CsThread<C> {
        let slot = self.registered.fetch_add(1, Ordering::Relaxed);
        assert!(
            slot < self.config.threads(),
            "more threads registered than configured ({})",
            self.config.threads()
        );
        CsThread {
            stm: Arc::clone(self),
            id: ThreadId::new(slot),
            vc: self.clock.zero(),
            stats: TxStats::new(),
            pending_karma: 0,
        }
    }

    fn max_threads(&self) -> Option<usize> {
        Some(self.config.threads())
    }

    fn name(&self) -> &'static str {
        "cs"
    }
}

/// Per-logical-thread context of [`CsStm`].
pub struct CsThread<C: CausalTimeBase> {
    stm: Arc<CsStm<C>>,
    id: ThreadId,
    /// `VC_p`: timestamp of the last transaction committed by this thread.
    vc: C::Stamp,
    stats: TxStats,
    pending_karma: u64,
}

impl<C: CausalTimeBase> CsThread<C> {
    /// The thread's current vector clock `VC_p` (diagnostics, tests).
    pub fn vc(&self) -> &C::Stamp {
        &self.vc
    }
}

impl<C: CausalTimeBase> TmThread for CsThread<C> {
    type Factory = CsStm<C>;
    type Tx<'a> = CsTx<'a, C>;

    fn begin(&mut self, kind: TxKind) -> CsTx<'_, C> {
        let karma = std::mem::take(&mut self.pending_karma);
        let rec = Arc::new(StampRec::new(self.id, kind, karma));
        if self.stm.config.sink().enabled() {
            self.stm.config.sink().record(TxEvent::new(
                rec.shared.id(),
                self.id,
                kind,
                TxEventKind::Begin,
            ));
        }
        let ct = self.vc.clone();
        CsTx {
            thread: self,
            rec,
            ct,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    fn thread_id(&self) -> ThreadId {
        self.id
    }

    fn stats(&self) -> &TxStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> Option<&mut TxStats> {
        Some(&mut self.stats)
    }

    fn take_stats(&mut self) -> TxStats {
        std::mem::take(&mut self.stats)
    }
}

/// Type-erased per-object operations needed by the commit path.
trait CsObject<S>: Send + Sync {
    /// Validation (Algorithm 1 line 22): `true` iff version `seq` has no
    /// successor whose timestamp precedes `my_ct`.
    fn validate(&self, me: &Arc<StampRec<S>>, seq: VersionSeq, my_ct: &S) -> bool;
    fn release(&self, me: &Arc<StampRec<S>>);
    fn promote(&self, me: &Arc<StampRec<S>>) -> Option<VersionSeq>;
}

impl<T: TxValue, S: CausalStamp> CsObject<S> for VarShared<T, S> {
    fn validate(&self, me: &Arc<StampRec<S>>, seq: VersionSeq, my_ct: &S) -> bool {
        // Fast path: one seqlock-word load. No pending writer and `seq`
        // still current means no successor exists at this instant — the
        // same verdict the settled path reaches via `guard.seq <= seq`.
        let meta = self.meta.load(Ordering::Acquire);
        if meta & WRITER_BIT == 0 && meta >> 1 <= seq {
            return true;
        }
        let guard = self.lock_settled(Some(me), Some(my_ct));
        if guard.seq <= seq {
            return true;
        }
        // Timestamps along the version chain are strictly increasing, so a
        // successor preceding `my_ct` exists iff the *direct* successor
        // precedes it.
        let direct = if guard.seq == seq + 1 {
            Some(&guard.ct)
        } else {
            guard
                .ct_history
                .iter()
                .find(|(s, _)| *s == seq + 1)
                .map(|(_, ct)| ct)
        };
        match direct {
            // `my_ct` is the pre-increment tentative timestamp, so a
            // successor the transaction causally follows satisfies
            // `succ.ct ⪯ my_ct` (equality occurs when the successor is the
            // newest stamp joined). Only `After`/`Concurrent` successors
            // leave a valid causal serialization.
            Some(succ_ct) => matches!(
                succ_ct.causal_cmp(my_ct),
                zstm_clock::ClockOrd::After | zstm_clock::ClockOrd::Concurrent
            ),
            // Successor timestamp fell out of the bounded history: assume
            // the worst.
            None => false,
        }
    }

    fn release(&self, me: &Arc<StampRec<S>>) {
        let mut guard = self.inner.lock();
        if guard
            .writer
            .as_ref()
            .is_some_and(|w| Arc::ptr_eq(&w.rec, me))
        {
            guard.writer = None;
            self.publish_meta(&guard);
        }
    }

    fn promote(&self, me: &Arc<StampRec<S>>) -> Option<VersionSeq> {
        let mut guard = self.inner.lock();
        if guard.writer.as_ref().is_some_and(|w| {
            Arc::ptr_eq(&w.rec, me) && w.rec.shared.status() == TxStatus::Committed
        }) {
            self.promote_locked(&mut guard);
            Some(guard.seq)
        } else {
            None
        }
    }
}

struct ReadEntry<S> {
    obj: Arc<dyn CsObject<S>>,
    seq: VersionSeq,
}

/// An active CS-STM transaction.
pub struct CsTx<'a, C: CausalTimeBase> {
    thread: &'a mut CsThread<C>,
    rec: Arc<StampRec<C::Stamp>>,
    /// `T.ct`: the tentative commit timestamp (Algorithm 1 line 3/8).
    ct: C::Stamp,
    reads: Vec<ReadEntry<C::Stamp>>,
    writes: Vec<Arc<dyn CsObject<C::Stamp>>>,
}

impl<C: CausalTimeBase> CsTx<'_, C> {
    fn record(&self, event: TxEventKind) {
        let sink = self.thread.stm.config.sink();
        if sink.enabled() {
            sink.record(TxEvent::new(
                self.rec.shared.id(),
                self.rec.shared.thread(),
                self.rec.shared.kind(),
                event,
            ));
        }
    }

    fn check_alive(&self) -> Result<(), Abort> {
        if self.rec.shared.is_active() {
            Ok(())
        } else {
            Err(Abort::new(AbortReason::Killed))
        }
    }

    fn finish_abort(mut self, reason: AbortReason) -> Abort {
        self.rec.shared.abort();
        for obj in &self.writes {
            obj.release(&self.rec);
        }
        self.writes.clear();
        self.thread.pending_karma = self.rec.shared.karma();
        self.thread
            .stats
            .record_abort(self.rec.shared.kind(), reason);
        self.record(TxEventKind::Abort { reason });
        Abort::new(reason)
    }

    /// The current tentative commit timestamp (tests, diagnostics).
    pub fn tentative_ct(&self) -> &C::Stamp {
        &self.ct
    }
}

impl<C: CausalTimeBase> TmTx for CsTx<'_, C> {
    type Factory = CsStm<C>;

    fn read<T: TxValue>(&mut self, var: &CsVar<T, C>) -> Result<T, Abort> {
        self.check_alive()?;
        self.thread.stats.record_read();
        self.rec.shared.add_karma(1);
        // Seqlock fast path: a quiescent object needs no settled lock. A
        // reservation held by this transaction keeps the writer bit set,
        // so read-your-own-write always reaches the slow path below.
        if let Some(published) = var.shared.read_fast() {
            self.ct.join(&published.ct);
            self.reads.push(ReadEntry {
                obj: Arc::clone(&var.shared) as Arc<dyn CsObject<C::Stamp>>,
                seq: published.seq,
            });
            self.record(TxEventKind::Read {
                obj: var.shared.id,
                version: published.seq,
            });
            return Ok(published.value.clone());
        }
        let guard = var.shared.lock_settled(Some(&self.rec), None);
        // Read-your-own-write.
        if let Some(w) = &guard.writer {
            if Arc::ptr_eq(&w.rec, &self.rec) {
                return Ok(w.tentative.clone());
            }
        }
        // Line 8: T.ct ← max(T.ct, vi.ct).
        self.ct.join(&guard.ct);
        let (value, seq) = (guard.value.clone(), guard.seq);
        drop(guard);
        self.reads.push(ReadEntry {
            obj: Arc::clone(&var.shared) as Arc<dyn CsObject<C::Stamp>>,
            seq,
        });
        self.record(TxEventKind::Read {
            obj: var.shared.id,
            version: seq,
        });
        Ok(value)
    }

    fn write<T: TxValue>(&mut self, var: &CsVar<T, C>, value: T) -> Result<(), Abort> {
        self.check_alive()?;
        self.thread.stats.record_write();
        self.rec.shared.add_karma(1);
        let cm = Arc::clone(&self.thread.stm.cm);
        let mut pending = Some(value);
        let mut round = 0u64;
        let mut backoff = Backoff::new();
        loop {
            if self.rec.shared.status() != TxStatus::Active {
                return Err(Abort::new(AbortReason::Killed));
            }
            let mut guard = var.shared.lock_settled(Some(&self.rec), None);
            // Line 8 applies to writes as well: join the current version.
            self.ct.join(&guard.ct);
            match &mut guard.writer {
                slot @ None => {
                    *slot = Some(Reservation {
                        rec: Arc::clone(&self.rec),
                        tentative: pending.take().expect("value pending"),
                    });
                    var.shared.publish_meta(&guard);
                    drop(guard);
                    self.writes
                        .push(Arc::clone(&var.shared) as Arc<dyn CsObject<C::Stamp>>);
                    return Ok(());
                }
                Some(w) if Arc::ptr_eq(&w.rec, &self.rec) => {
                    w.tentative = pending.take().expect("value pending");
                    return Ok(());
                }
                Some(w) => match cm.resolve(&self.rec.shared, &w.rec.shared, round) {
                    zstm_core::Resolution::AbortOther => {
                        if w.rec.shared.try_kill() {
                            guard.writer = Some(Reservation {
                                rec: Arc::clone(&self.rec),
                                tentative: pending.take().expect("value pending"),
                            });
                            var.shared.publish_meta(&guard);
                            drop(guard);
                            self.writes
                                .push(Arc::clone(&var.shared) as Arc<dyn CsObject<C::Stamp>>);
                            return Ok(());
                        }
                    }
                    zstm_core::Resolution::AbortSelf => {
                        self.rec.shared.abort();
                        return Err(Abort::new(AbortReason::WriteConflict));
                    }
                    zstm_core::Resolution::Wait => {
                        drop(guard);
                        self.rec.shared.set_waiting(true);
                        backoff.spin();
                        self.rec.shared.set_waiting(false);
                        round += 1;
                    }
                },
            }
        }
    }

    fn commit(mut self) -> Result<(), Abort> {
        let kind = self.rec.shared.kind();
        // Publish the pre-increment timestamp so concurrent validators can
        // compare against it, then enter the commit protocol.
        self.rec.publish_stamp(self.ct.clone());
        if !self.rec.shared.begin_commit() {
            return Err(self.finish_abort(AbortReason::Killed));
        }
        // Validate (Algorithm 1 lines 20–26 / 28).
        let valid = self
            .reads
            .iter()
            .all(|entry| entry.obj.validate(&self.rec, entry.seq, &self.ct));
        if !valid {
            return Err(self.finish_abort(AbortReason::ReadValidation));
        }
        if self.writes.is_empty() {
            // Read-only transactions need no timestamp increment (footnote
            // to line 29).
            self.rec.shared.finish_commit();
            self.thread.vc.join(&self.ct);
            self.thread.pending_karma = 0;
            self.thread.stats.record_commit(kind);
            self.record(TxEventKind::Commit { zone: None });
            return Ok(());
        }
        // Line 29: increment p's component with a get-and-increment on the
        // (possibly shared) clock entry, republish, and flip.
        self.thread
            .stm
            .clock
            .advance(self.thread.id.slot(), &mut self.ct);
        self.rec.publish_stamp(self.ct.clone());
        self.rec.shared.finish_commit();
        for obj in &self.writes {
            // Eager promotion; Write events are emitted by the promotion
            // itself (it may also happen lazily on another thread).
            obj.promote(&self.rec);
        }
        // Line 31: VC_p ← T.ct.
        self.thread.vc = self.ct.clone();
        self.thread.pending_karma = 0;
        self.thread.stats.record_commit(kind);
        self.record(TxEventKind::Commit { zone: None });
        Ok(())
    }

    fn rollback(self, reason: AbortReason) {
        let _ = self.finish_abort(reason);
    }

    fn id(&self) -> TxId {
        self.rec.shared.id()
    }

    fn kind(&self) -> TxKind {
        self.rec.shared.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstm_core::{atomically, RetryPolicy};

    fn vector_stm(threads: usize) -> Arc<CsStm> {
        Arc::new(CsStm::with_vector_clock(StmConfig::new(threads)))
    }

    #[test]
    fn read_and_increment() {
        let stm = vector_stm(1);
        let var = stm.new_var(0i64);
        let mut thread = stm.register_thread();
        for _ in 0..5 {
            atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
                let v = tx.read(&var)?;
                tx.write(&var, v + 1)
            })
            .expect("commit");
        }
        let v = atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.read(&var)
        })
        .expect("commit");
        assert_eq!(v, 5);
    }

    #[test]
    fn timestamps_grow_along_commits() {
        let stm = vector_stm(1);
        let var = stm.new_var(0i64);
        let mut thread = stm.register_thread();
        let before = thread.vc().clone();
        atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.write(&var, 1)
        })
        .expect("commit");
        assert!(before.precedes(thread.vc()));
    }

    #[test]
    fn figure_1_schedule_commits_under_cs() {
        // Paper Figure 1: T1 writes {o1, o2}; T2 writes {o3}; the long TL
        // reads o1, o2 before T1's commit and o3 after T2's commit, then
        // writes o4. A single-clock TBTM aborts TL; CS-STM with vector
        // clocks commits all three because T1 ∥ T2.
        let stm = vector_stm(3);
        let o1 = stm.new_var(0i64);
        let o2 = stm.new_var(0i64);
        let o3 = stm.new_var(0i64);
        let o4 = stm.new_var(0i64);
        let mut p1 = stm.register_thread();
        let mut p2 = stm.register_thread();
        let mut p3 = stm.register_thread();

        // TL starts and reads o1, o2 (pre-update versions).
        let mut tl = p3.begin(TxKind::Long);
        tl.read(&o1).expect("read o1");
        tl.read(&o2).expect("read o2");

        // T1 commits updates to o1, o2 — after TL read them.
        let mut t1 = p1.begin(TxKind::Short);
        t1.write(&o1, 1).expect("w o1");
        t1.write(&o2, 1).expect("w o2");
        t1.commit().expect("T1 commits");

        // T2 commits an update to o3.
        let mut t2 = p2.begin(TxKind::Short);
        t2.write(&o3, 1).expect("w o3");
        t2.commit().expect("T2 commits");

        // TL reads o3 (T2's version) and writes o4: serialization
        // T2 → TL → T1 is causally fine; CS-STM commits TL.
        tl.read(&o3).expect("read o3");
        tl.write(&o4, 1).expect("w o4");
        tl.commit()
            .expect("TL commits under causal serializability");
    }

    #[test]
    fn figure_3_left_schedule_aborts() {
        // Paper Figure 3 (T1's case): T1 reads o3, then T2 (which causally
        // follows T1's... precedes T1's commit) overwrites o3 and commits
        // with a timestamp that precedes T1's commit timestamp because T1
        // later joins a version that causally follows T2. T1 must abort.
        let stm = vector_stm(2);
        let o1 = stm.new_var(0i64);
        let o3 = stm.new_var(0i64);
        let mut p1 = stm.register_thread();
        let mut p2 = stm.register_thread();

        // T1 reads o3 early.
        let mut t1 = p1.begin(TxKind::Short);
        t1.read(&o3).expect("read o3");

        // T2 overwrites o3 and also writes o1, then commits.
        let mut t2 = p2.begin(TxKind::Short);
        t2.write(&o3, 2).expect("w o3");
        t2.write(&o1, 2).expect("w o1");
        t2.commit().expect("T2 commits");

        // T1 now reads o1 — T2's version — so T2.ct ≺ T1.ct, yet T1 read
        // the o3 version T2 overwrote: validation fails.
        t1.read(&o1).expect("read o1");
        t1.write(&o1, 3).expect("w o1");
        let err = t1.commit().expect_err("T1 both precedes and follows T2");
        assert_eq!(err.reason(), AbortReason::ReadValidation);
    }

    #[test]
    fn disjoint_writers_are_concurrent() {
        let stm = vector_stm(2);
        let a = stm.new_var(0i64);
        let b = stm.new_var(0i64);
        let mut p0 = stm.register_thread();
        let mut p1 = stm.register_thread();
        atomically(&mut p0, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.write(&a, 1)
        })
        .expect("commit");
        atomically(&mut p1, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.write(&b, 1)
        })
        .expect("commit");
        use zstm_clock::ClockOrd;
        assert_eq!(
            p0.vc().causal_cmp(p1.vc()),
            ClockOrd::Concurrent,
            "disjoint commits must stay unordered under vector time"
        );
    }

    #[test]
    fn plausible_clock_r1_orders_disjoint_writers() {
        let stm = Arc::new(CsStm::with_plausible_clock(StmConfig::new(2), 1));
        let a = stm.new_var(0i64);
        let b = stm.new_var(0i64);
        let mut p0 = stm.register_thread();
        let mut p1 = stm.register_thread();
        atomically(&mut p0, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.write(&a, 1)
        })
        .expect("commit");
        atomically(&mut p1, TxKind::Short, &RetryPolicy::default(), |tx| {
            tx.write(&b, 1)
        })
        .expect("commit");
        assert!(
            p0.vc().causal_cmp(p1.vc()).is_ordered(),
            "r = 1 degenerates to a single clock: everything is ordered"
        );
    }

    #[test]
    fn figure_1_schedule_aborts_under_plausible_r1() {
        // The same Figure 1 schedule that commits under vector clocks (see
        // figure_1_schedule_commits_under_cs) aborts with a single shared
        // clock entry: r = 1 totally orders T1 before T2, so TL's read of
        // the pre-T1 versions can no longer be serialized — the
        // "unnecessary abort" cost of plausible clocks (Section 4.3).
        let stm = Arc::new(CsStm::with_plausible_clock(StmConfig::new(3), 1));
        let o1 = stm.new_var(0i64);
        let o2 = stm.new_var(0i64);
        let o3 = stm.new_var(0i64);
        let o4 = stm.new_var(0i64);
        let mut p1 = stm.register_thread();
        let mut p2 = stm.register_thread();
        let mut p3 = stm.register_thread();

        let mut tl = p3.begin(TxKind::Long);
        tl.read(&o1).expect("read o1");
        tl.read(&o2).expect("read o2");

        let mut t1 = p1.begin(TxKind::Short);
        t1.write(&o1, 1).expect("w o1");
        t1.write(&o2, 1).expect("w o2");
        t1.commit().expect("T1 commits");

        let mut t2 = p2.begin(TxKind::Short);
        t2.write(&o3, 1).expect("w o3");
        t2.commit().expect("T2 commits");

        tl.read(&o3).expect("read o3");
        tl.write(&o4, 1).expect("w o4");
        let err = tl
            .commit()
            .expect_err("r = 1 falsely orders T1 ≺ T2 ≺ TL and must abort TL");
        assert_eq!(err.reason(), AbortReason::ReadValidation);
    }

    #[test]
    fn write_write_conflict_single_writer() {
        let mut config = StmConfig::new(2);
        config.cm(zstm_core::CmPolicy::Suicide);
        let stm = Arc::new(CsStm::with_vector_clock(config));
        let var = stm.new_var(0i64);
        let mut p0 = stm.register_thread();
        let mut p1 = stm.register_thread();
        let mut t0 = p0.begin(TxKind::Short);
        t0.write(&var, 1).expect("reserve");
        let mut t1 = p1.begin(TxKind::Short);
        let err = t1.write(&var, 2).expect_err("suicide CM aborts attacker");
        assert_eq!(err.reason(), AbortReason::WriteConflict);
        t1.rollback(err.reason());
        t0.commit().expect("winner commits");
    }

    #[test]
    fn concurrent_transfers_conserve_money() {
        let stm = vector_stm(5);
        let accounts: Arc<Vec<CsVar<i64, RevClock>>> =
            Arc::new((0..16).map(|_| stm.new_var(100i64)).collect());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let stm = Arc::clone(&stm);
                let accounts = Arc::clone(&accounts);
                let mut thread = stm.register_thread();
                std::thread::spawn(move || {
                    for i in 0..300u64 {
                        let from = ((i * 7 + t * 3) % 16) as usize;
                        let to = ((i * 13 + t * 5) % 16) as usize;
                        if from == to {
                            continue;
                        }
                        atomically(&mut thread, TxKind::Short, &RetryPolicy::default(), |tx| {
                            let a = tx.read(&accounts[from])?;
                            let b = tx.read(&accounts[to])?;
                            tx.write(&accounts[from], a - 1)?;
                            tx.write(&accounts[to], b + 1)
                        })
                        .expect("transfer commits");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let mut checker = stm.register_thread();
        let total = atomically(&mut checker, TxKind::Long, &RetryPolicy::default(), |tx| {
            let mut sum = 0i64;
            for acc in accounts.iter() {
                sum += tx.read(acc)?;
            }
            Ok(sum)
        })
        .expect("sum commits");
        assert_eq!(total, 1600);
    }
}
